//! Trace-level calibration tests: run each workload on the simulated
//! server and verify the statistical signature the detectors rely on.

use memdos_sim::server::{Server, ServerConfig};
use memdos_stats::period::PeriodDetector;
use memdos_stats::smoothing::MovingAverage;
use memdos_workloads::catalog::Application;

/// Runs `app` alone (with background utilities) and returns the per-tick
/// AccessNum trace.
fn access_trace(app: Application, ticks: u64, seed: u64) -> Vec<f64> {
    let cfg = ServerConfig::default().with_seed(seed);
    let mut server = Server::new(cfg);
    let llc = server.config().geometry.lines() as u64;
    let victim = server.add_vm(app.name(), app.build(llc));
    for i in 0..3u64 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos_workloads::apps::utility::program(i)),
        );
    }
    (0..ticks)
        .map(|_| server.tick().sample(victim).unwrap().accesses as f64)
        .collect()
}

/// MA series with the paper's Table 1 parameters (W=200, ΔW=50).
fn ma_series(raw: &[f64]) -> Vec<f64> {
    MovingAverage::apply(200, 50, raw).unwrap()
}

#[test]
fn every_application_generates_traffic() {
    for app in Application::ALL {
        let trace = access_trace(app, 300, 7);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!(mean > 50.0, "{app}: mean AccessNum {mean} too low");
        assert!(
            mean < 7000.0,
            "{app}: mean AccessNum {mean} implausibly high"
        );
    }
}

#[test]
fn facenet_is_periodic_near_17_ma_windows() {
    // 6000 ticks = 60 simulated seconds ≈ 7 batches.
    let trace = access_trace(Application::FaceNet, 6000, 11);
    let ma = ma_series(&trace);
    let est = PeriodDetector::default()
        .detect(&ma)
        .unwrap()
        .expect("facenet must be detected as periodic");
    assert!(
        (10.0..=25.0).contains(&est.period),
        "facenet period {} MA windows (target ≈17)",
        est.period
    );
    assert!(est.strength > 0.4, "weak periodicity {}", est.strength);
}

#[test]
fn pca_is_periodic_near_12_ma_windows() {
    let trace = access_trace(Application::Pca, 6000, 13);
    let ma = ma_series(&trace);
    let est = PeriodDetector::default()
        .detect(&ma)
        .unwrap()
        .expect("pca must be detected as periodic");
    assert!(
        (7.0..=20.0).contains(&est.period),
        "pca period {} MA windows (target ≈12)",
        est.period
    );
    assert!(est.strength > 0.4, "weak periodicity {}", est.strength);
}

#[test]
fn kmeans_is_not_periodic_at_ma_scale() {
    let trace = access_trace(Application::KMeans, 4000, 17);
    let ma = ma_series(&trace);
    if let Some(est) = PeriodDetector::default().detect(&ma).unwrap() {
        assert!(
            est.strength < 0.6,
            "kmeans unexpectedly periodic: p={} s={}",
            est.period,
            est.strength
        );
    }
}

#[test]
fn terasort_has_long_distinct_phases() {
    // Phase structure shows up as large level differences between
    // 1-second windows far apart, the root cause of KStest's Fig. 1
    // false positives.
    let trace = access_trace(Application::TeraSort, 6000, 19);
    let window_means: Vec<f64> = trace
        .chunks(100)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect();
    let max = window_means.iter().cloned().fold(f64::MIN, f64::max);
    let min = window_means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max > 1.5 * min.max(1.0),
        "terasort windows too uniform: {min}..{max}"
    );
}

#[test]
fn traces_are_deterministic_per_seed() {
    let a = access_trace(Application::Bayes, 200, 23);
    let b = access_trace(Application::Bayes, 200, 23);
    assert_eq!(a, b);
    let c = access_trace(Application::Bayes, 200, 24);
    assert_ne!(a, c);
}
