//! The phase-machine workload framework.
//!
//! A workload is a cyclic sequence of [`PhaseSpec`]s. Each phase instance
//! executes a sampled number of operations; each operation is an optional
//! compute burst followed by one memory access generated from the phase's
//! address [`Pattern`] over its [`Region`]. Optional global [`BurstSpec`]
//! noise inserts random compute stalls, modelling I/O waits and OS
//! scheduling jitter — the "random variations over time" that §4.1 warns
//! make naive raw-data thresholding inaccurate.

use memdos_sim::program::{MemOp, ProgramCtx, VmProgram};
use memdos_sim::rng::{Rng, UniformU64, Zipf};

/// A contiguous range of cache-line addresses in the VM's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First line address of the region.
    pub base: u64,
    /// Number of lines in the region.
    pub lines: u64,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`.
    pub fn new(base: u64, lines: u64) -> Self {
        assert!(lines > 0, "region must contain at least one line");
        Region { base, lines }
    }
}

/// How a phase selects addresses within its region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential streaming with the given stride (in lines).
    Sequential {
        /// Address increment per access, in lines.
        stride: u64,
    },
    /// Uniformly random lines.
    Random,
    /// Zipf-distributed lines (rank 0 hottest) with skew `theta`.
    Zipf {
        /// Skew exponent; 1.0 is classic Zipf.
        theta: f64,
    },
    /// A hot subset is hit with probability `hot_prob`; other accesses are
    /// uniform over the whole region.
    HotCold {
        /// Fraction of the region that is hot, in `(0, 1]`.
        hot_frac: f64,
        /// Probability an access goes to the hot subset.
        hot_prob: f64,
    },
}

/// One phase of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name for diagnostics.
    pub name: &'static str,
    /// Inclusive range of memory operations per phase instance; the count
    /// is sampled uniformly each time the phase starts.
    pub ops: (u64, u64),
    /// Address region the phase touches.
    pub region: Region,
    /// Address selection pattern.
    pub pattern: Pattern,
    /// Inclusive range of compute cycles inserted before each access.
    pub compute: (u32, u32),
    /// Probability an access is a store.
    pub write_prob: f64,
    /// Application work units credited per memory operation.
    pub work_per_op: u64,
}

impl PhaseSpec {
    /// Convenience constructor with `write_prob = 0` and
    /// `work_per_op = 1`.
    pub fn new(
        name: &'static str,
        ops: (u64, u64),
        region: Region,
        pattern: Pattern,
        compute: (u32, u32),
    ) -> Self {
        assert!(ops.0 > 0 && ops.0 <= ops.1, "invalid ops range");
        assert!(compute.0 <= compute.1, "invalid compute range");
        PhaseSpec {
            name,
            ops,
            region,
            pattern,
            compute,
            write_prob: 0.0,
            work_per_op: 1,
        }
    }

    /// Sets the store probability.
    pub fn with_writes(mut self, write_prob: f64) -> Self {
        self.write_prob = write_prob;
        self
    }
}

/// Random compute-stall noise applied across all phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Probability per operation of inserting a stall.
    pub prob_per_op: f64,
    /// Inclusive range of stall lengths in cycles.
    pub cycles: (u32, u32),
}

/// Slowly-varying intensity modulation: a multiplier on per-op compute
/// cycles, resampled every `interval_ops` operations.
///
/// Real PCM traces fluctuate at the 50–500 ms scale (interrupts, turbo
/// transitions, co-scheduled threads); modulation reproduces that
/// within-window spread, which is what makes the 1-second KS windows of
/// different benign phases overlap partially instead of separating
/// cleanly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulationSpec {
    /// Operations between multiplier resamples.
    pub interval_ops: u64,
    /// Inclusive multiplier range, e.g. `(0.5, 2.0)`.
    pub factor: (f64, f64),
}

/// An occasional *episode*: an extra phase that runs at the start of a
/// cycle with some probability — a cron job, a JVM GC pause, an
/// operator-issued heavyweight query. Episodes of ~8–12 s are what give
/// real applications their intermittent KStest false positives (§3.2)
/// while staying below SDS/B's `H_C·ΔW = 15 s` violation window.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeSpec {
    /// Probability that a cycle starts with the episode phase.
    pub prob_per_cycle: f64,
    /// The episode phase itself.
    pub phase: PhaseSpec,
}

/// Hot fields of the phase currently executing, copied out of its
/// [`PhaseSpec`] on phase entry so the per-op path reads one small
/// struct instead of chasing the spec vector twice per operation. The
/// address and compute draws use [`UniformU64`] samplers whose rejection
/// thresholds are computed once here instead of once per op — the value
/// stream is unchanged, only the per-op divisions disappear.
#[derive(Clone, Copy)]
struct ActivePhase {
    region: Region,
    pattern: ActivePattern,
    compute: (u32, u32),
    /// Sampler over `compute.1 - compute.0 + 1`, matching the
    /// `range_inclusive` draw of the unoptimized path.
    compute_sampler: UniformU64,
    write_prob: f64,
    work_per_op: u64,
}

/// Pattern state specialized for the per-op path.
#[derive(Clone, Copy)]
enum ActivePattern {
    /// Stride pre-reduced modulo the region so the cursor advances with
    /// a conditional subtract instead of a division.
    Sequential { stride_red: u64 },
    Random { lines: UniformU64 },
    /// Sampled through the machine's prebuilt `zipf` table.
    Zipf,
    HotCold {
        hot_prob: f64,
        hot: UniformU64,
        all: UniformU64,
    },
}

impl ActivePhase {
    fn from_spec(spec: &PhaseSpec) -> Self {
        let pattern = match spec.pattern {
            Pattern::Sequential { stride } => ActivePattern::Sequential {
                stride_red: stride % spec.region.lines,
            },
            Pattern::Random => ActivePattern::Random {
                lines: UniformU64::new(spec.region.lines),
            },
            Pattern::Zipf { .. } => ActivePattern::Zipf,
            Pattern::HotCold { hot_frac, hot_prob } => {
                let hot_lines = ((spec.region.lines as f64 * hot_frac).ceil() as u64)
                    .clamp(1, spec.region.lines);
                ActivePattern::HotCold {
                    hot_prob,
                    hot: UniformU64::new(hot_lines),
                    all: UniformU64::new(spec.region.lines),
                }
            }
        };
        ActivePhase {
            region: spec.region,
            pattern,
            compute: spec.compute,
            compute_sampler: UniformU64::new(
                spec.compute.1 as u64 - spec.compute.0 as u64 + 1,
            ),
            write_prob: spec.write_prob,
            work_per_op: spec.work_per_op,
        }
    }
}

/// A cyclic phase-machine workload implementing
/// [`VmProgram`].
#[derive(Clone)]
pub struct PhaseMachine {
    name: String,
    phases: Vec<PhaseSpec>,
    /// Pre-built Zipf samplers, one per phase that needs one; the last
    /// entry belongs to the episode phase, when configured.
    zipf: Vec<Option<Zipf>>,
    burst: Option<BurstSpec>,
    modulation: Option<ModulationSpec>,
    episode: Option<EpisodeSpec>,
    /// Index into `phases`, or `phases.len()` while the episode runs.
    current: usize,
    ops_left: u64,
    started: bool,
    /// Sequential cursor per phase, storing the current *region offset*
    /// (already stride-advanced and wrapped), persisted across phase
    /// instances (one extra slot for the episode phase).
    seq_pos: Vec<u64>,
    work: u64,
    /// Completed full cycles through the phase list.
    cycles_completed: u64,
    /// Episodes executed so far.
    episodes_run: u64,
    /// Current modulation multiplier and ops until its resample.
    mod_factor: f64,
    mod_left: u64,
    /// Cached hot fields of the phase at `current`.
    active: ActivePhase,
    /// Operations remaining until the next burst stall fires; `None`
    /// until the first gap is sampled.
    burst_gap: Option<u64>,
}

impl std::fmt::Debug for PhaseMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseMachine")
            .field("name", &self.name)
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl PhaseMachine {
    /// Creates a phase machine cycling through `phases` forever.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(name: impl Into<String>, phases: Vec<PhaseSpec>) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        let zipf = phases
            .iter()
            .map(|p| match p.pattern {
                Pattern::Zipf { theta } => Some(Zipf::new(p.region.lines, theta)),
                _ => None,
            })
            .collect();
        let n = phases.len();
        let active = ActivePhase::from_spec(&phases[0]);
        PhaseMachine {
            name: name.into(),
            phases,
            zipf,
            burst: None,
            modulation: None,
            episode: None,
            current: 0,
            ops_left: 0,
            started: false,
            seq_pos: vec![0; n + 1],
            work: 0,
            cycles_completed: 0,
            episodes_run: 0,
            mod_factor: 1.0,
            mod_left: 0,
            active,
            burst_gap: None,
        }
    }

    /// Adds global burst noise.
    pub fn with_burst(mut self, burst: BurstSpec) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Adds slowly-varying intensity modulation.
    pub fn with_modulation(mut self, modulation: ModulationSpec) -> Self {
        assert!(modulation.interval_ops > 0, "modulation interval must be positive");
        assert!(
            modulation.factor.0 > 0.0 && modulation.factor.0 <= modulation.factor.1,
            "invalid modulation factor range"
        );
        self.modulation = Some(modulation);
        self
    }

    /// Adds an occasional episode phase.
    pub fn with_episode(mut self, episode: EpisodeSpec) -> Self {
        let zipf = match episode.phase.pattern {
            Pattern::Zipf { theta } => Some(Zipf::new(episode.phase.region.lines, theta)),
            _ => None,
        };
        self.zipf.push(zipf);
        self.episode = Some(episode);
        self
    }

    /// Episodes executed so far.
    pub fn episodes_run(&self) -> u64 {
        self.episodes_run
    }

    /// Name of the currently executing phase.
    pub fn current_phase(&self) -> &'static str {
        self.spec(self.current.min(self.phases.len())).name
    }

    /// Completed full cycles through the phase list — for periodic
    /// applications this counts processed batches.
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    fn spec(&self, idx: usize) -> &PhaseSpec {
        if idx == self.phases.len() {
            if let Some(ep) = self.episode.as_ref() {
                return &ep.phase;
            }
        }
        // lint:allow(index) -- the machine only sets an index equal to
        // phases.len() while an episode is configured (handled above), so
        // idx is always a valid phase position here.
        &self.phases[idx]
    }

    fn enter_phase(&mut self, idx: usize, rng: &mut Rng) {
        self.current = idx;
        self.active = ActivePhase::from_spec(self.spec(idx));
        let (lo, hi) = self.spec(idx).ops;
        self.ops_left = rng.range_inclusive(lo, hi);
    }

    fn gen_line(&mut self, rng: &mut Rng) -> u64 {
        let region = self.active.region;
        let offset = match self.active.pattern {
            ActivePattern::Sequential { stride_red } => {
                match self.seq_pos.get_mut(self.current) {
                    Some(off) => {
                        let line = *off;
                        let next = *off + stride_red;
                        *off = if next >= region.lines { next - region.lines } else { next };
                        line
                    }
                    None => 0,
                }
            }
            ActivePattern::Random { lines } => lines.sample(rng),
            // The constructor builds a sampler for every Zipf phase; fall
            // back to a uniform draw if that invariant is ever broken.
            ActivePattern::Zipf => match self.zipf.get(self.current).and_then(Option::as_ref) {
                Some(z) => z.sample(rng),
                None => rng.next_below(region.lines),
            },
            ActivePattern::HotCold { hot_prob, hot, all } => {
                if rng.chance(hot_prob) {
                    hot.sample(rng)
                } else {
                    all.sample(rng)
                }
            }
        };
        region.base + offset
    }

    /// Samples the number of operations until the next burst fires: the
    /// geometric gap between successes of an independent per-op Bernoulli
    /// trial with probability `p`. Statistically identical to drawing the
    /// trial every operation, at one `ln` per burst instead of one
    /// uniform draw per op.
    fn sample_burst_gap(rng: &mut Rng, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        // `next_f64` is in [0, 1); flip it into (0, 1] so ln() is finite.
        let u = 1.0 - rng.next_f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

impl VmProgram for PhaseMachine {
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
        if !self.started {
            self.started = true;
            self.enter_phase(0, ctx.rng);
        }
        if self.ops_left == 0 {
            let next = if self.current >= self.phases.len() - 1 {
                // End of a cycle (or of an episode): maybe start the next
                // cycle with an episode.
                if self.current < self.phases.len() {
                    self.cycles_completed += 1;
                }
                match &self.episode {
                    Some(e) if self.current != self.phases.len()
                        && ctx.rng.chance(e.prob_per_cycle) =>
                    {
                        self.episodes_run += 1;
                        self.phases.len()
                    }
                    _ => 0,
                }
            } else {
                self.current + 1
            };
            self.enter_phase(next, ctx.rng);
        }
        self.ops_left -= 1;

        if let Some(m) = self.modulation {
            if self.mod_left == 0 {
                self.mod_factor =
                    m.factor.0 + ctx.rng.next_f64() * (m.factor.1 - m.factor.0);
                self.mod_left = m.interval_ops;
            }
            self.mod_left -= 1;
        }

        let line = self.gen_line(ctx.rng);
        let write_prob = self.active.write_prob;
        let compute_range = self.active.compute;
        // Degenerate probabilities need no draw; most phases never write.
        let write = if write_prob <= 0.0 {
            false
        } else if write_prob >= 1.0 {
            true
        } else {
            ctx.rng.chance(write_prob)
        };
        self.work += self.active.work_per_op;

        let mut compute = if compute_range.1 == 0 {
            0
        } else {
            let base = compute_range.0 as u64 + self.active.compute_sampler.sample(ctx.rng);
            // lint:allow(float-eq) -- 1.0 is the exact sentinel stored when
            // no modulation is configured, not a computed value; bitwise
            // equality is the intended test.
            if self.mod_factor == 1.0 {
                // Integer-valued base: multiplying by 1.0 and rounding is
                // the identity, so skip the float trip entirely.
                base as u32
            } else {
                (base as f64 * self.mod_factor).round().min(u32::MAX as f64) as u32
            }
        };
        if let Some(burst) = self.burst {
            let gap = match self.burst_gap {
                Some(g) => g,
                None => Self::sample_burst_gap(ctx.rng, burst.prob_per_op),
            };
            if gap == 0 {
                compute = compute.saturating_add(
                    ctx.rng.range_inclusive(burst.cycles.0 as u64, burst.cycles.1 as u64)
                        as u32,
                );
                self.burst_gap = Some(Self::sample_burst_gap(ctx.rng, burst.prob_per_op));
            } else {
                self.burst_gap = Some(gap - 1);
            }
        }
        if compute == 0 {
            MemOp::Access { line, write }
        } else {
            // Fused form: one `next_op` round-trip instead of a Compute
            // followed by a pended Access — the engine runs the compute
            // and issues the access at the VM's next scheduling slot,
            // exactly as the split emission did.
            MemOp::Work { compute, line, write }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn work_completed(&self) -> u64 {
        self.work
    }

    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ops(pm: &mut PhaseMachine, n: usize, seed: u64) -> Vec<MemOp> {
        let mut rng = Rng::new(seed);
        let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: None, tick: 0 };
        (0..n).map(|_| pm.next_op(&mut ctx)).collect()
    }

    fn spec(ops: (u64, u64), region: Region, pattern: Pattern) -> PhaseSpec {
        PhaseSpec::new("test", ops, region, pattern, (0, 0))
    }

    #[test]
    fn sequential_pattern_streams_in_order() {
        let mut pm = PhaseMachine::new(
            "seq",
            vec![spec((100, 100), Region::new(10, 5), Pattern::Sequential { stride: 1 })],
        );
        let ops = run_ops(&mut pm, 10, 1);
        let lines: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                MemOp::Access { line, .. } => Some(*line),
                _ => None,
            })
            .collect();
        assert_eq!(lines, vec![10, 11, 12, 13, 14, 10, 11, 12, 13, 14]);
    }

    #[test]
    fn random_pattern_stays_in_region() {
        let mut pm = PhaseMachine::new(
            "rand",
            vec![spec((1000, 1000), Region::new(100, 50), Pattern::Random)],
        );
        for op in run_ops(&mut pm, 500, 2) {
            if let MemOp::Access { line, .. } = op {
                assert!((100..150).contains(&line));
            }
        }
    }

    #[test]
    fn zipf_pattern_is_skewed_to_region_head() {
        let mut pm = PhaseMachine::new(
            "zipf",
            vec![spec((100_000, 100_000), Region::new(0, 1000), Pattern::Zipf { theta: 1.0 })],
        );
        let ops = run_ops(&mut pm, 20_000, 3);
        let head = ops
            .iter()
            .filter(|op| matches!(op, MemOp::Access { line, .. } if *line < 10))
            .count();
        let total = ops
            .iter()
            .filter(|op| matches!(op, MemOp::Access { .. }))
            .count();
        assert!(head as f64 / total as f64 > 0.25, "head {head}/{total}");
    }

    #[test]
    fn hotcold_pattern_prefers_hot_subset() {
        let mut pm = PhaseMachine::new(
            "hc",
            vec![spec(
                (100_000, 100_000),
                Region::new(0, 1000),
                Pattern::HotCold { hot_frac: 0.1, hot_prob: 0.9 },
            )],
        );
        let ops = run_ops(&mut pm, 10_000, 4);
        let hot = ops
            .iter()
            .filter(|op| matches!(op, MemOp::Access { line, .. } if *line < 100))
            .count();
        let total = ops
            .iter()
            .filter(|op| matches!(op, MemOp::Access { .. }))
            .count();
        // 90 % targeted + 10 % uniform (of which 10 % lands hot) ≈ 91 %.
        assert!(hot as f64 / total as f64 > 0.8, "hot {hot}/{total}");
    }

    #[test]
    fn phases_cycle_and_count() {
        let r = Region::new(0, 10);
        let mut pm = PhaseMachine::new(
            "two",
            vec![
                spec((5, 5), r, Pattern::Sequential { stride: 1 }),
                spec((3, 3), r, Pattern::Random),
            ],
        );
        assert_eq!(pm.cycles_completed(), 0);
        run_ops(&mut pm, 8, 5);
        // After 5 + 3 ops the machine is about to re-enter phase 0; one
        // more op completes the cycle.
        run_ops(&mut pm, 1, 5);
        assert_eq!(pm.cycles_completed(), 1);
    }

    #[test]
    fn compute_precedes_access_when_configured() {
        let mut pm = PhaseMachine::new(
            "cmp",
            vec![PhaseSpec::new(
                "p",
                (10, 10),
                Region::new(0, 4),
                Pattern::Random,
                (7, 7),
            )],
        );
        // Non-zero compute fuses into a Work op: 7 cycles then the access.
        let ops = run_ops(&mut pm, 6, 6);
        for op in ops {
            assert!(matches!(op, MemOp::Work { compute: 7, line, .. } if line < 4));
        }
    }

    #[test]
    fn work_accrues_per_memory_op() {
        let mut pm = PhaseMachine::new(
            "w",
            vec![spec((100, 100), Region::new(0, 4), Pattern::Random)],
        );
        run_ops(&mut pm, 50, 7);
        assert_eq!(pm.work_completed(), 50);
    }

    #[test]
    fn burst_noise_inserts_long_stalls() {
        let r = Region::new(0, 4);
        let mut pm = PhaseMachine::new("b", vec![spec((1000, 1000), r, Pattern::Random)])
            .with_burst(BurstSpec { prob_per_op: 1.0, cycles: (500, 500) });
        // The phase itself has zero compute; the burst stall fuses with
        // the access into a Work op.
        let ops = run_ops(&mut pm, 4, 8);
        for op in ops {
            assert!(matches!(op, MemOp::Work { compute: 500, .. }));
        }
    }

    #[test]
    fn writes_follow_probability() {
        let mut pm = PhaseMachine::new(
            "wr",
            vec![spec((100_000, 100_000), Region::new(0, 8), Pattern::Random)
                .with_writes(1.0)],
        );
        for op in run_ops(&mut pm, 100, 9) {
            if let MemOp::Access { write, .. } = op {
                assert!(write);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty_phase_list() {
        PhaseMachine::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid ops range")]
    fn rejects_invalid_ops_range() {
        spec((5, 3), Region::new(0, 1), Pattern::Random);
    }

    #[test]
    fn modulation_scales_compute() {
        let r = Region::new(0, 4);
        let mut pm = PhaseMachine::new(
            "mod",
            vec![PhaseSpec::new("p", (100_000, 100_000), r, Pattern::Random, (100, 100))],
        )
        .with_modulation(ModulationSpec { interval_ops: 10, factor: (0.5, 2.0) });
        let ops = run_ops(&mut pm, 2000, 11);
        let computes: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                MemOp::Work { compute, .. } => Some(*compute),
                _ => None,
            })
            .collect();
        assert!(computes.iter().all(|&c| (50..=200).contains(&c)));
        // The multiplier actually varies.
        assert!(computes.iter().any(|&c| c < 80));
        assert!(computes.iter().any(|&c| c > 150));
    }

    #[test]
    fn episodes_run_occasionally_and_touch_their_region() {
        let r = Region::new(0, 4);
        let episode_region = Region::new(1000, 4);
        let mut pm = PhaseMachine::new(
            "ep",
            vec![spec((20, 30), r, Pattern::Random)],
        )
        .with_episode(EpisodeSpec {
            prob_per_cycle: 0.5,
            phase: PhaseSpec::new("episode", (10, 10), episode_region, Pattern::Random, (0, 0)),
        });
        let ops = run_ops(&mut pm, 5000, 13);
        assert!(pm.episodes_run() > 10, "episodes {}", pm.episodes_run());
        assert!(pm.episodes_run() < pm.cycles_completed(), "not every cycle");
        assert!(ops
            .iter()
            .any(|op| matches!(op, MemOp::Access { line, .. } if *line >= 1000)));
    }

    #[test]
    fn zero_episode_probability_never_fires() {
        let r = Region::new(0, 4);
        let mut pm = PhaseMachine::new("ep0", vec![spec((5, 5), r, Pattern::Random)])
            .with_episode(EpisodeSpec {
                prob_per_cycle: 0.0,
                phase: PhaseSpec::new("episode", (10, 10), r, Pattern::Random, (0, 0)),
            });
        run_ops(&mut pm, 1000, 17);
        assert_eq!(pm.episodes_run(), 0);
    }

    #[test]
    fn ops_count_sampled_within_range() {
        let r = Region::new(0, 4);
        let mut pm = PhaseMachine::new(
            "r",
            vec![
                spec((10, 20), r, Pattern::Random),
                spec((1, 1), Region::new(100, 1), Pattern::Random),
            ],
        );
        // Execute several cycles; phase-0 instances must produce between
        // 10 and 20 accesses to region [0, 4) before the marker access to
        // line 100 appears.
        let ops = run_ops(&mut pm, 300, 10);
        let mut run_len = 0;
        for op in ops {
            if let MemOp::Access { line, .. } = op {
                if line == 100 {
                    assert!((10..=20).contains(&run_len), "run {run_len}");
                    run_len = 0;
                } else {
                    run_len += 1;
                }
            }
        }
    }
}
