//! k-means clustering (HiBench).
//!
//! Lloyd's iterations alternate a long *assign* pass (stream every point,
//! find its nearest centroid) with a short *update* pass over the small
//! centroid table. Both micro-phases complete in well under a second of
//! simulated time, so at the 2-second MA window the statistics look
//! stationary — which is exactly why k-means has the paper's lowest
//! KStest false-positive rate (≈20 %, §3.2) and serves as the running
//! example for SDS/B (Fig. 7).

use super::{frac, Layout};
use crate::phase::{BurstSpec, EpisodeSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the k-means workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let points = layout.region(frac(llc_lines, 0.5));
    let centroids = layout.region(512);
    let dataset = layout.region(frac(llc_lines, 1.0));

    let assign_ops = frac(llc_lines, 0.5);
    PhaseMachine::new(
        "kmeans",
        vec![
            PhaseSpec::new(
                "assign",
                (assign_ops, assign_ops + assign_ops / 10),
                points,
                Pattern::Sequential { stride: 1 },
                (20, 40),
            ),
            PhaseSpec::new("update", (4000, 5000), centroids, Pattern::Random, (40, 60)),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0001, cycles: (10_000, 30_000) })
    // Occasional dataset re-shard (~6 s of cold streaming, roughly every
    // couple of minutes): the kind of rare event behind the paper's 20 %
    // KStest false-positive rate on k-means, while staying well inside
    // SDS/B's 15 s violation window.
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.002,
        phase: PhaseSpec::new(
            "reshard",
            (340_000, 390_000),
            dataset,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        let pm = program(81_920);
        assert_eq!(pm.name(), "kmeans");
    }
}
