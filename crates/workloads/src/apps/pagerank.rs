//! PageRank over a Zipfian web graph (HiBench).
//!
//! §3.1: "The data source is generated from web data whose hyperlinks
//! follow a Zipfian distribution." Each super-step scans the edge list
//! sequentially while the destination-rank lookups follow the Zipfian
//! in-degree distribution — a few hub pages absorb most updates and stay
//! cache-resident, the long tail misses. Super-steps are separated by a
//! brief synchronisation gap. The resulting statistics are mildly
//! structured but not periodic at the MA scale; the paper measures a
//! KStest false-positive rate of ≈30 % (§3.2).

use super::{frac, Layout};
use crate::phase::{BurstSpec, EpisodeSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the PageRank workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let ranks = layout.region(frac(llc_lines, 1.6));
    let scratch = layout.region(256);
    let edges = layout.region(frac(llc_lines, 1.2));

    PhaseMachine::new(
        "pagerank",
        vec![
            // One super-step: rank lookups with Zipfian popularity.
            PhaseSpec::new(
                "superstep",
                (140_000, 160_000),
                ranks,
                Pattern::Zipf { theta: 0.9 },
                (30, 60),
            )
            .with_writes(0.3),
            // Barrier / bookkeeping between super-steps.
            PhaseSpec::new(
                "sync",
                (1_000, 2_000),
                scratch,
                Pattern::Sequential { stride: 1 },
                (500, 1_000),
            ),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0002, cycles: (20_000, 50_000) })
    // Occasional edge-list refresh (~8 s, roughly every 85 s): source of
    // the ≈30 % KStest false positives on PageRank (§3.2).
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.016,
        phase: PhaseSpec::new(
            "reload-edges",
            (460_000, 540_000),
            edges,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(81_920).name(), "pagerank");
    }
}
