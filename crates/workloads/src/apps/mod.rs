//! Models of the paper's applications, one module per §3.1 category.
//!
//! Every model is parameterised by the LLC capacity in lines so that
//! working-set pressure is preserved when experiments run with scaled
//! cache geometries. Region sizes, op counts and compute intensities were
//! tuned so that, on the default [`memdos_sim::server::ServerConfig`]
//! (200 k cycles/tick, 30-cycle hits, 300-cycle misses, 4096×20 LLC), the
//! per-tick `AccessNum`/`MissNum` statistics reproduce the qualitative
//! behaviour the paper reports per application: stationarity class,
//! burstiness, phase structure, and — for PCA and FaceNet — periodicity.

pub mod bayes;
pub mod facenet;
pub mod hive;
pub mod kmeans;
pub mod pagerank;
pub mod pca;
pub mod svm;
pub mod terasort;
pub mod utility;

use crate::phase::Region;

/// Sequentially allocates non-overlapping regions in a VM's line address
/// space, with a guard gap between regions.
#[derive(Debug, Default)]
pub(crate) struct Layout {
    next: u64,
}

impl Layout {
    pub(crate) fn new() -> Self {
        Layout { next: 0 }
    }

    /// Reserves a region of `lines` lines.
    pub(crate) fn region(&mut self, lines: u64) -> Region {
        let r = Region::new(self.next, lines);
        // Guard gap avoids accidental spatial adjacency between regions.
        self.next += lines + 1024;
        r
    }
}

/// Scales a fraction of the LLC capacity to a line count (at least 1).
pub(crate) fn frac(llc_lines: u64, f: f64) -> u64 {
    ((llc_lines as f64 * f).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_do_not_overlap() {
        let mut l = Layout::new();
        let a = l.region(100);
        let b = l.region(200);
        assert!(a.base + a.lines <= b.base);
    }

    #[test]
    fn frac_scales_and_clamps() {
        assert_eq!(frac(1000, 0.5), 500);
        assert_eq!(frac(10, 0.001), 1);
    }
}
