//! Principal Components Analysis (HiBench) — a **periodic** application.
//!
//! PCA "repeatedly perform[s] the same computations on different batches
//! of data" (§3.3): each batch is loaded by streaming it through the
//! cache (memory-bound, high `MissNum`, high `AccessNum`) and then
//! reduced into a small covariance accumulator (compute-bound, low
//! `AccessNum`). The two levels alternate with a stable batch time,
//! producing the square-wave `AccessNum` pattern of Fig. 2(g) with a
//! period of roughly 6 simulated seconds (≈12 MA windows at the Table 1
//! parameters) on the default server configuration.
//!
//! Because the 1-second KStest windows land on different parts of the
//! cycle, PCA is one of the baseline's worst cases: ≈60 % false-positive
//! rate (§3.2).

use super::{frac, Layout};
use crate::phase::{BurstSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the PCA workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    // The batch region intentionally does not fit the LLC together with
    // co-tenants, so loading a batch streams from DRAM.
    let batch = layout.region(frac(llc_lines, 0.8));
    let accum = layout.region(4096);

    PhaseMachine::new(
        "pca",
        vec![
            // ~320 ticks: 160 k ops × ~310 cycles (miss + small compute).
            PhaseSpec::new(
                "load-batch",
                (155_000, 165_000),
                batch,
                Pattern::Sequential { stride: 1 },
                (5, 15),
            ),
            // ~350 ticks: 112 k ops × ~630 cycles (hit + heavy compute).
            PhaseSpec::new(
                "covariance",
                (108_000, 116_000),
                accum,
                Pattern::Random,
                (550, 650),
            )
            .with_writes(0.4),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.00005, cycles: (10_000, 30_000) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(81_920).name(), "pca");
    }
}
