//! Hadoop TeraSort — the paper's canonical KStest failure case.
//!
//! A TeraSort job moves through long, statistically distinct phases —
//! map (streaming read/write), shuffle (scattered network-buffer
//! traffic), sort (compute-heavy, cache-friendly merge), reduce
//! (streaming output). Each phase lasts tens of seconds, so a 1-second
//! KStest reference window from one phase disagrees with monitored
//! windows from another even when nothing is wrong: Fig. 1 shows KStest
//! declaring an attack in >60 % of its intervals on an attack-free
//! TeraSort run.
//!
//! Phase lengths below target 8–12 simulated seconds each on the default
//! server configuration (1 tick = 10 ms, 200 k cycles): long enough that
//! the 1-second KStest windows keep comparing different phases (the
//! §3.2/Fig. 1 false positives), short enough that a single extreme
//! phase cannot hold the EWMA outside the SDS/B band for the full
//! `H_C · ΔW = 15 s` violation window — which is exactly how SDS stays
//! specific on an application that defeats the KS baseline.

use super::{frac, Layout};
use crate::phase::{BurstSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the TeraSort workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    // The per-task working regions mostly fit the LLC (Hadoop splits are
    // processed task by task), so benign phases are partially resident
    // and the cleansing attack has eviction headroom.
    let input = layout.region(frac(llc_lines, 0.7));
    let spill = layout.region(frac(llc_lines, 0.7));
    let heap = layout.region(16_384);
    let output = layout.region(frac(llc_lines, 0.7));

    PhaseMachine::new(
        "terasort",
        vec![
            // Map: streaming, miss-heavy, medium compute (~11 s).
            PhaseSpec::new(
                "map",
                (1_800_000, 2_200_000),
                input,
                Pattern::Sequential { stride: 1 },
                (50, 90),
            )
            .with_writes(0.3),
            // Shuffle: scattered buffer traffic, minimal compute (~9 s).
            PhaseSpec::new(
                "shuffle",
                (900_000, 1_100_000),
                spill,
                Pattern::Random,
                (10, 40),
            )
            .with_writes(0.5),
            // Sort: cache-resident merge, heavy compute (~11 s).
            PhaseSpec::new(
                "sort",
                (1_000_000, 1_200_000),
                heap,
                Pattern::HotCold { hot_frac: 0.3, hot_prob: 0.8 },
                (150, 250),
            )
            .with_writes(0.4),
            // Reduce: streaming output (~8 s).
            PhaseSpec::new(
                "reduce",
                (1_200_000, 1_400_000),
                output,
                Pattern::Sequential { stride: 1 },
                (30, 60),
            )
            .with_writes(0.6),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0002, cycles: (30_000, 80_000) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(81_920).name(), "terasort");
    }
}
