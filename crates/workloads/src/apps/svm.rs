//! Support Vector Machine training (HiBench).
//!
//! SGD-style SVM training draws random mini-batches of the training set,
//! so pass lengths vary strongly between iterations; the weight-update
//! phase touches a small dense vector. The higher iteration-to-iteration
//! variance gives SVM a somewhat higher KStest false-positive rate than
//! Bayes (≈35 %, §3.2).

use super::{frac, Layout};
use crate::phase::{BurstSpec, EpisodeSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the SVM workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let data = layout.region(frac(llc_lines, 0.4));
    let weights = layout.region(2048);
    let full_set = layout.region(frac(llc_lines, 1.2));

    PhaseMachine::new(
        "svm",
        vec![
            PhaseSpec::new(
                "gradient",
                (20_000, 50_000), // mini-batch size varies widely
                data,
                Pattern::Sequential { stride: 1 },
                (40, 80),
            ),
            PhaseSpec::new(
                "update",
                (3_000, 6_000),
                weights,
                Pattern::Random,
                (60, 100),
            )
            .with_writes(0.7),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0005, cycles: (30_000, 80_000) })
    // Occasional full-dataset validation pass (~8 s, roughly every 70 s):
    // source of the ≈35 % KStest false positives on SVM (§3.2).
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.0036,
        phase: PhaseSpec::new(
            "validate",
            (460_000, 540_000),
            full_set,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(81_920).name(), "svm");
    }
}
