//! Hive OLAP queries (Aggregation, Join, Scan), after Pavlo et al.'s
//! benchmark as used by HiBench.
//!
//! The three operators have distinct signatures:
//!
//! * **Aggregation** — table scan feeding a hash of group accumulators,
//!   with think-time gaps between queries. Query sizes vary, giving a
//!   KStest false-positive rate of ≈40 % (§3.2).
//! * **Join** — alternating *build* (hash table of the small relation)
//!   and *probe* (stream the big relation, look up matches) phases with
//!   clearly different access rates: a bimodal workload. (The paper's
//!   §3.2 sweep does not report a Join number; it is included for the
//!   trace figures.)
//! * **Scan** — a selection scan: almost pure streaming with a light
//!   predicate, plus inter-query gaps (KStest FP ≈40 %).

use super::{frac, Layout};
use crate::phase::{BurstSpec, EpisodeSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the Hive *Aggregation* query workload.
pub fn aggregation(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    // Small enough to stay cache-resident with or without co-tenants, so
    // the KStest baseline's throttled reference matches routine queries.
    let table = layout.region(frac(llc_lines, 0.4));
    let groups = layout.region(8192);
    let scratch = layout.region(64);
    let warehouse = layout.region(frac(llc_lines, 1.2));

    PhaseMachine::new(
        "aggregation",
        vec![
            // Routine queries complete in well under a second, so every
            // 1 s KS window sees the same scan/update/gap mixture.
            PhaseSpec::new(
                "scan",
                (5_000, 9_000),
                table,
                Pattern::Sequential { stride: 1 },
                (20, 40),
            ),
            PhaseSpec::new(
                "hash-update",
                (1_000, 2_000),
                groups,
                Pattern::HotCold { hot_frac: 0.1, hot_prob: 0.7 },
                (40, 80),
            )
            .with_writes(0.6),
            // Think time between queries: a compute-dominated gap.
            PhaseSpec::new(
                "query-gap",
                (100, 300),
                scratch,
                Pattern::Sequential { stride: 1 },
                (1_500, 3_000),
            ),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0003, cycles: (20_000, 50_000) })
    // Occasional warehouse-wide analytical query (~8 s, roughly once a
    // minute): the §3.2 ≈40 % KStest false-positive rate.
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.0008,
        phase: PhaseSpec::new(
            "big-query",
            (460_000, 540_000),
            warehouse,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

/// Builds the Hive *Join* query workload.
pub fn join(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let build_side = layout.region(16_384);
    let probe_side = layout.region(frac(llc_lines, 0.8));
    let spill = layout.region(frac(llc_lines, 1.2));

    PhaseMachine::new(
        "join",
        vec![
            PhaseSpec::new(
                "build",
                (1_500, 2_500),
                build_side,
                Pattern::Random,
                (30, 60),
            )
            .with_writes(0.8),
            PhaseSpec::new(
                "probe",
                (6_000, 10_000),
                probe_side,
                Pattern::HotCold { hot_frac: 0.25, hot_prob: 0.5 },
                (30, 60),
            ),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0003, cycles: (20_000, 50_000) })
    // Occasional spilling join against a cold relation (~8 s).
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.0004,
        phase: PhaseSpec::new(
            "spill-join",
            (460_000, 540_000),
            spill,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

/// Builds the Hive *Scan* query workload.
pub fn scan(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    // The scanned partition mostly fits the LLC, so the benign scan is
    // hit-dominated; the cleansing attack then has eviction headroom
    // (MissNum rises — Observation 1) instead of merely slowing an
    // already-missing stream.
    let table = layout.region(frac(llc_lines, 0.6));
    let scratch = layout.region(64);
    let cold_table = layout.region(frac(llc_lines, 1.2));

    PhaseMachine::new(
        "scan",
        vec![
            PhaseSpec::new(
                "scan",
                (40_000, 80_000),
                table,
                Pattern::Sequential { stride: 1 },
                (15, 30),
            ),
            PhaseSpec::new(
                "query-gap",
                (200, 500),
                scratch,
                Pattern::Sequential { stride: 1 },
                (2_000, 5_000),
            ),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0003, cycles: (20_000, 60_000) })
    // Occasional cold full-table scan (~8 s, roughly once a minute): the
    // §3.2 ≈40 % KStest false-positive rate for Scan.
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.003,
        phase: PhaseSpec::new(
            "cold-scan",
            (460_000, 540_000),
            cold_table,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_names() {
        assert_eq!(aggregation(81_920).name(), "aggregation");
        assert_eq!(join(81_920).name(), "join");
        assert_eq!(scan(81_920).name(), "scan");
    }
}
