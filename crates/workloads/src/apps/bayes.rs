//! Bayesian classification (HiBench).
//!
//! Naive-Bayes training is a counting job: a long scan over the training
//! corpus feeding a model table of per-class token counts, followed by a
//! short normalisation pass. Iterations are fast and similar, so the
//! statistics are largely stationary with moderate burst noise from task
//! scheduling — the paper measures a KStest false-positive rate of
//! ≈30 % for Bayes (§3.2).

use super::{frac, Layout};
use crate::phase::{BurstSpec, EpisodeSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the Bayes workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let corpus = layout.region(frac(llc_lines, 0.3));
    let model = layout.region(4096);
    let archive = layout.region(frac(llc_lines, 1.0));

    PhaseMachine::new(
        "bayes",
        vec![
            PhaseSpec::new(
                "count",
                (30_000, 40_000),
                corpus,
                Pattern::Sequential { stride: 1 },
                (30, 60),
            ),
            PhaseSpec::new(
                "aggregate",
                (6_000, 9_000),
                model,
                Pattern::HotCold { hot_frac: 0.2, hot_prob: 0.8 },
                (50, 90),
            )
            .with_writes(0.5),
            PhaseSpec::new(
                "normalize",
                (2_000, 3_000),
                model,
                Pattern::Sequential { stride: 1 },
                (80, 120),
            ),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0004, cycles: (20_000, 60_000) })
    // Occasional checkpoint/rebuild episode (~8 s, roughly every 80 s):
    // source of the ≈30 % KStest false positives on Bayes (§3.2).
    .with_episode(EpisodeSpec {
        prob_per_cycle: 0.0036,
        phase: PhaseSpec::new(
            "checkpoint",
            (460_000, 540_000),
            archive,
            Pattern::Sequential { stride: 1 },
            (5, 15),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(81_920).name(), "bayes");
    }
}
