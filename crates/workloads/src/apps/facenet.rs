//! FaceNet mini-batch training (TensorFlow) — the paper's flagship
//! **periodic** application.
//!
//! Deep-learning training repeats an identical computation per
//! mini-batch: load the batch (streaming, memory-bound), forward pass
//! (model-resident, compute-heavy), backward pass (heavier still), weight
//! update (streaming over the parameter block). The `AccessNum` trace
//! therefore repeats with a stable period — Fig. 8(a) — that the paper
//! profiles at ≈17 MA windows (≈8.5 s at the Table 1 parameters), and
//! that **dilates** under either attack because a slowed VM needs longer
//! per batch (Observation 2, the signal SDS/P detects).
//!
//! The phase budget below targets a period of ≈850 ticks (8.5 s) on the
//! default server configuration.

use super::{frac, Layout};
use crate::phase::{BurstSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds the FaceNet workload for an LLC of `llc_lines` lines.
pub fn program(llc_lines: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let batch = layout.region(frac(llc_lines, 0.6));
    let model = layout.region(4_096);
    let weights = layout.region(16_384);

    PhaseMachine::new(
        "facenet",
        vec![
            // Load mini-batch: streaming misses (~90 ticks).
            PhaseSpec::new(
                "load-batch",
                (90_000, 96_000),
                batch,
                Pattern::Sequential { stride: 1 },
                (5, 15),
            ),
            // Forward pass: model-resident, compute-heavy (~220 ticks).
            PhaseSpec::new(
                "forward",
                (110_000, 118_000),
                model,
                Pattern::HotCold { hot_frac: 0.3, hot_prob: 0.85 },
                (330, 370),
            ),
            // Backward pass: heavier compute (~360 ticks).
            PhaseSpec::new(
                "backward",
                (130_000, 138_000),
                model,
                Pattern::HotCold { hot_frac: 0.3, hot_prob: 0.85 },
                (480, 520),
            )
            .with_writes(0.5),
            // Weight update: streaming over the parameter block (~60 ticks).
            PhaseSpec::new(
                "update",
                (63_000, 68_000),
                weights,
                Pattern::Sequential { stride: 1 },
                (40, 60),
            )
            .with_writes(0.9),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.00004, cycles: (10_000, 25_000) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(81_920).name(), "facenet");
    }
}
