//! Benign background VMs.
//!
//! §5.1: besides the victim and the attacker, "the other 7 VMs were all
//! benign VMs that ran normal Linux utilities such as sysstat and dstat".
//! These produce light, mostly compute-bound activity with occasional
//! small bursts of memory traffic — enough to keep the LLC realistically
//! shared without dominating it.

use super::Layout;
use crate::phase::{BurstSpec, Pattern, PhaseMachine, PhaseSpec};

/// Builds a light utility workload. `flavor` varies the working set and
/// duty cycle slightly so the seven background VMs are not identical.
pub fn program(flavor: u64) -> PhaseMachine {
    let mut layout = Layout::new();
    let stats = layout.region(512 + (flavor % 4) * 256);
    let logs = layout.region(2048);

    PhaseMachine::new(
        "utility",
        vec![
            // Poll counters: small working set, light compute.
            PhaseSpec::new(
                "poll",
                (300 + flavor * 20, 600 + flavor * 20),
                stats,
                Pattern::Random,
                (200, 400),
            ),
            // Mostly idle: long compute stretches with rare accesses.
            PhaseSpec::new(
                "idle",
                (100, 300),
                stats,
                Pattern::Random,
                (2_000, 6_000),
            ),
            // Periodic log append.
            PhaseSpec::new(
                "log",
                (100, 400),
                logs,
                Pattern::Sequential { stride: 1 },
                (100, 300),
            )
            .with_writes(0.9),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.001, cycles: (10_000, 40_000) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::program::VmProgram;

    #[test]
    fn builds_with_expected_name() {
        assert_eq!(program(0).name(), "utility");
        assert_eq!(program(6).name(), "utility");
    }
}
