//! The application catalogue: one entry per §3.1 workload.

use crate::apps;
use crate::phase::PhaseMachine;
use memdos_sim::pcm::Stat;
use memdos_sim::program::VmProgram;

/// The ten applications of the paper's measurement study (§3.1), by
/// category: machine learning (Bayes, SVM, KMeans, PCA), database
/// (Aggregation, Join, Scan), data-intensive (TeraSort), web search
/// (PageRank) and deep learning (FaceNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Application {
    /// Bayesian classification (HiBench ML).
    Bayes,
    /// Support Vector Machine (HiBench ML).
    Svm,
    /// k-means clustering (HiBench ML).
    KMeans,
    /// Principal Components Analysis (HiBench ML) — periodic.
    Pca,
    /// Hive Aggregation query (database).
    Aggregation,
    /// Hive Join query (database).
    Join,
    /// Hive Scan query (database).
    Scan,
    /// Hadoop TeraSort (data-intensive).
    TeraSort,
    /// PageRank (web search).
    PageRank,
    /// FaceNet training (deep learning) — periodic.
    FaceNet,
}

impl Application {
    /// Every application, in the paper's presentation order.
    pub const ALL: [Application; 10] = [
        Application::Bayes,
        Application::Svm,
        Application::KMeans,
        Application::Pca,
        Application::Aggregation,
        Application::Join,
        Application::Scan,
        Application::TeraSort,
        Application::PageRank,
        Application::FaceNet,
    ];

    /// The applications the paper evaluates in the §3.2 KStest
    /// false-positive sweep (all except Join).
    pub const KSTEST_SWEEP: [Application; 9] = [
        Application::Bayes,
        Application::Svm,
        Application::KMeans,
        Application::Pca,
        Application::Aggregation,
        Application::Scan,
        Application::TeraSort,
        Application::PageRank,
        Application::FaceNet,
    ];

    /// Short lowercase name, matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Application::Bayes => "bayes",
            Application::Svm => "svm",
            Application::KMeans => "kmeans",
            Application::Pca => "pca",
            Application::Aggregation => "aggregation",
            Application::Join => "join",
            Application::Scan => "scan",
            Application::TeraSort => "terasort",
            Application::PageRank => "pagerank",
            Application::FaceNet => "facenet",
        }
    }

    /// Whether the paper classifies this application as *periodic*
    /// (repeating cache-access patterns with a regular period — §3.3
    /// identifies PCA and FaceNet).
    pub fn is_periodic(&self) -> bool {
        matches!(self, Application::Pca | Application::FaceNet)
    }

    /// Builds the workload model for an LLC of `llc_lines` lines.
    pub fn build(&self, llc_lines: u64) -> Box<dyn VmProgram> {
        Box::new(self.build_machine(llc_lines))
    }

    /// Builds the concrete [`PhaseMachine`] (useful in tests that need
    /// the extra introspection methods).
    pub fn build_machine(&self, llc_lines: u64) -> PhaseMachine {
        match self {
            Application::Bayes => apps::bayes::program(llc_lines),
            Application::Svm => apps::svm::program(llc_lines),
            Application::KMeans => apps::kmeans::program(llc_lines),
            Application::Pca => apps::pca::program(llc_lines),
            Application::Aggregation => apps::hive::aggregation(llc_lines),
            Application::Join => apps::hive::join(llc_lines),
            Application::Scan => apps::hive::scan(llc_lines),
            Application::TeraSort => apps::terasort::program(llc_lines),
            Application::PageRank => apps::pagerank::program(llc_lines),
            Application::FaceNet => apps::facenet::program(llc_lines),
        }
    }

    /// The §3.2 KStest false-positive rate the paper reports for this
    /// application when no attack is running (fraction of `L_R` intervals
    /// in which KStest declares an attack), used as the calibration
    /// target for `tab_s32_kstest_fp`. `None` for Join, which the paper
    /// does not report.
    pub fn paper_kstest_fp(&self) -> Option<f64> {
        match self {
            Application::Bayes => Some(0.30),
            Application::Svm => Some(0.35),
            Application::KMeans => Some(0.20),
            Application::Pca => Some(0.60),
            Application::Aggregation => Some(0.40),
            Application::Join => None,
            Application::Scan => Some(0.40),
            Application::TeraSort => Some(0.60),
            Application::PageRank => Some(0.30),
            Application::FaceNet => Some(0.55),
        }
    }

    /// The closed-form fleet signal template for this application: the
    /// `(AccessNum, MissNum)` shape its full [`PhaseMachine`] simulation
    /// produces, reduced to baseline + periodic swing + jitter so a
    /// 50k-tenant fleet scenario ([`memdos_sim::fleet`]) can stamp
    /// tenants without running 50k cache simulations. Periodic
    /// applications (PCA, FaceNet) carry a square-wave component; the
    /// rest are flat with application-specific levels.
    pub fn fleet_template(&self) -> memdos_sim::fleet::VmTemplate {
        use memdos_sim::fleet::VmTemplate;
        let (base_access, amp_access, base_miss, amp_miss, period_ticks) = match self {
            Application::Bayes => (1_100.0, 0.0, 130.0, 0.0, 0),
            Application::Svm => (1_400.0, 0.0, 90.0, 0.0, 0),
            Application::KMeans => (1_250.0, 0.0, 160.0, 0.0, 0),
            Application::Pca => (700.0, 900.0, 60.0, 120.0, 120),
            Application::Aggregation => (950.0, 0.0, 210.0, 0.0, 0),
            Application::Join => (1_050.0, 0.0, 240.0, 0.0, 0),
            Application::Scan => (900.0, 0.0, 260.0, 0.0, 0),
            Application::TeraSort => (1_600.0, 0.0, 300.0, 0.0, 0),
            Application::PageRank => (1_300.0, 0.0, 180.0, 0.0, 0),
            Application::FaceNet => (600.0, 1_000.0, 50.0, 100.0, 100),
        };
        VmTemplate {
            app: self.name(),
            base_access,
            amp_access,
            base_miss,
            amp_miss,
            period_ticks,
            jitter: 0.02,
        }
    }

    /// The statistic a detector should monitor against a given attack
    /// (§3.1): `AccessNum` for bus locking, `MissNum` for LLC cleansing.
    pub fn stat_for_attack(bus_locking: bool) -> Stat {
        if bus_locking {
            Stat::AccessNum
        } else {
            Stat::MissNum
        }
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Application {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Application::ALL
            .iter()
            .find(|a| a.name() == s)
            .copied()
            .ok_or_else(|| format!("unknown application `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_ten_unique_apps() {
        let mut names: Vec<&str> = Application::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn periodic_flags_match_paper() {
        let periodic: Vec<&str> = Application::ALL
            .iter()
            .filter(|a| a.is_periodic())
            .map(|a| a.name())
            .collect();
        assert_eq!(periodic, vec!["pca", "facenet"]);
    }

    #[test]
    fn kstest_sweep_excludes_join() {
        assert!(!Application::KSTEST_SWEEP.contains(&Application::Join));
        assert_eq!(Application::KSTEST_SWEEP.len(), 9);
        assert!(Application::Join.paper_kstest_fp().is_none());
    }

    #[test]
    fn builds_every_application() {
        for app in Application::ALL {
            let pm = app.build_machine(81_920);
            assert_eq!(memdos_sim::program::VmProgram::name(&pm), app.name());
        }
    }

    #[test]
    fn fleet_templates_cover_the_catalogue() {
        for app in Application::ALL {
            let t = app.fleet_template();
            assert_eq!(t.app, app.name());
            assert!(t.base_access > 0.0 && t.base_miss > 0.0);
            // Periodicity flags match the paper's classification.
            assert_eq!(t.period_ticks > 0, app.is_periodic(), "{app}");
            assert_eq!(t.amp_access > 0.0, app.is_periodic(), "{app}");
        }
    }

    #[test]
    fn from_str_round_trips() {
        for app in Application::ALL {
            let parsed: Application = app.name().parse().unwrap();
            assert_eq!(parsed, app);
        }
        assert!("nonsense".parse::<Application>().is_err());
    }

    #[test]
    fn stat_selection_matches_paper() {
        assert_eq!(Application::stat_for_attack(true), Stat::AccessNum);
        assert_eq!(Application::stat_for_attack(false), Stat::MissNum);
    }
}
