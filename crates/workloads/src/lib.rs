//! # memdos-workloads
//!
//! Synthetic models of the ten cloud applications the paper measures
//! (§3.1) plus the benign utility VMs used as background tenants (§5.1).
//!
//! The paper runs real applications — HiBench machine-learning workloads
//! (Bayes, SVM, k-means, PCA), Hive OLAP queries (Aggregation, Join,
//! Scan), Hadoop TeraSort, PageRank, and a TensorFlow FaceNet trainer —
//! none of which can run inside this simulator. What the detectors
//! actually consume, however, is each application's *statistical
//! signature* in per-10 ms LLC counters. Each model here is a
//! [`phase::PhaseMachine`]: a cyclic sequence of phases over address-space
//! regions with distinct locality, compute intensity and jitter, tuned to
//! reproduce the signature the paper reports for its application:
//!
//! | application | signature reproduced |
//! |---|---|
//! | k-means | quasi-stationary; sub-second micro-phases; lowest KStest false-positive rate (≈20 %) |
//! | Bayes, SVM | iterative ML with moderate burst noise (KStest FP ≈30–35 %) |
//! | PCA | **periodic** batch processing, period ≈6 s (KStest FP ≈60 %) |
//! | Aggregation, Scan | OLAP scan/aggregate cycles with query gaps (KStest FP ≈40 %) |
//! | Join | bimodal build/probe alternation |
//! | TeraSort | long, strongly non-stationary map→shuffle→sort→reduce phases (KStest FP >60 %, Fig. 1) |
//! | PageRank | super-step iteration over a Zipfian web graph (KStest FP ≈30 %) |
//! | FaceNet | **periodic** mini-batch training, period ≈17 MA windows ≈8.5 s (KStest FP ≈55 %, Fig. 8) |
//! | utility | light sysstat/dstat-like background load |
//!
//! Use [`catalog::Application`] to enumerate and instantiate the models:
//!
//! ```rust
//! use memdos_workloads::catalog::Application;
//! use memdos_sim::server::{Server, ServerConfig};
//!
//! let mut server = Server::new(ServerConfig::default());
//! let llc_lines = server.config().geometry.lines() as u64;
//! let vm = server.add_vm("victim", Application::KMeans.build(llc_lines));
//! let report = server.tick();
//! assert!(report.sample(vm).unwrap().accesses > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod catalog;
pub mod phase;

pub use catalog::Application;
pub use phase::{BurstSpec, Pattern, PhaseMachine, PhaseSpec, Region};
