//! `bench-check`: regression gate over `BENCH_*.json` micro-bench reports.
//!
//! The micro benchmark (`cargo bench -p memdos-bench --bench micro`)
//! emits a flat JSON object mapping kernel names to numbers — wall-clock
//! medians in nanoseconds (`*_ns` keys) and throughputs (`*per_sec*`
//! keys). CI runs `cargo run -p xtask -- bench-check <current>
//! <baseline>` to fail the build when
//!
//! * the current report is malformed (not a flat `{"key": number}`
//!   object), or
//! * any `*_ns` kernel got more than `tolerance`× slower than the
//!   checked-in baseline, or
//! * any `*per_sec*` throughput dropped below `1/tolerance` of baseline,
//!   or
//! * any `*scaling*` ratio fell below parity — these keys are
//!   dimensionless speedups (e.g. 4-worker over 1-worker ingest
//!   throughput), so the gate is absolute rather than
//!   baseline-relative: parallel dispatch must never be materially
//!   slower than single-threaded, on any machine, regardless of
//!   tolerance. "Materially" is a fixed 5 % timer-noise floor
//!   ([`SCALING_FLOOR`]): on a single-core host both sides of the
//!   ratio run the identical clamped serial path and measure 1.0 ± a
//!   few percent, while the pathology this gate was built against
//!   (per-batch thread round-trips) measured 0.62.
//!
//! The default tolerance is 2.0 (a deliberate wide margin: CI machines
//! are noisy and share cores); override with `MEMDOS_BENCH_TOLERANCE`.
//! Keys present only in one report are tolerated in the *current* report
//! (new kernels appear as the suite grows) but a baseline key missing
//! from the current report is an error — a silently dropped benchmark
//! would otherwise mask a regression forever.

use std::fs;
use std::path::Path;

/// Flat `{"key": number, ...}` parser. Std-only, no escapes in keys
/// (benchmark names are ASCII identifiers), numbers in the JSON subset
/// `f64::from_str` accepts.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;

    let skip_ws = |pos: &mut usize| {
        while bytes.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
            *pos += 1;
        }
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("expected '{' at start of report".to_string());
    }
    pos += 1;
    let mut out: Vec<(String, f64)> = Vec::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
        skip_ws(&mut pos);
        return if pos == bytes.len() {
            Ok(out)
        } else {
            Err("trailing content after closing '}'".to_string())
        };
    }
    loop {
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b'"') {
            return Err(format!("expected '\"' to open a key at byte {pos}"));
        }
        pos += 1;
        let key_start = pos;
        while let Some(&c) = bytes.get(pos) {
            if c == b'"' {
                break;
            }
            if c == b'\\' || c < 0x20 {
                return Err(format!("unsupported escape or control byte in key at byte {pos}"));
            }
            pos += 1;
        }
        if bytes.get(pos) != Some(&b'"') {
            return Err("unterminated key string".to_string());
        }
        let key = text.get(key_start..pos).unwrap_or("").to_string();
        if key.is_empty() {
            return Err("empty benchmark key".to_string());
        }
        pos += 1;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        pos += 1;
        skip_ws(&mut pos);
        let num_start = pos;
        while bytes
            .get(pos)
            .is_some_and(|&c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            pos += 1;
        }
        let num_text = text.get(num_start..pos).unwrap_or("");
        let value: f64 = num_text
            .parse()
            .map_err(|e| format!("key {key:?}: bad number {num_text:?}: {e}"))?;
        if out.iter().any(|(k, _)| k == &key) {
            return Err(format!("duplicate key {key:?}"));
        }
        out.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
    skip_ws(&mut pos);
    if pos == bytes.len() {
        Ok(out)
    } else {
        Err("trailing content after closing '}'".to_string())
    }
}

fn lookup(report: &[(String, f64)], key: &str) -> Option<f64> {
    report.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

/// Absolute lower bound for `*scaling*` speedup ratios: parity minus a
/// 5 % measurement-noise allowance. Not scaled by the tolerance — a
/// parallel path slower than this is a structural regression, not a
/// noisy machine.
pub const SCALING_FLOOR: f64 = 0.95;

/// Compares a current report against a baseline; returns one line per
/// problem (empty = pass). `tolerance` is the allowed slowdown factor.
pub fn compare(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    if !current.iter().any(|(k, _)| k.ends_with("_ns")) {
        problems.push("current report carries no *_ns kernel timings".to_string());
    }
    for (key, base) in baseline {
        let Some(cur) = lookup(current, key) else {
            problems.push(format!("{key}: present in baseline but missing from current report"));
            continue;
        };
        if !cur.is_finite() || cur < 0.0 {
            problems.push(format!("{key}: non-finite or negative value {cur}"));
            continue;
        }
        if !base.is_finite() || *base <= 0.0 {
            // An unset baseline slot (e.g. a 0 from a machine that could
            // not measure it) gates nothing.
            continue;
        }
        if key.ends_with("_ns") && cur > base * tolerance {
            problems.push(format!(
                "{key}: {cur:.0} ns vs baseline {base:.0} ns — more than {tolerance}x slower"
            ));
        }
        if key.contains("per_sec") && cur * tolerance < *base {
            problems.push(format!(
                "{key}: {cur:.2}/s vs baseline {base:.2}/s — less than 1/{tolerance} of baseline"
            ));
        }
        if key.contains("scaling") && cur < SCALING_FLOOR {
            problems.push(format!(
                "{key}: speedup ratio {cur:.3} < {SCALING_FLOOR} — parallel dispatch is \
                 slower than single-threaded (baseline ratio {base:.3}); the gate is \
                 absolute, not tolerance-scaled"
            ));
        }
    }
    problems
}

/// Reads, parses and compares the two report files. `Err` is an
/// operational failure (unreadable/malformed file); an `Ok` non-empty
/// vector lists benchmark regressions.
pub fn run(current: &Path, baseline: &Path, tolerance: f64) -> Result<Vec<String>, String> {
    if !tolerance.is_finite() || tolerance < 1.0 {
        return Err(format!("tolerance must be a finite factor >= 1.0, got {tolerance}"));
    }
    let read = |path: &Path| -> Result<Vec<(String, f64)>, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        parse_flat_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let cur = read(current)?;
    let base = read(baseline)?;
    Ok(compare(&cur, &base, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_reports() {
        let parsed = parse_flat_json("{\n  \"a_ns\": 12.5,\n  \"b_per_sec\": 3e2\n}\n").unwrap();
        assert_eq!(parsed, vec![("a_ns".to_string(), 12.5), ("b_per_sec".to_string(), 300.0)]);
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
    }

    #[test]
    fn rejects_malformed_reports() {
        for bad in [
            "",
            "[1, 2]",
            "{\"a\": }",
            "{\"a\": 1",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": \"text\"}",
            "{\"\": 1}",
        ] {
            assert!(parse_flat_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn flags_ns_regressions_and_throughput_drops() {
        let base = vec![("k_ns".to_string(), 100.0), ("grid_per_sec_t4".to_string(), 10.0)];
        let ok = vec![("k_ns".to_string(), 150.0), ("grid_per_sec_t4".to_string(), 6.0)];
        assert!(compare(&ok, &base, 2.0).is_empty());
        let slow = vec![("k_ns".to_string(), 250.0), ("grid_per_sec_t4".to_string(), 4.0)];
        let problems = compare(&slow, &base, 2.0);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn flags_missing_keys_and_empty_reports() {
        let base = vec![("k_ns".to_string(), 100.0)];
        let missing = vec![("other_ns".to_string(), 1.0)];
        assert_eq!(compare(&missing, &base, 2.0).len(), 1);
        // No *_ns keys at all: structurally suspicious.
        assert!(!compare(&[], &[], 2.0).is_empty());
        // Extra keys in current are fine (new benchmarks).
        let grown = vec![("k_ns".to_string(), 100.0), ("new_ns".to_string(), 5.0)];
        assert!(compare(&grown, &base, 2.0).is_empty());
    }

    #[test]
    fn scaling_ratios_gate_absolutely() {
        let base =
            vec![("k_ns".to_string(), 100.0), ("engine_ingest_scaling_t4".to_string(), 1.5)];
        // Parity-within-noise passes even far below the baseline ratio —
        // the gate is absolute, not relative.
        let ok = vec![("k_ns".to_string(), 100.0), ("engine_ingest_scaling_t4".to_string(), 0.97)];
        assert!(compare(&ok, &base, 2.0).is_empty());
        // Below the noise floor fails regardless of how generous the
        // tolerance is.
        let neg =
            vec![("k_ns".to_string(), 100.0), ("engine_ingest_scaling_t4".to_string(), 0.93)];
        let problems = compare(&neg, &base, 1000.0);
        assert_eq!(problems.len(), 1, "{problems:?}");
        // A scaling key in the baseline must not vanish from the report.
        let gone = vec![("k_ns".to_string(), 100.0)];
        assert_eq!(compare(&gone, &base, 2.0).len(), 1);
    }

    #[test]
    fn zero_baseline_slots_gate_nothing() {
        let base = vec![("k_ns".to_string(), 100.0), ("t_per_sec".to_string(), 0.0)];
        let cur = vec![("k_ns".to_string(), 100.0), ("t_per_sec".to_string(), 0.1)];
        assert!(compare(&cur, &base, 2.0).is_empty());
    }
}
