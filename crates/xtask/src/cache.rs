//! Content-hash incremental cache for the two-phase lint.
//!
//! The cache lives at `target/xtask-lint-cache.json` and has two parts:
//!
//! * **per-file records** — keyed by display path, each carrying the
//!   FNV-1a hash of the file's bytes plus the local findings, justified
//!   markers and locally-used marker set from the last run. A file whose
//!   hash matches is served from the record without any rule scanning.
//! * **a graph record** — keyed by a digest over *all* `(path, hash)`
//!   pairs. The graph rules (L9/L10) are whole-workspace properties, so
//!   their findings are reusable only when no file changed at all; any
//!   edit re-runs phase 2 from fresh symbols while unchanged files still
//!   skip their local scans.
//!
//! Invalidation is by content, not mtime: hashes are over bytes, and
//! [`RULES_VERSION`] is baked into the graph digest and checked on load,
//! so editing the rule set discards stale findings wholesale. The format
//! is a private std-only JSON dialect (objects, arrays, strings,
//! unsigned integers) — xtask must stay dependency-free so the lint runs
//! even when the workspace it checks does not compile.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::rules::Finding;

/// Cache format version: bump on any layout change.
pub const CACHE_VERSION: u64 = 1;

/// Rule-set version: bump whenever a rule family, its scoping, or its
/// diagnostic text changes, so stale findings cannot be replayed.
pub const RULES_VERSION: u64 = 1;

/// Every rule code a cached finding may carry. Findings are interned
/// back to these on load; an unknown code discards the cache.
const RULE_NAMES: [&str; 20] = [
    "L1/panic",
    "L1/index",
    "L2/time",
    "L2/collections",
    "L2/rand",
    "L3/float-eq",
    "L3/partial-cmp",
    "L4/unsafe",
    "L4/cargo",
    "L5/thread",
    "L5/seed",
    "L6/step",
    "L7/hot-alloc",
    "L8/shared-state",
    "L9/hot-propagate",
    "L10/determinism-taint",
    "L11/verdict-match",
    "allow",
    "allow-unknown",
    "allow-unused",
];

/// 64-bit FNV-1a over `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest over the whole tree: every `(path, hash)` pair in sorted
/// order, plus the rule-set version.
pub fn tree_digest(hashes: &BTreeMap<String, u64>) -> u64 {
    let mut acc = String::new();
    for (path, hash) in hashes {
        acc.push_str(path);
        acc.push('\0');
        acc.push_str(&format!("{hash:016x}"));
        acc.push('\0');
    }
    acc.push_str(&format!("rules:{RULES_VERSION}"));
    fnv64(acc.as_bytes())
}

/// One file's cached state.
#[derive(Debug, Clone, Default)]
pub struct FileEntry {
    /// FNV-1a of the file bytes this record was computed from.
    pub hash: u64,
    /// Local findings (phase-1 rules) for the file.
    pub findings: Vec<Finding>,
    /// Justified `lint:allow` markers as `(line, category)`.
    pub markers: Vec<(usize, String)>,
    /// Marker indices consumed by the local rules.
    pub used: BTreeSet<usize>,
}

/// The whole-workspace graph record.
#[derive(Debug, Clone, Default)]
pub struct GraphEntry {
    /// [`tree_digest`] over the run that produced this record.
    pub digest: u64,
    /// L9/L10 findings.
    pub findings: Vec<Finding>,
    /// `(file path, marker index)` suppressions the graph rules used.
    pub used: BTreeSet<(String, usize)>,
    /// Node count, for the stats line.
    pub fns: usize,
    /// Edge count, for the stats line.
    pub edges: usize,
}

/// The on-disk cache.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    pub files: BTreeMap<String, FileEntry>,
    pub graph: Option<GraphEntry>,
}

impl Cache {
    /// Loads and validates the cache; any structural problem or version
    /// mismatch yields `None` (a cold run), never an error.
    pub fn load(path: &Path) -> Option<Cache> {
        let text = std::fs::read_to_string(path).ok()?;
        let root = parse_json(&text)?;
        let obj = root.as_obj()?;
        if obj.get("version")?.as_u64()? != CACHE_VERSION {
            return None;
        }
        if obj.get("rules_version")?.as_u64()? != RULES_VERSION {
            return None;
        }
        let mut files = BTreeMap::new();
        for (path, entry) in obj.get("files")?.as_obj()? {
            let e = entry.as_obj()?;
            let hash = u64::from_str_radix(e.get("hash")?.as_str()?, 16).ok()?;
            let findings = parse_findings(e.get("findings")?)?;
            let mut markers = Vec::new();
            for m in e.get("markers")?.as_arr()? {
                let pair = m.as_arr()?;
                let line = pair.first()?.as_u64()? as usize;
                let category = pair.get(1)?.as_str()?.to_string();
                markers.push((line, category));
            }
            let mut used = BTreeSet::new();
            for u in e.get("used")?.as_arr()? {
                used.insert(u.as_u64()? as usize);
            }
            files.insert(path.clone(), FileEntry { hash, findings, markers, used });
        }
        let graph = match obj.get("graph") {
            None => None,
            Some(g) => {
                let g = g.as_obj()?;
                let digest = u64::from_str_radix(g.get("digest")?.as_str()?, 16).ok()?;
                let findings = parse_findings(g.get("findings")?)?;
                let mut used = BTreeSet::new();
                for u in g.get("used")?.as_arr()? {
                    let pair = u.as_arr()?;
                    let file = pair.first()?.as_str()?.to_string();
                    let marker = pair.get(1)?.as_u64()? as usize;
                    used.insert((file, marker));
                }
                let fns = g.get("fns")?.as_u64()? as usize;
                let edges = g.get("edges")?.as_u64()? as usize;
                Some(GraphEntry { digest, findings, used, fns, edges })
            }
        };
        Some(Cache { files, graph })
    }

    /// Renders and writes the cache, creating the parent directory.
    pub fn store(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, self.render())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// The JSON text for this cache.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"version\":{CACHE_VERSION},\"rules_version\":{RULES_VERSION},\"files\":{{"
        ));
        for (i, (path, e)) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, path);
            out.push_str(&format!(":{{\"hash\":\"{:016x}\",\"findings\":", e.hash));
            write_findings(&mut out, &e.findings);
            out.push_str(",\"markers\":[");
            for (j, (line, category)) in e.markers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{line},"));
                write_str(&mut out, category);
                out.push(']');
            }
            out.push_str("],\"used\":[");
            for (j, u) in e.used.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{u}"));
            }
            out.push_str("]}");
        }
        out.push('}');
        if let Some(g) = &self.graph {
            out.push_str(&format!(",\"graph\":{{\"digest\":\"{:016x}\",\"findings\":", g.digest));
            write_findings(&mut out, &g.findings);
            out.push_str(",\"used\":[");
            for (j, (file, marker)) in g.used.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                write_str(&mut out, file);
                out.push_str(&format!(",{marker}]"));
            }
            out.push_str(&format!("],\"fns\":{},\"edges\":{}}}", g.fns, g.edges));
        }
        out.push('}');
        out
    }
}

/// Renders findings as a JSON array — shared between the cache file and
/// the `--format json` CI payload.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    write_findings(&mut out, findings);
    out
}

fn parse_findings(v: &Json) -> Option<Vec<Finding>> {
    let mut findings = Vec::new();
    for f in v.as_arr()? {
        let f = f.as_obj()?;
        let rule_name = f.get("rule")?.as_str()?;
        let rule = RULE_NAMES.iter().copied().find(|r| *r == rule_name)?;
        findings.push(Finding {
            file: f.get("file")?.as_str()?.to_string(),
            line: f.get("line")?.as_u64()? as usize,
            rule,
            message: f.get("message")?.as_str()?.to_string(),
        });
    }
    Some(findings)
}

fn write_findings(out: &mut String, findings: &[Finding]) {
    out.push('[');
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        write_str(out, &f.file);
        out.push_str(&format!(",\"line\":{},\"rule\":", f.line));
        write_str(out, f.rule);
        out.push_str(",\"message\":");
        write_str(out, &f.message);
        out.push('}');
    }
    out.push(']');
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value — the subset the cache writes: objects, arrays,
/// strings and unsigned integers.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(u64),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Option<Json> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

/// Recursion guard: the cache nests four levels deep; anything deeper
/// is not ours.
const MAX_DEPTH: usize = 16;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.peek() == c {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => self.string().map(Json::Str),
            b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Some(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(map));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.peek() != b'"' {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), b'"' | b'\\' | 0) {
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(self.bytes.get(start..self.pos)?).ok()?);
            match self.peek() {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => return None, // unterminated
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos)?).ok()?;
        text.parse::<u64>().ok().map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
        let mut a = BTreeMap::new();
        a.insert("x.rs".to_string(), 1u64);
        let mut b = a.clone();
        b.insert("y.rs".to_string(), 2u64);
        assert_ne!(tree_digest(&a), tree_digest(&b));
    }

    #[test]
    fn cache_round_trips_through_render_and_parse() {
        let mut files = BTreeMap::new();
        files.insert(
            "crates/core/src/sds.rs".to_string(),
            FileEntry {
                hash: 0xdead_beef,
                findings: vec![Finding {
                    file: "crates/core/src/sds.rs".to_string(),
                    line: 12,
                    rule: "L1/panic",
                    message: "has \"quotes\" and\nnewlines — and dashes".to_string(),
                }],
                markers: vec![(3, "panic".to_string())],
                used: BTreeSet::from([0]),
            },
        );
        let graph = Some(GraphEntry {
            digest: 42,
            findings: vec![Finding {
                file: "crates/engine/src/engine.rs".to_string(),
                line: 700,
                rule: "L10/determinism-taint",
                message: "chain".to_string(),
            }],
            used: BTreeSet::from([("crates/runner/src/lib.rs".to_string(), 1usize)]),
            fns: 250,
            edges: 430,
        });
        let cache = Cache { files, graph };
        let text = cache.render();
        let dir = std::env::temp_dir().join("xtask-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("roundtrip.json");
        std::fs::write(&path, &text).expect("write temp cache");
        let loaded = Cache::load(&path).expect("cache parses");
        assert_eq!(loaded.files.len(), 1);
        let e = loaded.files.get("crates/core/src/sds.rs").expect("entry");
        assert_eq!(e.hash, 0xdead_beef);
        assert_eq!(e.findings, cache.files.get("crates/core/src/sds.rs").map(|e| e.findings.clone()).unwrap_or_default());
        assert_eq!(e.markers, vec![(3, "panic".to_string())]);
        assert!(e.used.contains(&0));
        let g = loaded.graph.expect("graph entry");
        assert_eq!(g.digest, 42);
        assert_eq!(g.fns, 250);
        assert_eq!(g.edges, 430);
        assert!(g.used.contains(&("crates/runner/src/lib.rs".to_string(), 1)));
    }

    #[test]
    fn version_mismatch_and_garbage_yield_cold_runs() {
        let dir = std::env::temp_dir().join("xtask-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"version\":999,\"rules_version\":1,\"files\":{}}")
            .expect("write");
        assert!(Cache::load(&path).is_none());
        std::fs::write(&path, "not json at all").expect("write");
        assert!(Cache::load(&path).is_none());
        std::fs::write(&path, "{\"version\":1").expect("write");
        assert!(Cache::load(&path).is_none());
        assert!(Cache::load(&dir.join("missing.json")).is_none());
    }

    #[test]
    fn unknown_rule_codes_discard_the_cache() {
        let text = format!(
            "{{\"version\":{CACHE_VERSION},\"rules_version\":{RULES_VERSION},\"files\":{{\
             \"a.rs\":{{\"hash\":\"00000000000000ff\",\"findings\":[{{\"file\":\"a.rs\",\
             \"line\":1,\"rule\":\"L99/bogus\",\"message\":\"m\"}}],\"markers\":[],\
             \"used\":[]}}}}}}"
        );
        let dir = std::env::temp_dir().join("xtask-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("unknown-rule.json");
        std::fs::write(&path, text).expect("write");
        assert!(Cache::load(&path).is_none());
    }
}
