//! L4 crate-hygiene checks over `Cargo.toml` files.
//!
//! A tiny line-oriented TOML reader — enough for the flat manifests this
//! workspace uses. Two rules:
//!
//! 1. no wildcard (`*`) version requirements anywhere;
//! 2. member crates must inherit every dependency from the workspace
//!    (`{ workspace = true }`), so versions are pinned in exactly one
//!    place. The workspace root's `[workspace.dependencies]` table is the
//!    definition site and may use `path`/version entries.

use crate::rules::Finding;

fn is_dep_section(name: &str) -> bool {
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name == "workspace.dependencies"
        || (name.starts_with("target.") && name.ends_with("dependencies"))
}

/// Checks one manifest. `is_workspace_root` relaxes the inheritance rule
/// for the `[workspace.dependencies]` definition site.
pub fn check_manifest(file: &str, source: &str, is_workspace_root: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if value.contains("\"*\"") || value.contains("version = \"*\"") {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: "L4/cargo",
                message: format!("dependency `{name}` uses a wildcard version"),
            });
            continue;
        }
        let definition_site = is_workspace_root && section == "workspace.dependencies";
        let inherited = value.contains("workspace = true");
        if !definition_site && !inherited {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: "L4/cargo",
                message: format!(
                    "dependency `{name}` must be workspace-inherited: `{name} = {{ workspace = true }}`"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_version_flagged() {
        let toml = "[dependencies]\nfoo = \"*\"\n";
        let f = check_manifest("Cargo.toml", toml, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wildcard"));
    }

    #[test]
    fn non_inherited_dep_flagged_in_member() {
        let toml = "[dev-dependencies]\nserde = \"1.0\"\n";
        let f = check_manifest("Cargo.toml", toml, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("workspace-inherited"));
    }

    #[test]
    fn workspace_definition_site_is_exempt() {
        let toml = "[workspace.dependencies]\nmemdos-stats = { path = \"crates/stats\" }\n";
        assert!(check_manifest("Cargo.toml", toml, true).is_empty());
        // ... but not in a member manifest.
        assert_eq!(check_manifest("Cargo.toml", toml, false).len(), 1);
    }

    #[test]
    fn inherited_deps_and_metadata_pass() {
        let toml = "[package]\nname = \"x\"\nversion.workspace = true\n\n[dependencies]\n\
                    memdos-stats = { workspace = true }\n";
        assert!(check_manifest("Cargo.toml", toml, false).is_empty());
    }
}
