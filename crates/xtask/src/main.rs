//! CLI entry point: `cargo run -p xtask -- lint [--root <path>]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <workspace-dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "lint" {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        if arg == "--root" {
            match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            }
        } else {
            return usage();
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("xtask: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match xtask::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("xtask: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match xtask::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
