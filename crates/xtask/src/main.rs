//! CLI entry point:
//!
//! * `cargo run -p xtask -- lint [--root <path>]` — workspace lint.
//! * `cargo run -p xtask -- bench-check <current> <baseline>` — validate
//!   a `BENCH_*.json` report and fail on regressions beyond the
//!   tolerance factor (default 2.0, override `MEMDOS_BENCH_TOLERANCE`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root <workspace-dir>]\n       \
         cargo run -p xtask -- bench-check <current.json> <baseline.json>"
    );
    ExitCode::from(2)
}

fn bench_check(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(current), Some(baseline), None) = (args.next(), args.next(), args.next()) else {
        return usage();
    };
    let tolerance = match std::env::var("MEMDOS_BENCH_TOLERANCE") {
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: MEMDOS_BENCH_TOLERANCE {v:?} is not a number: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => 2.0,
    };
    match xtask::benchcheck::run(
        &PathBuf::from(&current),
        &PathBuf::from(&baseline),
        tolerance,
    ) {
        Ok(problems) if problems.is_empty() => {
            println!("xtask bench-check: {current} within {tolerance}x of {baseline}");
            ExitCode::SUCCESS
        }
        Ok(problems) => {
            for p in &problems {
                println!("bench-check: {p}");
            }
            println!("xtask bench-check: {} regression(s)", problems.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd == "bench-check" {
        return bench_check(args);
    }
    if cmd != "lint" {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        if arg == "--root" {
            match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            }
        } else {
            return usage();
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("xtask: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match xtask::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("xtask: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match xtask::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
