//! CLI entry point:
//!
//! * `cargo run -p xtask -- lint [--root <path>] [--format plain|json]
//!   [--cache <path>] [--no-cache]` — two-phase workspace lint, fanned
//!   across `MEMDOS_THREADS` workers (one file per task). The
//!   content-hash cache defaults to `target/xtask-lint-cache.json`
//!   under the workspace root; `--no-cache` forces a cold run. With
//!   `--format json` the findings-plus-stats payload goes to stdout
//!   (one object, one line — the CI artifact) and the human
//!   `lint_stats:` line to stderr.
//! * `cargo run -p xtask -- bench-check <current> <baseline> [<current>
//!   <baseline> ...]` — validate one or more `BENCH_*.json` reports
//!   against their checked-in baselines and fail on regressions beyond
//!   the tolerance factor (default 2.0, override
//!   `MEMDOS_BENCH_TOLERANCE`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root <workspace-dir>] \
         [--format plain|json] [--cache <path>] [--no-cache]\n       \
         cargo run -p xtask -- bench-check <current.json> <baseline.json> \
         [<current.json> <baseline.json> ...]"
    );
    ExitCode::from(2)
}

fn bench_check(args: impl Iterator<Item = String>) -> ExitCode {
    let rest: Vec<String> = args.collect();
    if rest.is_empty() || rest.len() % 2 != 0 {
        return usage();
    }
    let tolerance = match std::env::var("MEMDOS_BENCH_TOLERANCE") {
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: MEMDOS_BENCH_TOLERANCE {v:?} is not a number: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => 2.0,
    };
    let mut regressions = 0usize;
    for pair in rest.chunks(2) {
        let (Some(current), Some(baseline)) = (pair.first(), pair.get(1)) else {
            return usage();
        };
        match xtask::benchcheck::run(
            &PathBuf::from(current),
            &PathBuf::from(baseline),
            tolerance,
        ) {
            Ok(problems) if problems.is_empty() => {
                println!("xtask bench-check: {current} within {tolerance}x of {baseline}");
            }
            Ok(problems) => {
                for p in &problems {
                    println!("bench-check: {p}");
                }
                regressions += problems.len();
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if regressions == 0 {
        ExitCode::SUCCESS
    } else {
        println!("xtask bench-check: {regressions} regression(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd == "bench-check" {
        return bench_check(args);
    }
    if cmd != "lint" {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    let mut format_json = false;
    let mut no_cache = false;
    let mut cache_override: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("plain") => format_json = false,
                _ => return usage(),
            },
            "--cache" => match args.next() {
                Some(p) => cache_override = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--no-cache" => no_cache = true,
            _ => return usage(),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("xtask: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match xtask::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("xtask: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let threads = xtask::threads_hint();
    if let Some(diag) = &threads.diagnostic {
        eprintln!("xtask: {diag}");
    }
    let cache_path = if no_cache {
        None
    } else {
        Some(cache_override.unwrap_or_else(|| root.join("target/xtask-lint-cache.json")))
    };
    match xtask::lint_workspace_report(&root, threads.workers, cache_path.as_deref()) {
        Ok(report) => {
            let stats_line = report.stats.render();
            if format_json {
                println!("{}", report.to_json());
                eprintln!("{stats_line}");
            } else {
                for f in &report.findings {
                    println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                }
                if report.findings.is_empty() {
                    println!("xtask lint: clean");
                } else {
                    println!("xtask lint: {} finding(s)", report.findings.len());
                }
                println!("{stats_line}");
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
