//! CLI entry point:
//!
//! * `cargo run -p xtask -- lint [--root <path>]` — workspace lint,
//!   fanned across `MEMDOS_THREADS` workers (one crate per task).
//! * `cargo run -p xtask -- bench-check <current> <baseline> [<current>
//!   <baseline> ...]` — validate one or more `BENCH_*.json` reports
//!   against their checked-in baselines and fail on regressions beyond
//!   the tolerance factor (default 2.0, override
//!   `MEMDOS_BENCH_TOLERANCE`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root <workspace-dir>]\n       \
         cargo run -p xtask -- bench-check <current.json> <baseline.json> \
         [<current.json> <baseline.json> ...]"
    );
    ExitCode::from(2)
}

fn bench_check(args: impl Iterator<Item = String>) -> ExitCode {
    let rest: Vec<String> = args.collect();
    if rest.is_empty() || rest.len() % 2 != 0 {
        return usage();
    }
    let tolerance = match std::env::var("MEMDOS_BENCH_TOLERANCE") {
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: MEMDOS_BENCH_TOLERANCE {v:?} is not a number: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => 2.0,
    };
    let mut regressions = 0usize;
    for pair in rest.chunks(2) {
        let (Some(current), Some(baseline)) = (pair.first(), pair.get(1)) else {
            return usage();
        };
        match xtask::benchcheck::run(
            &PathBuf::from(current),
            &PathBuf::from(baseline),
            tolerance,
        ) {
            Ok(problems) if problems.is_empty() => {
                println!("xtask bench-check: {current} within {tolerance}x of {baseline}");
            }
            Ok(problems) => {
                for p in &problems {
                    println!("bench-check: {p}");
                }
                regressions += problems.len();
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if regressions == 0 {
        ExitCode::SUCCESS
    } else {
        println!("xtask bench-check: {regressions} regression(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd == "bench-check" {
        return bench_check(args);
    }
    if cmd != "lint" {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        if arg == "--root" {
            match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            }
        } else {
            return usage();
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("xtask: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match xtask::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("xtask: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let threads = xtask::threads_hint();
    if let Some(diag) = &threads.diagnostic {
        eprintln!("xtask: {diag}");
    }
    match xtask::lint_workspace(&root, threads.workers) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
