//! Phase-1 item parser: per-file symbol extraction.
//!
//! Walks the token stream from [`crate::lexer::tokenize`] and pulls out
//! the items the graph rules need — `fn` definitions with their body
//! spans and `impl` context, the call sites inside each body, `use`
//! imports, and per-function *facts*: String-allocation sites (for
//! L9/hot-propagate) and determinism-taint sites (`HashMap`/`HashSet`,
//! `std::env` reads, wall-clock types — for L10). The parser is
//! deliberately conservative: it never needs to type-check, it only has
//! to over-approximate the call graph so reachability analysis errs
//! toward flagging.

use crate::lexer::{Token, TokKind, TokenStream};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called identifier (`foo` in `foo(..)`, `bar` in `x.bar(..)`).
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// True for method-call syntax (`recv.name(..)`).
    pub method: bool,
    /// Leading `::` path segments (`["ShardPool"]` for
    /// `ShardPool::new(..)`, `["std", "env"]` for `std::env::var(..)`).
    /// Empty for plain and method calls.
    pub path: Vec<String>,
}

/// Why a line inside a function is determinism-tainted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `HashMap`/`HashSet`: iteration order varies per process.
    HashIter,
    /// `std::env` read: output depends on ambient environment.
    Env,
    /// `Instant`/`SystemTime`: wall-clock reads.
    Time,
}

impl TaintKind {
    /// Human-readable description for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            TaintKind::HashIter => "hash-keyed collection (iteration order varies per process)",
            TaintKind::Env => "environment read (output depends on ambient state)",
            TaintKind::Time => "wall-clock read",
        }
    }

    /// Stable tag used by the cache serialization.
    pub fn tag(self) -> &'static str {
        match self {
            TaintKind::HashIter => "hash",
            TaintKind::Env => "env",
            TaintKind::Time => "time",
        }
    }

    /// Inverse of [`TaintKind::tag`].
    pub fn from_tag(tag: &str) -> Option<TaintKind> {
        match tag {
            "hash" => Some(TaintKind::HashIter),
            "env" => Some(TaintKind::Env),
            "time" => Some(TaintKind::Time),
            _ => None,
        }
    }
}

/// One `fn` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` subject type, when the fn is a method
    /// (`impl Engine { fn flush.. }` → `Some("Engine")`).
    pub impl_ctx: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Inclusive 1-based line span of the whole item (signature through
    /// closing brace, or through `;` for body-less trait methods).
    pub span: (u32, u32),
    /// The item sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// The item is announced by a `// hot-path` marker comment.
    pub hot: bool,
    /// Call sites in the body, in source order. Closure bodies are
    /// flattened into the enclosing fn — exactly what reachability
    /// wants.
    pub calls: Vec<CallSite>,
    /// String-allocation facts: `(line, pattern)`.
    pub allocs: Vec<(u32, String)>,
    /// Determinism-taint facts: `(line, kind, token text)`.
    pub taints: Vec<(u32, TaintKind, String)>,
}

impl FnDef {
    /// Display name with impl context: `Engine::flush` or `helper`.
    pub fn qual_name(&self) -> String {
        match &self.impl_ctx {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The per-file symbol summary phase 2 consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSymbols {
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnDef>,
    /// Raw text of every `use` statement (path part only, `;` excluded).
    pub imports: Vec<String>,
}

impl FileSymbols {
    /// True when any `use` line or the imports mention `needle` as an
    /// identifier segment (used for cross-crate call resolution tiers).
    pub fn imports_name(&self, needle: &str) -> bool {
        self.imports.iter().any(|u| {
            u.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .any(|seg| seg == needle)
        })
    }
}

const KEYWORDS: [&str; 24] = [
    "as", "break", "const", "continue", "crate", "else", "enum", "extern", "for", "if", "impl",
    "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "while", "where",
    "use",
];

/// String-allocating method names (receiver syntax).
const ALLOC_METHODS: [&str; 2] = ["to_string", "to_owned"];
/// String-allocating associated functions on `String`.
const ALLOC_ASSOC: [&str; 3] = ["new", "from", "with_capacity"];

fn tok_text<'a>(src: &'a str, toks: &[Token], i: usize) -> &'a str {
    toks.get(i).map(|t| t.text(src)).unwrap_or("")
}

fn tok_kind(toks: &[Token], i: usize) -> Option<TokKind> {
    toks.get(i).map(|t| t.kind)
}

fn tok_line(toks: &[Token], i: usize) -> u32 {
    toks.get(i).map(|t| t.line).unwrap_or(0)
}

fn open_char(src: &str, toks: &[Token], i: usize) -> Option<u8> {
    (tok_kind(toks, i) == Some(TokKind::Open)).then(|| tok_text(src, toks, i).bytes().next())?
}

fn close_char(src: &str, toks: &[Token], i: usize) -> Option<u8> {
    (tok_kind(toks, i) == Some(TokKind::Close)).then(|| tok_text(src, toks, i).bytes().next())?
}

/// True when tokens `i-2, i-1` spell `::`.
fn preceded_by_path_sep(src: &str, toks: &[Token], i: usize) -> bool {
    i >= 2
        && tok_text(src, toks, i - 1) == ":"
        && tok_text(src, toks, i - 2) == ":"
        && toks.get(i - 1).map(|t| t.start) == toks.get(i - 2).map(|t| t.start + 1)
}

/// Collects the `a::b::` path segments ending just before token `i`
/// (the called ident). Returns them outermost-first.
fn path_before(src: &str, toks: &[Token], i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut at = i;
    while preceded_by_path_sep(src, toks, at) {
        let seg_idx = at.wrapping_sub(3);
        if tok_kind(toks, seg_idx) == Some(TokKind::Ident) {
            segs.push(tok_text(src, toks, seg_idx).to_string());
            at = seg_idx;
        } else {
            break; // `<T as Trait>::f(..)` and friends: give up on the prefix
        }
    }
    segs.reverse();
    segs
}

/// Token index ranges covered by `#[cfg(test)]` attributes: from the
/// attribute through the end of the item it announces.
fn test_token_ranges(src: &str, toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_attr = tok_text(src, toks, i) == "#"
            && open_char(src, toks, i + 1) == Some(b'[')
            && tok_text(src, toks, i + 2) == "cfg"
            && open_char(src, toks, i + 3) == Some(b'(')
            && tok_text(src, toks, i + 4) == "test"
            && close_char(src, toks, i + 5) == Some(b')')
            && close_char(src, toks, i + 6) == Some(b']');
        if !is_attr {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut seen_brace = false;
        while j < toks.len() {
            match tok_kind(toks, j) {
                Some(TokKind::Open) if open_char(src, toks, j) == Some(b'{') => {
                    depth += 1;
                    seen_brace = true;
                }
                Some(TokKind::Close) if close_char(src, toks, j) == Some(b'}') => {
                    depth = depth.saturating_sub(1);
                    if seen_brace && depth == 0 {
                        break;
                    }
                }
                Some(TokKind::Punct)
                    if !seen_brace && depth == 0 && tok_text(src, toks, j) == ";" =>
                {
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start, j.min(toks.len().saturating_sub(1))));
        i = j + 1;
    }
    ranges
}

/// 1-based lines of `// hot-path` marker comments in the raw source.
fn hot_marker_lines(source: &str) -> Vec<u32> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            t == "// hot-path" || t.starts_with("// hot-path ")
        })
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

/// Extracts the impl subject type from the tokens of an `impl` header
/// (`impl` at index `i`, header runs to the first `{`). For
/// `impl Trait for Type` the subject is `Type`; otherwise the first
/// type identifier after the generic parameter list.
fn impl_subject(src: &str, toks: &[Token], i: usize) -> (Option<String>, usize) {
    let mut j = i + 1;
    // Skip a leading generic parameter list `<..>`.
    if tok_text(src, toks, j) == "<" {
        let mut angle = 0i32;
        while j < toks.len() {
            match tok_text(src, toks, j) {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut subject: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        let text = tok_text(src, toks, j);
        match tok_kind(toks, j) {
            Some(TokKind::Open) if text == "{" => break,
            Some(TokKind::Punct) if text == ";" => break, // `impl Trait for Type;` (never, but safe)
            Some(TokKind::Ident) if text == "for" => saw_for = true,
            Some(TokKind::Ident) if text != "dyn" => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(text.to_string());
                    }
                } else if subject.is_none() {
                    subject = Some(text.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (after_for.or(subject), j)
}

/// Parses one file's token stream into its symbol summary.
pub fn extract(source: &str, stream: &TokenStream) -> FileSymbols {
    let toks = &stream.tokens;
    let tests = test_token_ranges(source, toks);
    let in_test = |i: usize| tests.iter().any(|&(lo, hi)| (lo..=hi).contains(&i));
    let mut hot_marks = hot_marker_lines(source);

    let mut fns: Vec<FnDef> = Vec::new();
    let mut imports: Vec<String> = Vec::new();

    // Delimiter stack: each open brace carries the context it opens.
    #[derive(Clone, Copy)]
    enum Ctx {
        Plain,
        Impl(usize),     // index into `impl_types`
        Fn(usize),       // index into `fns`
    }
    let mut impl_types: Vec<Option<String>> = Vec::new();
    let mut stack: Vec<(u8, Ctx)> = Vec::new();
    // Context that the *next* `{` opens, set by `impl`/`fn` headers.
    let mut pending: Option<Ctx> = None;
    // (fn index, tokens-depth at which its body brace will sit).
    let mut fn_stack: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let text = tok_text(source, toks, i);
        let kind = tok_kind(toks, i);
        match kind {
            Some(TokKind::Open) => {
                let c = text.bytes().next().unwrap_or(0);
                let ctx = if c == b'{' { pending.take().unwrap_or(Ctx::Plain) } else { Ctx::Plain };
                if let Ctx::Fn(f) = ctx {
                    fn_stack.push(f);
                }
                stack.push((c, ctx));
                i += 1;
                continue;
            }
            Some(TokKind::Close) => {
                if let Some((c, ctx)) = stack.pop() {
                    if c == b'{' {
                        if let Ctx::Fn(f) = ctx {
                            let close_line = tok_line(toks, i);
                            if let Some(def) = fns.get_mut(f) {
                                def.span.1 = close_line;
                            }
                            fn_stack.pop();
                        }
                    }
                }
                i += 1;
                continue;
            }
            Some(TokKind::Ident) => {}
            _ => {
                i += 1;
                continue;
            }
        }

        // --- Ident token ---
        let line = tok_line(toks, i);
        let enclosing_fn = fn_stack.last().copied();

        if text == "use" && enclosing_fn.is_none() {
            // Collect the path text up to the terminating `;`.
            let mut j = i + 1;
            let start = toks.get(j).map(|t| t.start);
            let mut end = start;
            while j < toks.len() && tok_text(source, toks, j) != ";" {
                end = toks.get(j).map(|t| t.end);
                j += 1;
            }
            if let (Some(s), Some(e)) = (start, end) {
                if let Some(t) = source.get(s..e) {
                    imports.push(t.split_whitespace().collect::<Vec<_>>().join(" "));
                }
            }
            i = j + 1;
            continue;
        }

        if text == "impl" && pending.is_none() {
            let (subject, header_end) = impl_subject(source, toks, i);
            impl_types.push(subject);
            pending = Some(Ctx::Impl(impl_types.len() - 1));
            i = header_end.max(i + 1);
            continue;
        }

        if text == "fn" {
            // `fn` pointer types (`fn(u32) -> u32`) have no name ident.
            let name_idx = i + 1;
            if tok_kind(toks, name_idx) != Some(TokKind::Ident) {
                i += 1;
                continue;
            }
            let name = tok_text(source, toks, name_idx).to_string();
            let sig_line = tok_line(toks, i);
            // Enclosing impl subject, from the innermost Impl frame.
            let impl_ctx = stack
                .iter()
                .rev()
                .find_map(|&(_, ctx)| match ctx {
                    Ctx::Impl(t) => Some(impl_types.get(t).cloned().flatten()),
                    _ => None,
                })
                .flatten();
            // A marker binds to the first fn signature below it (within
            // a small window for attributes and doc lines), then is
            // spent — it never leaks onto the following item.
            let hot = match hot_marks
                .iter()
                .position(|&m| sig_line > m && sig_line <= m + 8)
            {
                Some(idx) => {
                    hot_marks.remove(idx);
                    true
                }
                None => false,
            };
            let def = FnDef {
                name,
                impl_ctx,
                sig_line,
                span: (sig_line, sig_line),
                is_test: in_test(i),
                hot,
                calls: Vec::new(),
                allocs: Vec::new(),
                taints: Vec::new(),
            };
            fns.push(def);
            let fn_idx = fns.len() - 1;
            // Scan the header for the body `{` (skipping param/array
            // groups) or a terminating `;`.
            let mut j = name_idx + 1;
            let mut depth = 0usize;
            while j < toks.len() {
                match tok_kind(toks, j) {
                    Some(TokKind::Open) => {
                        if open_char(source, toks, j) == Some(b'{') && depth == 0 {
                            pending = Some(Ctx::Fn(fn_idx));
                            break;
                        }
                        depth += 1;
                    }
                    Some(TokKind::Close) => depth = depth.saturating_sub(1),
                    Some(TokKind::Punct)
                        if depth == 0 && tok_text(source, toks, j) == ";" =>
                    {
                        let semi_line = tok_line(toks, j);
                        if let Some(def) = fns.get_mut(fn_idx) {
                            def.span.1 = semi_line;
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() {
                if let Some(def) = fns.get_mut(fn_idx) {
                    def.span.1 = toks.last().map(|t| t.line).unwrap_or(sig_line);
                }
            }
            i = j; // resume at the `{`/`;` so the Open arm pushes the ctx
            continue;
        }

        // Facts and call sites only matter inside a fn body.
        let Some(f) = enclosing_fn else {
            i += 1;
            continue;
        };

        // Determinism-taint facts.
        match text {
            "HashMap" | "HashSet" => {
                push_taint(&mut fns, f, line, TaintKind::HashIter, text);
            }
            "Instant" | "SystemTime" => {
                push_taint(&mut fns, f, line, TaintKind::Time, text);
            }
            "var" | "vars" | "var_os" if path_ends_with_env(source, toks, i) => {
                push_taint(&mut fns, f, line, TaintKind::Env, "env read");
            }
            _ => {}
        }

        let next_text = tok_text(source, toks, i + 1);
        let next_is_bang = next_text == "!";
        let call_open = if next_is_bang {
            tok_text(source, toks, i + 2) == "("
                || open_char(source, toks, i + 2) == Some(b'(')
        } else {
            open_char(source, toks, i + 1) == Some(b'(')
        };

        if next_is_bang {
            // Macro invocation: `format!` is the one allocation macro
            // the L7/L9 contract names.
            if text == "format" && call_open {
                push_alloc(&mut fns, f, line, "format!");
            }
            i += 2;
            continue;
        }

        if call_open && !KEYWORDS.contains(&text) {
            let prev = if i == 0 { "" } else { tok_text(source, toks, i - 1) };
            if prev == "fn" {
                i += 1;
                continue;
            }
            let method = prev == ".";
            let path = if method { Vec::new() } else { path_before(source, toks, i) };
            // Allocation facts by shape.
            if method && ALLOC_METHODS.contains(&text) {
                push_alloc(&mut fns, f, line, &format!(".{text}()"));
            }
            if path.last().map(String::as_str) == Some("String")
                && ALLOC_ASSOC.contains(&text)
            {
                push_alloc(&mut fns, f, line, &format!("String::{text}"));
            }
            if let Some(def) = fns.get_mut(f) {
                def.calls.push(CallSite { name: text.to_string(), line, method, path });
            }
        }
        i += 1;
    }

    // Second pass for standalone `String::new()`-style allocations that
    // are *not* call-shaped is unnecessary: associated-fn allocations
    // are always calls. Done.
    FileSymbols { fns, imports }
}

fn push_taint(fns: &mut [FnDef], f: usize, line: u32, kind: TaintKind, text: &str) {
    if let Some(def) = fns.get_mut(f) {
        if !def.taints.iter().any(|&(l, k, _)| l == line && k == kind) {
            def.taints.push((line, kind, text.to_string()));
        }
    }
}

fn push_alloc(fns: &mut [FnDef], f: usize, line: u32, pat: &str) {
    if let Some(def) = fns.get_mut(f) {
        if !def.allocs.iter().any(|(l, p)| *l == line && p == pat) {
            def.allocs.push((line, pat.to_string()));
        }
    }
}

/// True when the path prefix before token `i` ends in `env` (matches
/// `std::env::var`, `env::var`, …).
fn path_ends_with_env(src: &str, toks: &[Token], i: usize) -> bool {
    path_before(src, toks, i).last().map(String::as_str) == Some("env")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> FileSymbols {
        extract(src, &tokenize(src))
    }

    #[test]
    fn extracts_fns_with_spans_and_impl_context() {
        let src = "\
struct S;
impl S {
    fn a(&self) -> u32 {
        self.b()
    }
}
fn free(x: u32) -> u32 { helper(x) }
trait T {
    fn sig_only(&self);
}
";
        let syms = parse(src);
        let names: Vec<String> = syms.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(names, vec!["S::a", "free", "sig_only"]);
        let a = &syms.fns[0];
        assert_eq!(a.sig_line, 3);
        assert_eq!(a.span, (3, 5));
        assert_eq!(a.calls.len(), 1);
        assert!(a.calls[0].method);
        assert_eq!(a.calls[0].name, "b");
        let free = &syms.fns[1];
        assert_eq!(free.span, (7, 7));
        assert_eq!(free.calls[0].name, "helper");
        assert!(!free.calls[0].method);
        // Body-less trait method: span ends at the `;`.
        assert_eq!(syms.fns[2].span, (9, 9));
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let src = "impl Detector for SdsP {\n    fn on_observation(&mut self) {}\n}\n";
        let syms = parse(src);
        assert_eq!(syms.fns[0].qual_name(), "SdsP::on_observation");
    }

    #[test]
    fn records_path_calls_imports_and_test_flags() {
        let src = "\
use memdos_core::Detector;
use std::collections::BTreeMap;
fn f() {
    ShardPool::new(4);
    std::env::var(\"X\");
}
#[cfg(test)]
mod tests {
    fn t() { g(); }
}
";
        let syms = parse(src);
        assert!(syms.imports_name("memdos_core"));
        assert!(!syms.imports_name("memdos_runner"));
        let f = &syms.fns[0];
        let new_call = f.calls.iter().find(|c| c.name == "new").expect("new call");
        assert_eq!(new_call.path, vec!["ShardPool"]);
        let var_call = f.calls.iter().find(|c| c.name == "var").expect("var call");
        assert_eq!(var_call.path, vec!["std", "env"]);
        assert!(matches!(f.taints.as_slice(), [(5, TaintKind::Env, _)]));
        // The test-module fn is marked as such.
        let t = syms.fns.iter().find(|d| d.name == "t").expect("test fn");
        assert!(t.is_test);
        assert!(!f.is_test);
    }

    #[test]
    fn records_alloc_and_taint_facts() {
        let src = "\
fn f(x: u32) -> String {
    let s = format!(\"{x}\");
    let t = x.to_string();
    let u = String::with_capacity(8);
    let m: HashMap<u32, u32> = HashMap::new();
    let now = Instant::now();
    s
}
";
        let syms = parse(src);
        let f = &syms.fns[0];
        let pats: Vec<&str> = f.allocs.iter().map(|(_, p)| p.as_str()).collect();
        assert!(pats.contains(&"format!"), "{pats:?}");
        assert!(pats.contains(&".to_string()"), "{pats:?}");
        assert!(pats.contains(&"String::with_capacity"), "{pats:?}");
        let kinds: Vec<TaintKind> = f.taints.iter().map(|&(_, k, _)| k).collect();
        assert!(kinds.contains(&TaintKind::HashIter));
        assert!(kinds.contains(&TaintKind::Time));
    }

    #[test]
    fn hot_marker_reaches_the_next_fn() {
        let src = "\
// hot-path
#[inline]
fn fast(out: &mut Vec<u8>) {
    render(out);
}

fn cold() {}
";
        let syms = parse(src);
        assert!(syms.fns[0].hot);
        assert!(!syms.fns[1].hot);
    }

    #[test]
    fn closures_flatten_into_the_enclosing_fn() {
        let src = "\
fn outer(items: &[u32]) -> u32 {
    items.iter().map(|x| helper(*x)).sum()
}
";
        let syms = parse(src);
        let calls: Vec<&str> = syms.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"helper"), "{calls:?}");
    }

    #[test]
    fn nested_fns_get_their_own_defs() {
        let src = "\
fn outer() {
    fn inner(x: u32) -> u32 { leaf(x) }
    inner(3);
}
";
        let syms = parse(src);
        let names: Vec<&str> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &syms.fns[0];
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        let inner = &syms.fns[1];
        assert!(inner.calls.iter().any(|c| c.name == "leaf"));
        assert_eq!(outer.span, (1, 4));
    }
}
