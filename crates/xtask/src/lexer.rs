//! The Rust lexer behind both analyzer phases.
//!
//! Two entry points over the same underlying scanner:
//!
//! * [`strip`] blanks out comments and string/char literals while
//!   preserving byte offsets and line numbers, so the line-oriented rule
//!   scanners never fire on prose or on patterns quoted inside strings.
//! * [`tokenize`] produces a full token stream — identifiers (including
//!   raw `r#ident`s), numbers, string/char literals (plain, byte, raw
//!   with any number of `#`s), lifetimes, punctuation, and delimiters —
//!   each carrying its byte span and 1-based line/column, which is what
//!   the phase-1 item parser ([`crate::symbols`]) consumes.
//!
//! Line comments are scanned for `lint:allow(<category>) -- <reason>`
//! suppression markers before being dropped, in both entry points.

/// A suppression marker found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the marker sits on. A marker suppresses findings on
    /// its own line and on the line directly below it.
    pub line: usize,
    /// The category inside the parentheses, e.g. `panic` or `index`.
    pub category: String,
    /// Whether a non-empty `-- <reason>` justification follows. Markers
    /// without a justification suppress nothing and are themselves
    /// reported.
    pub justified: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Clone)]
pub struct Stripped {
    /// The source with comments and string/char literals replaced by
    /// spaces. Newlines are preserved, so line numbers match the input.
    pub code: String,
    /// All `lint:allow` markers, in source order.
    pub allows: Vec<Allow>,
}

/// Byte at `i`, or NUL past the end. Keeps every scanner loop free of
/// unchecked indexing without cluttering it with `match` arms.
fn at(bytes: &[u8], i: usize) -> u8 {
    bytes.get(i).copied().unwrap_or(0)
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Parses `lint:allow(<category>) -- <reason>` out of a comment's text.
fn parse_allow(text: &str, line: usize, allows: &mut Vec<Allow>) {
    let marker = "lint:allow(";
    let Some(pos) = text.find(marker) else {
        return;
    };
    let rest = text.get(pos + marker.len()..).unwrap_or("");
    let Some(close) = rest.find(')') else {
        return;
    };
    let category = rest.get(..close).unwrap_or("").trim().to_string();
    // Prose about the marker syntax (`lint:allow(<category>)` in docs)
    // is not a marker: a real category is a bare kebab-case word.
    let category_like = !category.is_empty()
        && category
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
    if !category_like {
        return;
    }
    let after = rest.get(close + 1..).unwrap_or("");
    let justified = match after.find("--") {
        Some(dash) => !after.get(dash + 2..).unwrap_or("").trim().is_empty(),
        None => false,
    };
    allows.push(Allow { line, category, justified });
}

/// Blanks comments and literals out of `source`. See module docs.
pub fn strip(source: &str) -> Stripped {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = at(bytes, i);
        if c == b'\n' {
            line += 1;
            out.push(c);
            i += 1;
            continue;
        }
        // Line comment: record allow markers, then blank to end of line.
        if c == b'/' && at(bytes, i + 1) == b'/' {
            let start = i;
            while i < bytes.len() && at(bytes, i) != b'\n' {
                i += 1;
            }
            parse_allow(source.get(start..i).unwrap_or(""), line, &mut allows);
            out.resize(out.len() + (i - start), b' ');
            continue;
        }
        // Block comment (nested): blank, preserving newlines.
        if c == b'/' && at(bytes, i + 1) == b'*' {
            let mut depth = 1u32;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if at(bytes, i) == b'/' && at(bytes, i + 1) == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if at(bytes, i) == b'*' && at(bytes, i + 1) == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if at(bytes, i) == b'\n' {
                    line += 1;
                    out.push(b'\n');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            continue;
        }
        let prev_ident = i > 0 && is_ident(at(bytes, i - 1));
        // String literals: plain, byte, raw, raw-byte.
        if !prev_ident {
            let (prefix_len, raw) = match (c, at(bytes, i + 1)) {
                (b'"', _) => (0usize, false),
                (b'b', b'"') => (1, false),
                (b'r', b'"') | (b'r', b'#') => (1, true),
                (b'b', b'r') if matches!(at(bytes, i + 2), b'"' | b'#') => (2, true),
                _ => (usize::MAX, false),
            };
            if prefix_len != usize::MAX {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                if raw {
                    while at(bytes, j) == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                if at(bytes, j) == b'"' {
                    j += 1; // past the opening quote
                    loop {
                        let b = at(bytes, j);
                        if b == 0 {
                            break; // unterminated; blank to EOF
                        }
                        if !raw && b == b'\\' {
                            j += 2;
                            continue;
                        }
                        if b == b'"' {
                            let tail = (0..hashes).all(|k| at(bytes, j + 1 + k) == b'#');
                            if tail {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    for k in i..j.min(bytes.len()) {
                        if at(bytes, k) == b'\n' {
                            line += 1;
                            out.push(b'\n');
                        } else {
                            out.push(b' ');
                        }
                    }
                    i = j.min(bytes.len());
                    continue;
                }
            }
        }
        // Char literal vs lifetime.
        if c == b'\'' || (c == b'b' && at(bytes, i + 1) == b'\'' && !prev_ident) {
            let q = if c == b'b' { i + 1 } else { i };
            let n1 = at(bytes, q + 1);
            let is_char = n1 == b'\\' || n1 >= 0x80 || at(bytes, q + 2) == b'\'';
            if is_char {
                let mut j = q + 1;
                if n1 == b'\\' {
                    j += 2; // skip the escape introducer and escaped byte
                }
                while j < bytes.len() && at(bytes, j) != b'\'' && at(bytes, j) != b'\n' {
                    j += 1;
                }
                if at(bytes, j) == b'\'' {
                    j += 1;
                }
                out.resize(out.len() + (j - i), b' ');
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    Stripped { code: String::from_utf8_lossy(&out).into_owned(), allows }
}

/// Kind of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Lifetime or loop label (`'a`), without a closing quote.
    Lifetime,
    /// Numeric literal (integer, float, hex/oct/bin, with suffixes).
    Number,
    /// String literal: plain, byte, raw or raw-byte, any `#` count.
    Str,
    /// Char or byte-char literal.
    Char,
    /// One punctuation byte (`.`, `:`, `=`, `!`, …). Multi-byte
    /// operators arrive as consecutive `Punct` tokens.
    Punct,
    /// Opening delimiter: `(`, `[` or `{`.
    Open,
    /// Closing delimiter: `)`, `]` or `}`.
    Close,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte span in the source (`start..end`).
    pub start: usize,
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Result of tokenizing one source file.
#[derive(Debug, Clone)]
pub struct TokenStream {
    pub tokens: Vec<Token>,
    /// All `lint:allow` markers, in source order (same contract as
    /// [`Stripped::allows`]).
    pub allows: Vec<Allow>,
}

/// True for bytes that can start an identifier. Bytes >= 0x80 are the
/// continuation of multi-byte UTF-8 identifiers and ride along.
fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    is_ident(c) || c >= 0x80
}

/// Lexes `source` into a full token stream. Comments vanish (allow
/// markers are still collected); string and char literals become single
/// `Str`/`Char` tokens spanning the whole literal, so delimiter nesting
/// computed over `Open`/`Close` tokens can never be confused by quoted
/// braces.
pub fn tokenize(source: &str) -> TokenStream {
    let bytes = source.as_bytes();
    let mut tokens = Vec::with_capacity(source.len() / 4);
    let mut allows = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let mut i = 0usize;
    // Advances the cursor over `n` bytes, tracking line/column.
    macro_rules! advance {
        ($n:expr) => {{
            let n: usize = $n;
            for k in i..(i + n).min(bytes.len()) {
                if at(bytes, k) == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            i = (i + n).min(bytes.len());
        }};
    }
    while i < bytes.len() {
        let c = at(bytes, i);
        let (tline, tcol) = (line, col);
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Line comment: collect allow markers, drop the text.
        if c == b'/' && at(bytes, i + 1) == b'/' {
            let start = i;
            let mut j = i;
            while j < bytes.len() && at(bytes, j) != b'\n' {
                j += 1;
            }
            parse_allow(source.get(start..j).unwrap_or(""), line as usize, &mut allows);
            advance!(j - i);
            continue;
        }
        // Block comment (nested), dropped.
        if c == b'/' && at(bytes, i + 1) == b'*' {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if at(bytes, j) == b'/' && at(bytes, j + 1) == b'*' {
                    depth += 1;
                    j += 2;
                } else if at(bytes, j) == b'*' && at(bytes, j + 1) == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            advance!(j - i);
            continue;
        }
        let prev_ident = i > 0 && is_ident_cont(at(bytes, i - 1));
        // String literals: plain, byte, raw, raw-byte — but not raw
        // identifiers (`r#type`), which fall through to the ident arm.
        if !prev_ident {
            let (prefix_len, raw) = match (c, at(bytes, i + 1)) {
                (b'"', _) => (0usize, false),
                (b'b', b'"') => (1, false),
                (b'r', b'"') => (1, true),
                (b'r', b'#') if !is_ident_start(at(bytes, i + 2)) || at(bytes, i + 2) == b'"' => {
                    (1, true)
                }
                (b'b', b'r') if matches!(at(bytes, i + 2), b'"' | b'#') => (2, true),
                _ => (usize::MAX, false),
            };
            if prefix_len != usize::MAX {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                if raw {
                    while at(bytes, j) == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                if at(bytes, j) == b'"' {
                    j += 1;
                    loop {
                        let b = at(bytes, j);
                        if b == 0 {
                            break; // unterminated: token runs to EOF
                        }
                        if !raw && b == b'\\' {
                            j += 2;
                            continue;
                        }
                        if b == b'"' {
                            let tail = (0..hashes).all(|k| at(bytes, j + 1 + k) == b'#');
                            if tail {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    let end = j.min(bytes.len());
                    tokens.push(Token {
                        kind: TokKind::Str,
                        start: i,
                        end,
                        line: tline,
                        col: tcol,
                    });
                    advance!(end - i);
                    continue;
                }
            }
        }
        // Char literal vs lifetime / loop label.
        if c == b'\'' || (c == b'b' && at(bytes, i + 1) == b'\'' && !prev_ident) {
            let q = if c == b'b' { i + 1 } else { i };
            let n1 = at(bytes, q + 1);
            let is_char = n1 == b'\\' || n1 >= 0x80 || at(bytes, q + 2) == b'\'';
            if is_char {
                let mut j = q + 1;
                if n1 == b'\\' {
                    j += 2;
                }
                while j < bytes.len() && at(bytes, j) != b'\'' && at(bytes, j) != b'\n' {
                    j += 1;
                }
                if at(bytes, j) == b'\'' {
                    j += 1;
                }
                tokens.push(Token { kind: TokKind::Char, start: i, end: j, line: tline, col: tcol });
                advance!(j - i);
                continue;
            }
            if c == b'\'' && is_ident_start(n1) {
                let mut j = q + 2;
                while is_ident_cont(at(bytes, j)) {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    start: i,
                    end: j,
                    line: tline,
                    col: tcol,
                });
                advance!(j - i);
                continue;
            }
        }
        // Numbers (before idents: both start the same ASCII classes).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                let b = at(bytes, j);
                if b.is_ascii_alphanumeric() || b == b'_' {
                    j += 1;
                } else if b == b'.' && at(bytes, j + 1).is_ascii_digit() {
                    j += 1;
                } else if matches!(b, b'+' | b'-')
                    && matches!(at(bytes, j - 1), b'e' | b'E')
                    && at(bytes, j + 1).is_ascii_digit()
                {
                    j += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token { kind: TokKind::Number, start: i, end: j, line: tline, col: tcol });
            advance!(j - i);
            continue;
        }
        // Identifiers and keywords, including raw identifiers.
        if is_ident_start(c) {
            let mut j = i;
            if c == b'r' && at(bytes, i + 1) == b'#' && is_ident_start(at(bytes, i + 2)) {
                j += 2; // raw identifier prefix
            }
            j += 1;
            while is_ident_cont(at(bytes, j)) {
                j += 1;
            }
            tokens.push(Token { kind: TokKind::Ident, start: i, end: j, line: tline, col: tcol });
            advance!(j - i);
            continue;
        }
        // Delimiters and single-byte punctuation.
        let kind = match c {
            b'(' | b'[' | b'{' => TokKind::Open,
            b')' | b']' | b'}' => TokKind::Close,
            _ => TokKind::Punct,
        };
        tokens.push(Token { kind, start: i, end: i + 1, line: tline, col: tcol });
        advance!(1);
    }
    TokenStream { tokens, allows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments() {
        let s = strip("let x = 1; // trailing unwrap() mention\nlet y = 2;\n");
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y = 2;"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn blanks_nested_block_comments() {
        let s = strip("a /* one /* two */ still */ b\nc\n");
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(!s.code.contains("still"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn blanks_strings_and_keeps_line_numbers() {
        let s = strip("let m = \"panic! inside\\\" str\";\nlet r = r#\"raw \"q\" unwrap()\"#;\n");
        assert!(!s.code.contains("panic!"));
        assert!(!s.code.contains("unwrap"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn multiline_string_preserves_lines() {
        let s = strip("let m = \"line one\nline two\";\nlet x = 3;\n");
        assert_eq!(s.code.lines().count(), 3);
        assert!(s.code.contains("let x = 3;"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = strip("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet c = 'z';\n");
        assert!(s.code.contains("<'a>"), "lifetime kept: {}", s.code);
        assert!(!s.code.contains('z'));
    }

    #[test]
    fn records_allow_markers() {
        let s = strip("x(); // lint:allow(panic) -- startup only\ny(); // lint:allow(index)\n");
        assert_eq!(s.allows.len(), 2);
        let a = &s.allows[0];
        assert!((a.line, a.category.as_str(), a.justified) == (1, "panic", true));
        let b = &s.allows[1];
        assert!((b.line, b.category.as_str(), b.justified) == (2, "index", false));
    }

    // ---- strip regression suite: edge cases exposed by the token-stream
    // work. Each case asserts the dangerous text is blanked AND byte
    // offsets are preserved (output length == input length).

    fn assert_blanked(src: &str, gone: &[&str], kept: &[&str]) {
        let s = strip(src);
        assert_eq!(s.code.len(), src.len(), "byte offsets drifted for {src:?}");
        assert_eq!(
            s.code.matches('\n').count(),
            src.matches('\n').count(),
            "line structure drifted for {src:?}"
        );
        for g in gone {
            assert!(!s.code.contains(g), "{g:?} survived stripping of {src:?}: {}", s.code);
        }
        for k in kept {
            assert!(s.code.contains(k), "{k:?} lost while stripping {src:?}: {}", s.code);
        }
    }

    #[test]
    fn strips_raw_strings_with_multiple_hashes() {
        assert_blanked(
            "let a = r##\"has \"# inside unwrap()\"## ; keep();\n",
            &["unwrap", "inside"],
            &["keep()"],
        );
        assert_blanked(
            "let a = r###\"nested \"## quote panic!\"### ; keep();\n",
            &["panic"],
            &["keep()"],
        );
        // The closing guard must require *all* hashes: a shorter tail
        // inside the literal does not terminate it.
        assert_blanked("let a = r##\"x\"# y\"## + tail();\n", &["y\"##"], &["tail()"]);
    }

    #[test]
    fn strips_byte_strings() {
        assert_blanked("let b = b\"panic! bytes\"; keep();\n", &["panic"], &["keep()"]);
        assert_blanked("let b = b\"esc \\\" quote unwrap()\"; keep();\n", &["unwrap"], &["keep()"]);
        assert_blanked("let b = br#\"raw \" byte panic!\"#; keep();\n", &["panic"], &["keep()"]);
    }

    #[test]
    fn strips_nested_block_comments_with_offsets() {
        assert_blanked(
            "a(); /* one /* two unwrap() */ still */ b();\n",
            &["unwrap", "still"],
            &["a()", "b()"],
        );
        // Unterminated nesting blanks to EOF but keeps line structure.
        assert_blanked("a();\n/* open /* deep */ no close\nend\n", &["deep", "no close", "end"], &["a()"]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        // `r#type` must survive as code, not open a raw string that
        // swallows the rest of the file.
        assert_blanked("let r#type = risky(); after();\n", &[], &["risky()", "after()"]);
    }

    // ---- tokenizer ----

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).tokens.iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn tokenizes_idents_puncts_and_delims() {
        let src = "fn f(x: u32) -> u32 { x + 1 }";
        let toks = tokenize(src);
        let kinds: Vec<TokKind> = toks.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            texts(src),
            vec!["fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "+", "1", "}"]
        );
        assert_eq!(kinds[0], TokKind::Ident);
        assert_eq!(kinds[2], TokKind::Open);
        assert_eq!(kinds[13], TokKind::Number);
        assert_eq!(kinds[14], TokKind::Close);
    }

    #[test]
    fn tokenizes_strings_chars_and_lifetimes_as_single_tokens() {
        let src = "let s = r#\"a \" b\"#; let c = '\\n'; fn g<'a>(x: &'a str) {}";
        let toks = tokenize(src);
        let strs: Vec<&Token> =
            toks.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text(src), "r#\"a \" b\"#");
        assert_eq!(toks.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert_eq!(toks.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
    }

    #[test]
    fn tokens_carry_lines_and_columns() {
        let src = "a\n  bb(\n\"s\")";
        let toks = tokenize(src);
        let t = |i: usize| -> (&str, u32, u32) {
            let tok: &Token = &toks.tokens[i];
            (tok.text(src), tok.line, tok.col)
        };
        assert_eq!(t(0), ("a", 1, 1));
        assert_eq!(t(1), ("bb", 2, 3));
        assert_eq!(t(2), ("(", 2, 5));
        assert_eq!(t(3), ("\"s\"", 3, 1));
        assert_eq!(t(4), (")", 3, 4));
    }

    #[test]
    fn tokenizer_collects_allow_markers_and_skips_comments() {
        let src = "x(); // lint:allow(panic) -- ok\n/* gone */ y();\n";
        let toks = tokenize(src);
        assert_eq!(toks.allows.len(), 1);
        assert_eq!(toks.allows[0].category, "panic");
        assert!(toks.allows[0].justified);
        assert_eq!(texts(src), vec!["x", "(", ")", ";", "y", "(", ")", ";"]);
    }

    #[test]
    fn tokenizer_handles_raw_identifiers_and_numbers() {
        let src = "let r#match = 0x1F; let f = 1.5e-3; let r = 0..n;";
        let tx = texts(src);
        assert!(tx.contains(&"r#match".to_string()), "{tx:?}");
        assert!(tx.contains(&"0x1F".to_string()), "{tx:?}");
        assert!(tx.contains(&"1.5e-3".to_string()), "{tx:?}");
        assert!(tx.contains(&"0".to_string()), "{tx:?}");
        assert!(tx.contains(&"n".to_string()), "{tx:?}");
    }
}
