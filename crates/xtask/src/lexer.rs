//! A minimal Rust lexer for the lint pass.
//!
//! `strip` blanks out comments and string/char literals while preserving
//! byte offsets and line numbers, so the rule scanners never fire on
//! prose or on patterns quoted inside strings. Line comments are scanned
//! for `lint:allow(<category>) -- <reason>` suppression markers before
//! being blanked.

/// A suppression marker found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the marker sits on. A marker suppresses findings on
    /// its own line and on the line directly below it.
    pub line: usize,
    /// The category inside the parentheses, e.g. `panic` or `index`.
    pub category: String,
    /// Whether a non-empty `-- <reason>` justification follows. Markers
    /// without a justification suppress nothing and are themselves
    /// reported.
    pub justified: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Clone)]
pub struct Stripped {
    /// The source with comments and string/char literals replaced by
    /// spaces. Newlines are preserved, so line numbers match the input.
    pub code: String,
    /// All `lint:allow` markers, in source order.
    pub allows: Vec<Allow>,
}

/// Byte at `i`, or NUL past the end. Keeps every scanner loop free of
/// unchecked indexing without cluttering it with `match` arms.
fn at(bytes: &[u8], i: usize) -> u8 {
    bytes.get(i).copied().unwrap_or(0)
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Parses `lint:allow(<category>) -- <reason>` out of a comment's text.
fn parse_allow(text: &str, line: usize, allows: &mut Vec<Allow>) {
    let marker = "lint:allow(";
    let Some(pos) = text.find(marker) else {
        return;
    };
    let rest = text.get(pos + marker.len()..).unwrap_or("");
    let Some(close) = rest.find(')') else {
        return;
    };
    let category = rest.get(..close).unwrap_or("").trim().to_string();
    let after = rest.get(close + 1..).unwrap_or("");
    let justified = match after.find("--") {
        Some(dash) => !after.get(dash + 2..).unwrap_or("").trim().is_empty(),
        None => false,
    };
    allows.push(Allow { line, category, justified });
}

/// Blanks comments and literals out of `source`. See module docs.
pub fn strip(source: &str) -> Stripped {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = at(bytes, i);
        if c == b'\n' {
            line += 1;
            out.push(c);
            i += 1;
            continue;
        }
        // Line comment: record allow markers, then blank to end of line.
        if c == b'/' && at(bytes, i + 1) == b'/' {
            let start = i;
            while i < bytes.len() && at(bytes, i) != b'\n' {
                i += 1;
            }
            parse_allow(source.get(start..i).unwrap_or(""), line, &mut allows);
            out.resize(out.len() + (i - start), b' ');
            continue;
        }
        // Block comment (nested): blank, preserving newlines.
        if c == b'/' && at(bytes, i + 1) == b'*' {
            let mut depth = 1u32;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if at(bytes, i) == b'/' && at(bytes, i + 1) == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if at(bytes, i) == b'*' && at(bytes, i + 1) == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if at(bytes, i) == b'\n' {
                    line += 1;
                    out.push(b'\n');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            continue;
        }
        let prev_ident = i > 0 && is_ident(at(bytes, i - 1));
        // String literals: plain, byte, raw, raw-byte.
        if !prev_ident {
            let (prefix_len, raw) = match (c, at(bytes, i + 1)) {
                (b'"', _) => (0usize, false),
                (b'b', b'"') => (1, false),
                (b'r', b'"') | (b'r', b'#') => (1, true),
                (b'b', b'r') if matches!(at(bytes, i + 2), b'"' | b'#') => (2, true),
                _ => (usize::MAX, false),
            };
            if prefix_len != usize::MAX {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                if raw {
                    while at(bytes, j) == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                if at(bytes, j) == b'"' {
                    j += 1; // past the opening quote
                    loop {
                        let b = at(bytes, j);
                        if b == 0 {
                            break; // unterminated; blank to EOF
                        }
                        if !raw && b == b'\\' {
                            j += 2;
                            continue;
                        }
                        if b == b'"' {
                            let tail = (0..hashes).all(|k| at(bytes, j + 1 + k) == b'#');
                            if tail {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    for k in i..j.min(bytes.len()) {
                        if at(bytes, k) == b'\n' {
                            line += 1;
                            out.push(b'\n');
                        } else {
                            out.push(b' ');
                        }
                    }
                    i = j.min(bytes.len());
                    continue;
                }
            }
        }
        // Char literal vs lifetime.
        if c == b'\'' || (c == b'b' && at(bytes, i + 1) == b'\'' && !prev_ident) {
            let q = if c == b'b' { i + 1 } else { i };
            let n1 = at(bytes, q + 1);
            let is_char = n1 == b'\\' || n1 >= 0x80 || at(bytes, q + 2) == b'\'';
            if is_char {
                let mut j = q + 1;
                if n1 == b'\\' {
                    j += 2; // skip the escape introducer and escaped byte
                }
                while j < bytes.len() && at(bytes, j) != b'\'' && at(bytes, j) != b'\n' {
                    j += 1;
                }
                if at(bytes, j) == b'\'' {
                    j += 1;
                }
                out.resize(out.len() + (j - i), b' ');
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    Stripped { code: String::from_utf8_lossy(&out).into_owned(), allows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments() {
        let s = strip("let x = 1; // trailing unwrap() mention\nlet y = 2;\n");
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y = 2;"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn blanks_nested_block_comments() {
        let s = strip("a /* one /* two */ still */ b\nc\n");
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(!s.code.contains("still"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn blanks_strings_and_keeps_line_numbers() {
        let s = strip("let m = \"panic! inside\\\" str\";\nlet r = r#\"raw \"q\" unwrap()\"#;\n");
        assert!(!s.code.contains("panic!"));
        assert!(!s.code.contains("unwrap"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn multiline_string_preserves_lines() {
        let s = strip("let m = \"line one\nline two\";\nlet x = 3;\n");
        assert_eq!(s.code.lines().count(), 3);
        assert!(s.code.contains("let x = 3;"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = strip("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet c = 'z';\n");
        assert!(s.code.contains("<'a>"), "lifetime kept: {}", s.code);
        assert!(!s.code.contains('z'));
    }

    #[test]
    fn records_allow_markers() {
        let s = strip("x(); // lint:allow(panic) -- startup only\ny(); // lint:allow(index)\n");
        assert_eq!(s.allows.len(), 2);
        let a = &s.allows[0];
        assert!((a.line, a.category.as_str(), a.justified) == (1, "panic", true));
        let b = &s.allows[1];
        assert!((b.line, b.category.as_str(), b.justified) == (2, "index", false));
    }
}
