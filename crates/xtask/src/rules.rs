//! The local rule scanners (L1–L3, L5–L8, L11) that run over lexed
//! source files, plus the suppression-range machinery shared with the
//! graph rules in [`crate::callgraph`].
//!
//! Every scanner works on the *stripped* code from [`crate::lexer`], so
//! comments and string literals can never trigger a finding. Code inside
//! `#[cfg(test)]` items is exempt from all content rules: tests may
//! unwrap freely.

use std::collections::BTreeSet;

use crate::lexer::{strip, Allow};
use crate::symbols::FileSymbols;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as displayed to the user (workspace-relative).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule code, e.g. `L1/panic`.
    pub rule: &'static str,
    /// Human-readable description with the remedy.
    pub message: String,
}

/// How a file is scoped for rule selection.
#[derive(Debug, Clone, Copy)]
pub struct FileScope {
    /// True for crates whose results must be bit-reproducible
    /// (`sim`, `stats`, `core`): bans `HashMap`/`HashSet` there.
    pub deterministic: bool,
    /// True for the harness crates (`runner`, `bench`, `xtask`): the only
    /// places allowed to spawn threads or read wall-clock time.
    pub harness: bool,
    /// True for the crate that owns seed derivation (`stats`): everywhere
    /// else the golden-ratio seed constant is a sign that a caller is
    /// re-deriving seeds by hand instead of going through
    /// `memdos_stats::rng`.
    pub seed_authority: bool,
    /// True for the crate that owns the detection schemes (`core`): the
    /// only place allowed to call the scheme-private `on_sample` stepping
    /// methods. Every other crate steps detectors through the `Detector`
    /// trait (`on_observation`), which is the sole supported surface
    /// since the verdict API unification.
    pub detector_authority: bool,
    /// True for the crates with an allocation-free ingest contract
    /// (`engine`, `metrics`): functions marked `// hot-path` there must
    /// not build `String`s (`format!`, `.to_string()`, …) — the L7
    /// family.
    pub hot_path_checked: bool,
    /// True for the modules sanctioned to hold cross-thread shared
    /// state (`runner`, `engine::shard`): everywhere else
    /// `Mutex`/`RwLock`/`Atomic*`/`RefCell`/`Cell`/`static mut` are
    /// banned — the L8 family. Cross-shard mutable state is how
    /// determinism dies at fleet scale.
    pub shared_state_sanctioned: bool,
}

/// Every category a `lint:allow(<category>)` marker may name. A marker
/// with any other category is reported by the `allow-unknown` rule.
pub const KNOWN_CATEGORIES: [&str; 15] = [
    "panic",
    "index",
    "time",
    "collections",
    "rand",
    "float-eq",
    "partial-cmp",
    "thread",
    "seed",
    "step",
    "hot-alloc",
    "shared-state",
    "hot-propagate",
    "determinism-taint",
    "verdict-match",
];

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True when `token` occurs in `line` delimited by non-identifier chars.
fn has_token(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = line.get(from..).and_then(|s| s.find(token)) {
        let start = from + pos;
        let end = start + token.len();
        let before_ok = start == 0 || !is_ident(bytes.get(start - 1).copied().unwrap_or(0));
        let after_ok = !is_ident(bytes.get(end).copied().unwrap_or(0));
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Lines covered by `#[cfg(test)]` items (inclusive 1-based ranges).
///
/// Scans the stripped code for the attribute, then brace-matches the item
/// that follows. Brace matching on stripped code is reliable because
/// braces inside strings and comments are already blanked.
fn test_ranges(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let compact: String = code.split_whitespace().collect::<Vec<_>>().join("");
    // Fast path: no test attribute anywhere.
    if !compact.contains("#[cfg(test)]") {
        return Vec::new();
    }
    let mut ranges = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes.get(i).copied().unwrap_or(0);
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c == b'#' && code.get(i..).is_some_and(|s| {
            let head: String = s.chars().take_while(|&ch| ch != ']').collect();
            let squeezed: String = head.split_whitespace().collect();
            squeezed == "#[cfg(test)"
        }) {
            let start_line = line;
            // Find the item body: first '{' (brace-matched) or ';' for a
            // brace-less item like `#[cfg(test)] use foo;`.
            let mut depth = 0usize;
            let mut seen_brace = false;
            while i < bytes.len() {
                match bytes.get(i).copied().unwrap_or(0) {
                    b'\n' => line += 1,
                    b'{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if seen_brace && depth == 0 {
                            break;
                        }
                    }
                    b';' if !seen_brace => break,
                    _ => {}
                }
                i += 1;
            }
            ranges.push((start_line, line));
        }
        i += 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

/// Inclusive 1-based line ranges of functions marked `// hot-path`.
///
/// The marker is a comment, so it is read from the *raw* source (the
/// stripped code has blanked it); the function body it announces is then
/// brace-matched in the stripped code, where braces in strings and
/// comments cannot confuse the matcher. The marker covers the first `fn`
/// within the next few lines, so it sits naturally between a doc comment
/// and the signature.
fn hot_path_ranges(source: &str, code: &str) -> Vec<(usize, usize)> {
    let markers: Vec<usize> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            t == "// hot-path" || t.starts_with("// hot-path ")
        })
        .map(|(i, _)| i + 1)
        .collect();
    if markers.is_empty() {
        return Vec::new();
    }
    let code_lines: Vec<&str> = code.lines().collect();
    let mut ranges = Vec::new();
    for mark in markers {
        // `mark` is 1-based, so index `mark` is the line after it.
        let Some(fn_idx) = (mark..code_lines.len().min(mark + 8))
            .find(|&i| code_lines.get(i).is_some_and(|l| has_token(l, "fn")))
        else {
            continue;
        };
        let mut depth = 0usize;
        let mut seen_brace = false;
        let mut end = fn_idx;
        'body: for (i, l) in code_lines.iter().enumerate().skip(fn_idx) {
            for c in l.bytes() {
                match c {
                    b'{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if seen_brace && depth == 0 {
                            end = i;
                            break 'body;
                        }
                    }
                    // A body-less signature (trait method) ends the item.
                    b';' if !seen_brace => {
                        end = i;
                        break 'body;
                    }
                    _ => {}
                }
            }
            end = i;
        }
        ranges.push((fn_idx + 1, end + 1));
    }
    ranges
}

/// A resolved suppression range: a justified `lint:allow` marker covers
/// lines `lo..=hi` (1-based, inclusive) for its category. `marker`
/// indexes the file's justified-marker list so the workspace pass can
/// report markers that suppressed nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRange {
    pub category: String,
    pub lo: usize,
    pub hi: usize,
    pub marker: usize,
}

/// Everything the per-file phase knows about one source file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Local findings (L1–L3, L5–L8, L11 and the allow hygiene rules).
    pub findings: Vec<Finding>,
    /// Resolved suppression ranges, for the graph phase.
    pub allows: Vec<AllowRange>,
    /// Justified markers as `(line, category)`, indexed by
    /// [`AllowRange::marker`].
    pub markers: Vec<(usize, String)>,
    /// Marker indices consumed by the local rules (or exempt from the
    /// unused-allow report).
    pub used: BTreeSet<usize>,
}

/// Resolves justified markers to suppression ranges. A marker covers
/// its own line through the first following line with code; placed
/// above an `fn` signature (attributes in between are fine) it covers
/// the whole item, so one marker can justify a function-wide contract.
fn allow_ranges(
    allows: &[Allow],
    code: &str,
    symbols: &FileSymbols,
) -> (Vec<AllowRange>, Vec<(usize, String)>) {
    let lines: Vec<&str> = code.lines().collect();
    let mut ranges = Vec::new();
    let mut markers = Vec::new();
    for a in allows.iter().filter(|a| a.justified) {
        let marker = markers.len();
        markers.push((a.line, a.category.clone()));
        let mut hi = a.line;
        // First line with code below the marker (the marker's own line
        // is comment-only after stripping).
        let next = (a.line..lines.len())
            .find(|&i| lines.get(i).is_some_and(|l| !l.trim().is_empty()))
            .map(|i| i + 1);
        if let Some(next) = next {
            hi = next;
            // Walk past attribute lines to the signature they decorate.
            let mut sig = next;
            while lines
                .get(sig.wrapping_sub(1))
                .is_some_and(|l| l.trim_start().starts_with("#["))
            {
                sig += 1;
            }
            if let Some(f) = symbols.fns.iter().find(|f| f.sig_line as usize == sig) {
                hi = hi.max(f.span.1 as usize);
            }
        }
        ranges.push(AllowRange { category: a.category.clone(), lo: a.line, hi, marker });
    }
    (ranges, markers)
}

/// Resolves a file's justified markers to suppression ranges without
/// running any content rules. The cache-hit path replays findings but
/// still needs ranges when the graph phase has to rebuild.
pub fn resolve_allows(
    source: &str,
    symbols: &FileSymbols,
) -> (Vec<AllowRange>, Vec<(usize, String)>) {
    let stripped = strip(source);
    allow_ranges(&stripped.allows, &stripped.code, symbols)
}

/// Appends `finding` unless a suppression range covers it; covering
/// ranges have their markers recorded in `used` either way.
#[allow(clippy::too_many_arguments)]
fn push_finding(
    findings: &mut Vec<Finding>,
    ranges: &[AllowRange],
    used: &mut BTreeSet<usize>,
    file: &str,
    line: usize,
    rule: &'static str,
    category: &str,
    message: String,
) {
    let mut suppressed = false;
    for r in ranges {
        if r.category == category && (r.lo..=r.hi).contains(&line) {
            used.insert(r.marker);
            suppressed = true;
        }
    }
    if !suppressed {
        findings.push(Finding { file: file.to_string(), line, rule, message });
    }
}

/// Context window around a comparison operator, cut at expression
/// boundaries, used to decide whether the operands look like floats.
fn looks_float(context: &str) -> bool {
    if has_token(context, "f64") || has_token(context, "f32") {
        return true;
    }
    let bytes = context.as_bytes();
    bytes.iter().enumerate().any(|(i, &c)| {
        c == b'.'
            && i > 0
            && bytes.get(i - 1).copied().unwrap_or(0).is_ascii_digit()
            && bytes.get(i + 1).copied().unwrap_or(0).is_ascii_digit()
    })
}

const BOUNDARIES: [&str; 8] = ["&&", "||", ",", ";", "(", ")", "{", "}"]; // expression cut points

fn left_context(line: &str, op_start: usize) -> &str {
    let head = line.get(..op_start).unwrap_or("");
    let cut = BOUNDARIES
        .iter()
        .filter_map(|b| head.rfind(b).map(|p| p + b.len()))
        .max()
        .unwrap_or(0);
    head.get(cut..).unwrap_or("")
}

fn right_context(line: &str, op_end: usize) -> &str {
    let tail = line.get(op_end..).unwrap_or("");
    let cut = BOUNDARIES
        .iter()
        .filter_map(|b| tail.find(b))
        .min()
        .unwrap_or(tail.len());
    tail.get(..cut).unwrap_or("")
}

/// Scans one line for `==`/`!=` where an operand looks like a float.
fn float_eq_on_line(line: &str) -> bool {
    let bytes = line.as_bytes();
    (0..bytes.len()).any(|i| {
        let a = bytes.get(i).copied().unwrap_or(0);
        let b = bytes.get(i + 1).copied().unwrap_or(0);
        let c = bytes.get(i + 2).copied().unwrap_or(0);
        let is_eq = (a == b'=' || a == b'!') && b == b'=' && c != b'=';
        let prev = if i == 0 { 0 } else { bytes.get(i - 1).copied().unwrap_or(0) };
        // Exclude <=, >=, ==, +=, -=, ... second halves and pattern arms.
        let standalone = !matches!(prev, b'<' | b'>' | b'=' | b'!');
        is_eq
            && standalone
            && (looks_float(left_context(line, i)) || looks_float(right_context(line, i + 2)))
    })
}

/// Scans one line for indexing with a non-literal, non-range index.
fn unchecked_index_on_line(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes.get(i).copied().unwrap_or(0) != b'[' {
            i += 1;
            continue;
        }
        // What precedes decides whether this is an index operation: an
        // identifier, `]`, or `)` — but not a keyword (`let [a, b] = ..`
        // is a slice pattern, not indexing).
        let head = line.get(..i).unwrap_or("").trim_end();
        let prev = head.bytes().last();
        let word: String = head
            .bytes()
            .rev()
            .take_while(|&c| is_ident(c))
            .map(char::from)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        const KEYWORDS: [&str; 12] = [
            "let", "in", "if", "else", "match", "return", "mut", "ref", "as", "move", "box",
            "dyn",
        ];
        // A lifetime before the bracket (`&'a [u8]`) is a slice type,
        // not an indexing expression.
        let lifetime = head
            .len()
            .checked_sub(word.len() + 1)
            .and_then(|p| head.as_bytes().get(p))
            .is_some_and(|&c| c == b'\'');
        let is_index = matches!(prev, Some(c) if is_ident(c) || c == b']' || c == b')')
            && !KEYWORDS.contains(&word.as_str())
            && !lifetime;
        // Find the matching close bracket on this line.
        let mut depth = 0usize;
        let mut j = i;
        while j < bytes.len() {
            match bytes.get(j).copied().unwrap_or(0) {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let inner = line.get(i + 1..j.min(bytes.len())).unwrap_or("").trim();
        let literal = !inner.is_empty()
            && inner.bytes().all(|c| c.is_ascii_digit() || c == b'_');
        let range = inner.contains("..");
        if is_index && !literal && !range && !inner.is_empty() {
            return true;
        }
        i = j.max(i) + 1;
    }
    false
}

/// Runs all local content rules over one source file. The convenience
/// wrapper around [`check_file`] for callers that only want findings.
pub fn check_source(file: &str, source: &str, scope: FileScope) -> Vec<Finding> {
    let stream = crate::lexer::tokenize(source);
    let symbols = crate::symbols::extract(source, &stream);
    check_file(file, source, scope, &symbols).findings
}

/// Runs all local content rules (L1–L3, L5–L8, L11) over one source
/// file. `symbols` must be the phase-1 extraction of the same source;
/// the fn spans drive item-wide allow coverage, and the returned ranges
/// feed the graph phase.
pub fn check_file(
    file: &str,
    source: &str,
    scope: FileScope,
    symbols: &FileSymbols,
) -> FileReport {
    let stripped = strip(source);
    let tests = test_ranges(&stripped.code);
    let hot = if scope.hot_path_checked {
        hot_path_ranges(source, &stripped.code)
    } else {
        Vec::new()
    };
    let mut findings: Vec<Finding> = Vec::new();

    for a in &stripped.allows {
        if !a.justified {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "allow",
                message: format!(
                    "lint:allow({}) needs a written justification: `-- <reason>`",
                    a.category
                ),
            });
        }
        if !KNOWN_CATEGORIES.contains(&a.category.as_str()) {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "allow-unknown",
                message: format!(
                    "lint:allow({}) names no rule category; see KNOWN_CATEGORIES in \
                     xtask::rules for the full list",
                    a.category
                ),
            });
        }
    }

    let (ranges, markers) = allow_ranges(&stripped.allows, &stripped.code, symbols);
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for (m, (line, category)) in markers.iter().enumerate() {
        // Markers inside test code can never fire (tests are exempt from
        // every rule), and unknown categories are already reported above:
        // neither belongs in the unused-allow report.
        if in_ranges(&tests, *line) || !KNOWN_CATEGORIES.contains(&category.as_str()) {
            used.insert(m);
        }
    }

    let panic_patterns: [(&str, &str); 6] = [
        (".unwrap()", "unwrap() can panic; propagate with `?` or handle the None/Err"),
        (".expect(", "expect() can panic; return an Err through the crate's error type"),
        ("panic!", "panic! in library code; return an Err instead"),
        ("unreachable!", "unreachable! in library code; make the state unrepresentable or return Err"),
        ("todo!", "todo! left in library code"),
        ("unimplemented!", "unimplemented! left in library code"),
    ];

    for (idx, raw_line) in stripped.code.lines().enumerate() {
        let line_no = idx + 1;
        if in_ranges(&tests, line_no) {
            continue;
        }
        let mut push = |rule: &'static str, category: &str, message: String| {
            push_finding(
                &mut findings,
                &ranges,
                &mut used,
                file,
                line_no,
                rule,
                category,
                message,
            );
        };
        for (pat, why) in panic_patterns {
            if raw_line.contains(pat) {
                push("L1/panic", "panic", format!("{pat} — {why}"));
                break;
            }
        }
        if unchecked_index_on_line(raw_line) {
            push(
                "L1/index",
                "index",
                "unchecked slice indexing can panic; use get()/iterators or justify with \
                 lint:allow(index)"
                    .to_string(),
            );
        }
        if !scope.harness
            && (has_token(raw_line, "Instant") || has_token(raw_line, "SystemTime"))
        {
            push(
                "L2/time",
                "time",
                "wall-clock time breaks reproducibility; thread tick counts through instead"
                    .to_string(),
            );
        }
        if scope.deterministic && (has_token(raw_line, "HashMap") || has_token(raw_line, "HashSet"))
        {
            push(
                "L2/collections",
                "collections",
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet"
                    .to_string(),
            );
        }
        if has_token(raw_line, "thread_rng")
            || has_token(raw_line, "RandomState")
            || raw_line.contains("rand::") && !raw_line.contains("memdos")
        {
            let boundary_rand = {
                let bytes = raw_line.as_bytes();
                raw_line.match_indices("rand::").any(|(p, _)| {
                    p == 0 || !is_ident(bytes.get(p - 1).copied().unwrap_or(0))
                })
            } || has_token(raw_line, "thread_rng")
                || has_token(raw_line, "RandomState");
            if boundary_rand {
                push(
                    "L2/rand",
                    "rand",
                    "ambient randomness breaks reproducibility; use the seeded \
                     memdos_stats::rng::Rng"
                        .to_string(),
                );
            }
        }
        if float_eq_on_line(raw_line) {
            push(
                "L3/float-eq",
                "float-eq",
                "==/!= on floats is brittle; use memdos_stats::float::approx_eq".to_string(),
            );
        }
        if has_token(raw_line, "partial_cmp") {
            push(
                "L3/partial-cmp",
                "partial-cmp",
                "partial_cmp is NaN-unsafe; use f64::total_cmp for ordering".to_string(),
            );
        }
        if !scope.harness && spawns_thread(raw_line) {
            push(
                "L5/thread",
                "thread",
                "thread spawning is reserved for the harness crates \
                 (runner/bench/xtask); simulation and analysis code must stay \
                 single-threaded — hand the work to memdos_runner instead"
                    .to_string(),
            );
        }
        if !scope.seed_authority && has_seed_constant(raw_line) {
            push(
                "L5/seed",
                "seed",
                "hand-rolled seed derivation (golden-ratio constant) outside \
                 memdos_stats; derive seeds with memdos_stats::rng::derive_seed \
                 or Rng::fork"
                    .to_string(),
            );
        }
        if !scope.detector_authority && raw_line.contains(".on_sample(") {
            push(
                "L6/step",
                "step",
                "scheme-private on_sample stepping outside memdos-core; step \
                 detectors through the Detector trait (on_observation), which \
                 carries the Verdict and throttle state callers need"
                    .to_string(),
            );
        }
        if !scope.shared_state_sanctioned {
            if let Some(prim) = shared_state_on_line(raw_line) {
                push(
                    "L8/shared-state",
                    "shared-state",
                    format!(
                        "`{prim}` outside the sanctioned shared-state modules \
                         (runner, engine::shard); cross-shard mutable state breaks \
                         the deterministic-merge contract — route state through the \
                         shard owner, or justify with lint:allow(shared-state)"
                    ),
                );
            }
        }
        if in_ranges(&hot, line_no) {
            const ALLOC_PATTERNS: [&str; 6] = [
                "format!",
                ".to_string(",
                ".to_owned(",
                "String::new(",
                "String::from(",
                "String::with_capacity(",
            ];
            for pat in ALLOC_PATTERNS {
                if raw_line.contains(pat) {
                    push(
                        "L7/hot-alloc",
                        "hot-alloc",
                        format!(
                            "{pat} inside a `// hot-path` function allocates a String \
                             per call; render through jsonl::LineBuf / the write_* \
                             formatters, or move the allocation out of the hot path"
                        ),
                    );
                    break;
                }
            }
        }
    }

    // L11/exhaustive-verdicts: bare `_` arms in matches over the
    // verdict/fault enums swallow new variants silently.
    for (line_no, enum_name) in wildcard_verdict_arms(&stripped.code) {
        if in_ranges(&tests, line_no) {
            continue;
        }
        push_finding(
            &mut findings,
            &ranges,
            &mut used,
            file,
            line_no,
            "L11/verdict-match",
            "verdict-match",
            format!(
                "`_` wildcard arm in a match over `{enum_name}`; a new \
                 {enum_name} variant would be silently swallowed — enumerate \
                 every variant, or justify with lint:allow(verdict-match)"
            ),
        );
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileReport { findings, allows: ranges, markers, used }
}

/// The first shared-state primitive named on the line: `Mutex`,
/// `RwLock`, `RefCell`, std's `Cell` (matched through its `cell::Cell`
/// path, because the workspace has unrelated `Cell` types of its own),
/// a std `Atomic*` type, or `static mut`.
fn shared_state_on_line(line: &str) -> Option<String> {
    for tok in ["Mutex", "RwLock", "RefCell"] {
        if has_token(line, tok) {
            return Some(tok.to_string());
        }
    }
    if line.contains("cell::Cell") {
        return Some("cell::Cell".to_string());
    }
    if let Some(name) = atomic_type_on_line(line) {
        return Some(name);
    }
    if static_mut_on_line(line) {
        return Some("static mut".to_string());
    }
    None
}

/// The std interior-mutability atomics are `Atomic` plus a width suffix
/// (`AtomicUsize`, `AtomicBool`, …). A bare `Atomic` identifier is the
/// simulated bus-lock op (`MemOp::Atomic`) and must not match.
fn atomic_type_on_line(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = line.get(from..).and_then(|s| s.find("Atomic")) {
        let start = from + pos;
        let before_ok = start == 0 || !is_ident(bytes.get(start - 1).copied().unwrap_or(0));
        let end = (start..line.len())
            .find(|&i| !is_ident(bytes.get(i).copied().unwrap_or(0)))
            .unwrap_or(line.len());
        let ident = line.get(start..end).unwrap_or("");
        if before_ok && ident.len() > "Atomic".len() {
            return Some(ident.to_string());
        }
        from = end.max(start + 1);
    }
    None
}

/// True when the line declares a `static mut` item.
fn static_mut_on_line(line: &str) -> bool {
    let bytes = line.as_bytes();
    line.match_indices("static").any(|(p, _)| {
        let before_ok = p == 0 || !is_ident(bytes.get(p - 1).copied().unwrap_or(0));
        let rest = line.get(p + 6..).unwrap_or("").trim_start();
        before_ok && (rest == "mut" || rest.starts_with("mut "))
    })
}

/// Finds bare `_` arms in `match` bodies whose sibling arm *patterns*
/// name one of the verdict/fault enums. Only patterns (the text before
/// `=>`) are inspected, so an arm *body* mentioning `RecordError::…`
/// does not make its match a verdict match. Returns `(line, enum)`
/// pairs for each wildcard arm.
fn wildcard_verdict_arms(code: &str) -> Vec<(usize, String)> {
    const ENUMS: [&str; 3] = ["Verdict", "RecordError", "FaultClass"];
    let bytes = code.as_bytes();
    let at = |i: usize| bytes.get(i).copied().unwrap_or(0);
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(p, _)| p)
        .collect();
    let line_of = |p: usize| newlines.partition_point(|&q| q < p) + 1;

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let boundary = i == 0 || !is_ident(at(i - 1));
        if !(boundary && code.get(i..i + 5) == Some("match") && !is_ident(at(i + 5))) {
            i += 1;
            continue;
        }
        // The match body is the first `{` at paren/bracket depth 0
        // (struct literals need parens in scrutinee position, so this
        // cannot be fooled by the scrutinee).
        let mut j = i + 5;
        let mut depth = 0usize;
        let body_open = loop {
            match at(j) {
                0 => break None,
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => break Some(j),
                b';' if depth == 0 => break None, // not a match expression
                _ => {}
            }
            j += 1;
        };
        let Some(body_open) = body_open else {
            i = j.max(i + 5);
            continue;
        };

        // Walk the arms: patterns run to `=>` at depth 0 (relative to
        // the body); arm bodies are skipped (brace-matched blocks, or
        // expressions to the `,` at depth 0).
        let mut arms: Vec<(usize, usize)> = Vec::new();
        let mut k = body_open + 1;
        let mut pat_start = k;
        let mut d = 0usize;
        'body: while k < bytes.len() {
            match at(k) {
                b'(' | b'[' | b'{' => d += 1,
                b'}' if d == 0 => break 'body, // end of the match body
                b')' | b']' | b'}' => d = d.saturating_sub(1),
                b'=' if d == 0 && at(k + 1) == b'>' => {
                    arms.push((pat_start, k));
                    // Skip the arm body.
                    k += 2;
                    while at(k).is_ascii_whitespace() {
                        k += 1;
                    }
                    if at(k) == b'{' {
                        let mut bd = 0usize;
                        while k < bytes.len() {
                            match at(k) {
                                b'{' => bd += 1,
                                b'}' => {
                                    bd = bd.saturating_sub(1);
                                    if bd == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        k += 1;
                        while at(k).is_ascii_whitespace() {
                            k += 1;
                        }
                        if at(k) == b',' {
                            k += 1;
                        }
                    } else {
                        let mut ed = 0usize;
                        while k < bytes.len() {
                            match at(k) {
                                b'(' | b'[' | b'{' => ed += 1,
                                b',' if ed == 0 => {
                                    k += 1;
                                    break;
                                }
                                b'}' if ed == 0 => break 'body,
                                b')' | b']' | b'}' => ed = ed.saturating_sub(1),
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    pat_start = k;
                    continue 'body;
                }
                _ => {}
            }
            k += 1;
        }

        let pats: Vec<(usize, &str)> = arms
            .iter()
            .map(|&(s, e)| (s, code.get(s..e).unwrap_or("").trim()))
            .collect();
        if let Some(en) = ENUMS.iter().find(|en| {
            let needle = format!("{en}::");
            pats.iter().any(|(_, p)| p.contains(&needle))
        }) {
            for &(s, p) in &pats {
                if p == "_" {
                    // The pattern span may start with whitespace; report
                    // the line of the `_` itself.
                    let off = code.get(s..).map(|t| t.len() - t.trim_start().len()).unwrap_or(0);
                    out.push((line_of(s + off), en.to_string()));
                }
            }
        }
        // Resume just inside the body so nested matches are found too.
        i = body_open + 1;
    }
    out
}

/// True when the line creates OS threads: `std::thread` paths or the
/// `thread::spawn`/`thread::scope` idioms. `thread_local!` storage and
/// prose mentions of "thread" do not count.
fn spawns_thread(line: &str) -> bool {
    line.contains("std::thread")
        || line.contains("thread::spawn")
        || line.contains("thread::scope")
        || line.contains("thread::Builder")
}

/// True when the line spells the splitmix golden-ratio constant
/// (`0x9E3779B9…`), under any case or underscore grouping.
fn has_seed_constant(line: &str) -> bool {
    let squeezed: String = line
        .chars()
        .filter(|&c| c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    squeezed.contains("0x9e3779b9")
}

/// L4: `lib.rs` must forbid unsafe code, attribute checked on stripped
/// source so a commented-out attribute does not count.
pub fn check_forbid_unsafe(file: &str, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let squeezed: String = stripped.code.split_whitespace().collect();
    if squeezed.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Finding {
            file: file.to_string(),
            line: 1,
            rule: "L4/unsafe",
            message: "lib.rs must carry #![forbid(unsafe_code)]".to_string(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCOPE: FileScope = FileScope {
        deterministic: true,
        harness: false,
        seed_authority: false,
        detector_authority: false,
        hot_path_checked: false,
        shared_state_sanctioned: false,
    };

    fn rules_of(source: &str) -> Vec<&'static str> {
        check_source("t.rs", source, SCOPE).iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_and_expect() {
        assert_eq!(rules_of("fn f() { x.unwrap(); }\n"), vec!["L1/panic"]);
        assert_eq!(rules_of("fn f() { x.expect(\"m\"); }\n"), vec!["L1/panic"]);
        assert!(rules_of("fn f() { x.unwrap_or(0); }\n").is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "// lint:allow(panic) -- validated at startup\nfn f() { x.unwrap(); }\n";
        assert!(rules_of(src).is_empty());
        let bare = "// lint:allow(panic)\nfn f() { x.unwrap(); }\n";
        assert_eq!(rules_of(bare), vec!["allow", "L1/panic"]);
    }

    #[test]
    fn flags_variable_indexing_only() {
        assert_eq!(rules_of("fn f() { a[i] = 1; }\n"), vec!["L1/index"]);
        assert!(rules_of("fn f() { a[0] = 1; }\n").is_empty());
        assert!(rules_of("fn f() { b = &a[..n]; }\n").is_empty());
        assert!(rules_of("fn f() { v = vec![0; n]; }\n").is_empty());
        assert!(rules_of("fn f(x: [u8; 4]) {}\n").is_empty());
        assert!(rules_of("struct S<'a> { bytes: &'a [u8] }\n").is_empty());
    }

    #[test]
    fn flags_float_eq_not_int_eq() {
        assert_eq!(rules_of("fn f() { if x == 0.0 {} }\n"), vec!["L3/float-eq"]);
        assert_eq!(rules_of("fn f() { if y as f64 != z {} }\n"), vec!["L3/float-eq"]);
        assert!(rules_of("fn f() { if n == 0 {} }\n").is_empty());
        assert!(rules_of("fn f() { if n <= 0.5 {} }\n").is_empty());
    }

    #[test]
    fn flags_partial_cmp_and_time_and_hash() {
        assert_eq!(rules_of("fn f() { a.partial_cmp(&b); }\n"), vec!["L3/partial-cmp"]);
        assert_eq!(rules_of("fn f() { let t = Instant::now(); }\n"), vec!["L2/time"]);
        assert_eq!(
            rules_of("use std::collections::HashMap;\n"),
            vec!["L2/collections"]
        );
        let loose = FileScope { deterministic: false, ..SCOPE };
        assert!(check_source("t.rs", "use std::collections::HashMap;\n", loose).is_empty());
    }

    #[test]
    fn flags_thread_spawning_outside_harness_scope() {
        assert_eq!(rules_of("fn f() { std::thread::spawn(|| {}); }\n"), vec!["L5/thread"]);
        assert_eq!(rules_of("fn f() { thread::scope(|s| {}); }\n"), vec!["L5/thread"]);
        // Thread-local storage and prose are not spawning.
        assert!(rules_of("thread_local! { static X: u8 = 0; }\n").is_empty());
        let harness = FileScope { deterministic: false, harness: true, ..SCOPE };
        let src = "fn f() { std::thread::spawn(|| {}); let t = Instant::now(); }\n";
        assert!(check_source("t.rs", src, harness).is_empty());
    }

    #[test]
    fn flags_seed_constant_outside_stats() {
        assert_eq!(
            rules_of("const S: u64 = seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);\n"),
            vec!["L5/seed"]
        );
        assert_eq!(rules_of("let s = x * 0x9e3779b97f4a7c15u64;\n"), vec!["L5/seed"]);
        let stats = FileScope { seed_authority: true, ..SCOPE };
        let src = "const S: u64 = 0x9E37_79B9_7F4A_7C15;\n";
        assert!(check_source("t.rs", src, stats).is_empty());
        assert!(rules_of("let s = memdos_stats::rng::derive_seed(base, run);\n").is_empty());
    }

    #[test]
    fn flags_on_sample_stepping_outside_core() {
        assert_eq!(rules_of("fn f() { det.on_sample(x); }\n"), vec!["L6/step"]);
        assert!(rules_of("fn f() { det.on_observation(obs); }\n").is_empty());
        // A local function *named* on_sample is not a method call.
        assert!(rules_of("fn on_sample(x: f64) {}\n").is_empty());
        let core = FileScope { detector_authority: true, ..SCOPE };
        assert!(check_source("t.rs", "fn f() { det.on_sample(x); }\n", core).is_empty());
    }

    #[test]
    fn flags_string_allocation_in_hot_path_functions_only() {
        let hot = FileScope { hot_path_checked: true, ..SCOPE };
        let rules = |src: &str| -> Vec<&'static str> {
            check_source("t.rs", src, hot).iter().map(|f| f.rule).collect()
        };
        // Inside a marked function: every String-allocating idiom flags.
        let src = "// hot-path\nfn f(x: u32) -> String { format!(\"{x}\") }\n";
        assert_eq!(rules(src), vec!["L7/hot-alloc"]);
        let src = "// hot-path\nfn f(x: u32) -> String { x.to_string() }\n";
        assert_eq!(rules(src), vec!["L7/hot-alloc"]);
        let src = "// hot-path\nfn f(s: &str) -> String { s.to_owned() }\n";
        assert_eq!(rules(src), vec!["L7/hot-alloc"]);
        let src = "// hot-path\nfn f() -> String { String::with_capacity(8) }\n";
        assert_eq!(rules(src), vec!["L7/hot-alloc"]);
        // The marker reaches past attributes to its fn, and the range
        // ends with the body: the next (unmarked) fn is free to allocate.
        let src = "// hot-path\n#[inline]\nfn f(out: &mut String) {\n    out.push('x');\n}\n\nfn cold() -> String { format!(\"ok\") }\n";
        assert!(rules(src).is_empty());
        // Unmarked functions never flag, and without scope nothing does.
        assert!(rules("fn f(x: u32) -> String { format!(\"{x}\") }\n").is_empty());
        let src = "// hot-path\nfn f(x: u32) -> String { format!(\"{x}\") }\n";
        assert!(check_source("t.rs", src, SCOPE).is_empty());
        // A justified allow suppresses, as everywhere.
        let src = "// hot-path\nfn f(x: u32) -> String {\n    // lint:allow(hot-alloc) -- cold error branch\n    format!(\"{x}\")\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn flags_shared_state_outside_sanctioned_modules() {
        assert_eq!(rules_of("static COUNT: Mutex<u64> = Mutex::new(0);\n"), vec!["L8/shared-state"]);
        assert_eq!(rules_of("fn f() { let c = RefCell::new(0); }\n"), vec!["L8/shared-state"]);
        assert_eq!(rules_of("use std::sync::atomic::AtomicUsize;\n"), vec!["L8/shared-state"]);
        assert_eq!(rules_of("static mut X: u64 = 0;\n"), vec!["L8/shared-state"]);
        assert_eq!(rules_of("use std::cell::Cell;\n"), vec!["L8/shared-state"]);
        // The simulated bus-lock op is exactly `Atomic` — not a std type.
        assert!(rules_of("fn f() { ops.push(MemOp::Atomic); }\n").is_empty());
        // The workspace's own `Cell` types (bench figure cells) are fine.
        assert!(rules_of("fn f(c: &Cell) -> u32 { c.runs }\n").is_empty());
        // `OnceCell`/`OnceLock` are init-once, not shared mutability.
        assert!(rules_of("fn f() { let c = OnceLock::new(); }\n").is_empty());
        assert!(rules_of("static X: u64 = 0;\n").is_empty());
        let sanctioned = FileScope { shared_state_sanctioned: true, ..SCOPE };
        let src = "static COUNT: Mutex<u64> = Mutex::new(0);\n";
        assert!(check_source("t.rs", src, sanctioned).is_empty());
        // A justified allow suppresses, as everywhere.
        let src = "// lint:allow(shared-state) -- plan cache is thread-local\nfn f() { let c = RefCell::new(0); }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn flags_wildcard_arms_over_verdict_enums_only() {
        let src = "\
fn f(v: Verdict) -> u32 {
    match v {
        Verdict::Normal => 0,
        _ => 1,
    }
}
";
        assert_eq!(rules_of(src), vec!["L11/verdict-match"]);
        // Line points at the wildcard arm.
        let f = check_source("t.rs", src, SCOPE);
        assert_eq!(f.first().map(|f| f.line), Some(4));
        // A match whose *body* mentions the enum is not a verdict match.
        let src = "\
fn g(x: u32) -> RawParse {
    match x {
        0 => RawParse::Ok,
        _ => RawParse::Reject(RecordError::Syntax),
    }
}
";
        assert!(rules_of(src).is_empty());
        // Exhaustive matches and guarded wildcards pass.
        let src = "\
fn h(v: Verdict) -> u32 {
    match v {
        Verdict::Normal => 0,
        Verdict::Suspicious { .. } => 1,
        Verdict::Alarm => 2,
    }
}
";
        assert!(rules_of(src).is_empty());
        let src = "\
fn k(c: FaultClass) -> u32 {
    match c {
        FaultClass::Stall => 4,
        _ if cheap() => 0,
        other => tag(other),
    }
}
";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn wildcard_detection_handles_nested_matches_and_block_arms() {
        let src = "\
fn f(v: Verdict, x: u32) -> u32 {
    match x {
        0 => {
            match v {
                Verdict::Alarm => 1,
                _ => 2,
            }
        }
        n => n,
    }
}
";
        let f = check_source("t.rs", src, SCOPE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f.first().map(|f| (f.rule, f.line)), Some(("L11/verdict-match", 6)));
    }

    #[test]
    fn reports_unknown_allow_categories() {
        let src = "// lint:allow(sloppiness) -- because\nfn f() {}\n";
        assert_eq!(rules_of(src), vec!["allow-unknown"]);
    }

    #[test]
    fn allow_above_fn_signature_covers_the_whole_item() {
        let src = "\
// lint:allow(panic) -- prototype scaffolding, tracked in #42
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    a + helper().unwrap()
}
fn g(x: Option<u32>) -> u32 { x.unwrap() }
";
        let f = check_source("t.rs", src, SCOPE);
        // Both unwraps in `f` are covered; `g` still flags.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f.first().map(|f| f.line), Some(6));
        // Attributes between the marker and the signature are fine.
        let src = "\
// lint:allow(panic) -- fixture
#[inline]
fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        assert!(check_source("t.rs", src, SCOPE).is_empty());
    }

    #[test]
    fn check_file_tracks_used_markers() {
        let src = "\
// lint:allow(panic) -- covers the unwrap below
fn f(x: Option<u32>) -> u32 { x.unwrap() }
// lint:allow(panic) -- covers nothing
fn g(x: u32) -> u32 { x }
";
        let stream = crate::lexer::tokenize(src);
        let symbols = crate::symbols::extract(src, &stream);
        let report = check_file("t.rs", src, SCOPE, &symbols);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.markers.len(), 2);
        assert!(report.used.contains(&0), "first marker suppressed the unwrap");
        assert!(!report.used.contains(&1), "second marker is stale");
    }

    #[test]
    fn forbid_unsafe_checked_on_stripped_source() {
        assert!(check_forbid_unsafe("l.rs", "#![forbid(unsafe_code)]\n").is_empty());
        assert_eq!(check_forbid_unsafe("l.rs", "// #![forbid(unsafe_code)]\n").len(), 1);
    }
}
