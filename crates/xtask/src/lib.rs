//! # xtask — workspace static analysis
//!
//! A dependency-free, two-phase lint pass for the memdos workspace, run
//! as `cargo run -p xtask -- lint`. Phase 1 walks every `crates/*/src`
//! tree (and the root package's `src/`), strips comments and string
//! literals with a hand-rolled lexer ([`lexer`]), tokenizes each file
//! and extracts per-file symbols — fn definitions with body spans,
//! impl context, imports, call sites ([`symbols`]) — while running the
//! local rule families. Phase 2 assembles the symbol tables into a
//! conservative workspace call graph ([`callgraph`]) and runs the
//! dataflow rules over it. Eleven rule families:
//!
//! * **L1 panic-freedom** — no `unwrap()`/`expect()`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` and no unchecked slice
//!   indexing in non-test library code. SDS is a real-time detector; a
//!   panic on a degenerate window is a missed detection.
//! * **L2 determinism** — no `std::time::{Instant, SystemTime}`, no
//!   `HashMap`/`HashSet` in the deterministic crates (`sim`, `stats`,
//!   `core`, `engine`), no ambient randomness: every stochastic choice
//!   flows from the seeded `memdos_stats::rng`.
//! * **L3 float-safety** — no `==`/`!=` on float expressions (use
//!   `memdos_stats::float::approx_eq`) and no NaN-unsafe `partial_cmp`
//!   (use `f64::total_cmp`).
//! * **L4 crate hygiene** — every `lib.rs` carries
//!   `#![forbid(unsafe_code)]`; every `Cargo.toml` dependency is
//!   workspace-inherited with no wildcard versions.
//! * **L5 concurrency & seed discipline** — thread spawning is allowed
//!   only in the harness crates (`runner`, `bench`, `xtask`), which are
//!   also the only crates exempt from the wall-clock ban; the
//!   golden-ratio seed constant may appear only in `stats`.
//! * **L6 detector authority** — outside `core`, detectors are stepped
//!   only through the `Detector` trait (`on_observation`).
//! * **L7 hot-path allocation** — in the ingest crates (`engine`,
//!   `metrics`), functions marked with a `// hot-path` comment must not
//!   build `String`s; render through `jsonl::LineBuf` instead.
//! * **L8 shared-state** — interior-mutability and locking primitives
//!   (`Mutex`, `RwLock`, `Atomic*`, `RefCell`, `cell::Cell`,
//!   `static mut`) are confined to the sanctioned concurrency layer
//!   (the `runner` crate, which owns `ShardPool`). Everyone else stays
//!   single-owner so replay never depends on lock acquisition order.
//! * **L9 hot-propagate** — the L7 allocation contract follows the call
//!   graph: a `// hot-path` fn calling (transitively) into an allocating
//!   helper is flagged at the call site, with the offending path in the
//!   message. L7 alone only sees allocations written inside the hot fn.
//! * **L10 determinism-taint** — `HashMap`/`HashSet` iteration, wall
//!   clocks and `std::env` reads are flagged anywhere *reachable from*
//!   `Detector::on_observation` or the engine merge/flush path, with the
//!   full reachability chain in the diagnostic — the harness exemption
//!   does not launder nondeterminism back into verdict order.
//! * **L11 exhaustive-verdicts** — no `_` wildcard arms in matches over
//!   `Verdict`/`RecordError`/fault-class enums; adding a variant must
//!   break the build, not silently fall through.
//!
//! A finding is suppressed only by an inline justification on the same
//! line or the line above: `// lint:allow(<category>) -- <reason>`.
//! Placed above an `fn` signature the marker covers the whole item.
//! Markers without a reason are reported (`allow`); markers naming no
//! known category are reported (`allow-unknown`); justified markers
//! that suppressed nothing are reported (`allow-unused`).
//!
//! Between runs the pass keeps a content-hash cache (by default
//! `target/xtask-lint-cache.json`, see [`cache`]): unchanged files are
//! served from their cached findings without any scanning, and the
//! graph findings are reused wholesale when no file changed at all.
//!
//! A second subcommand, `cargo run -p xtask -- bench-check <current>
//! <baseline> [...]`, validates `BENCH_*.json` micro-benchmark reports
//! against their baselines (see [`benchcheck`]).

#![forbid(unsafe_code)]

pub mod benchcheck;
pub mod cache;
pub mod callgraph;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod symbols;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::mpsc;

use cache::{Cache, FileEntry, GraphEntry};
use callgraph::FileAnalysis;
use rules::{AllowRange, FileScope, Finding};
use symbols::FileSymbols;

/// The worker count for the parallel lint walk plus any `MEMDOS_THREADS`
/// diagnostic. Mirrors `memdos_runner::threads_config()`: xtask cannot
/// depend on the runner crate — the lint must stay runnable even when the
/// workspace it checks does not compile — so the strict-parse semantics
/// are duplicated here and pinned by the [`parse_threads`] tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsHint {
    /// Worker count to use (always >= 1).
    pub workers: usize,
    /// Human-readable description of an ignored `MEMDOS_THREADS` value,
    /// when the variable was set but not a positive integer. Printed
    /// once by `main`.
    pub diagnostic: Option<String>,
}

/// Resolves a raw `MEMDOS_THREADS` value (`None` when unset) against a
/// fallback worker count, reporting invalid values instead of silently
/// swallowing them.
pub fn parse_threads(value: Option<&str>, fallback: usize) -> ThreadsHint {
    let fallback = fallback.max(1);
    match value {
        None => ThreadsHint { workers: fallback, diagnostic: None },
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => ThreadsHint { workers: n, diagnostic: None },
            _ => ThreadsHint {
                workers: fallback,
                diagnostic: Some(format!(
                    "MEMDOS_THREADS={v:?} is not a positive integer; \
                     falling back to available parallelism"
                )),
            },
        },
    }
}

/// Reads `MEMDOS_THREADS` from the environment and resolves it against
/// the machine's available parallelism.
pub fn threads_hint() -> ThreadsHint {
    let fallback = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    parse_threads(std::env::var("MEMDOS_THREADS").ok().as_deref(), fallback)
}

/// Crates whose outputs must be reproducible bit-for-bit across runs.
/// `engine` joins the original three: its verdict log is the replayable
/// artifact the whole serving layer is built around.
const DETERMINISTIC_CRATES: [&str; 4] = ["sim", "stats", "core", "engine"];

/// Harness crates: the only places allowed to spawn threads or measure
/// wall-clock time. Everything else must stay single-threaded and
/// tick-counted so results are schedule-independent.
const HARNESS_CRATES: [&str; 3] = ["runner", "bench", "xtask"];

/// The one crate allowed to spell the golden-ratio seed constant; all
/// other crates must route seed derivation through `memdos_stats::rng`.
const SEED_AUTHORITY_CRATES: [&str; 1] = ["stats"];

/// The one crate allowed to call the scheme-private `on_sample` stepping
/// methods; everyone else steps detectors through the `Detector` trait.
const DETECTOR_AUTHORITY_CRATES: [&str; 1] = ["core"];

/// The crates carrying the allocation-free ingest contract: functions
/// marked `// hot-path` there are held to the L7/L9 no-String rule.
const HOT_PATH_CRATES: [&str; 2] = ["engine", "metrics"];

/// The sanctioned concurrency layer: `runner` owns `ShardPool` and the
/// worker fan, so it is the one crate where L8's shared-state primitives
/// are part of the design rather than a leak.
const SHARED_STATE_SANCTIONED_CRATES: [&str; 1] = ["runner"];

/// The [`FileScope`] for a crate directory name.
fn scope_for(name: &str) -> FileScope {
    FileScope {
        deterministic: DETERMINISTIC_CRATES.contains(&name),
        harness: HARNESS_CRATES.contains(&name),
        seed_authority: SEED_AUTHORITY_CRATES.contains(&name),
        detector_authority: DETECTOR_AUTHORITY_CRATES.contains(&name),
        hot_path_checked: HOT_PATH_CRATES.contains(&name),
        shared_state_sanctioned: SHARED_STATE_SANCTIONED_CRATES.contains(&name),
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

/// One unit of phase-1 work: a manifest or a source file.
#[derive(Debug, Clone)]
struct FileTask {
    crate_name: String,
    path: PathBuf,
    scope: FileScope,
    is_source: bool,
}

/// What phase 1 produced for one file — either a fresh scan or a cache
/// replay. `symbols`/`allows` are populated only on fresh scans; the
/// graph phase re-derives them from `source` for cache hits when it has
/// to rebuild.
struct FileOutcome {
    shown: String,
    crate_name: String,
    scope: FileScope,
    is_source: bool,
    hash: u64,
    cached: bool,
    findings: Vec<Finding>,
    markers: Vec<(usize, String)>,
    used: BTreeSet<usize>,
    source: String,
    symbols: Option<FileSymbols>,
    allows: Option<Vec<AllowRange>>,
}

/// Phase-1 work for one file: hash, cache lookup, scan on miss.
fn process_task(root: &Path, task: &FileTask, cache: &Cache) -> Result<FileOutcome, String> {
    let source = fs::read_to_string(&task.path)
        .map_err(|e| format!("read {}: {e}", task.path.display()))?;
    let shown = display_path(root, &task.path);
    let hash = cache::fnv64(source.as_bytes());

    if let Some(entry) = cache.files.get(&shown) {
        if entry.hash == hash {
            return Ok(FileOutcome {
                shown,
                crate_name: task.crate_name.clone(),
                scope: task.scope,
                is_source: task.is_source,
                hash,
                cached: true,
                findings: entry.findings.clone(),
                markers: entry.markers.clone(),
                used: entry.used.clone(),
                source,
                symbols: None,
                allows: None,
            });
        }
    }

    if !task.is_source {
        let is_root = source.contains("[workspace]");
        let findings = manifest::check_manifest(&shown, &source, is_root);
        return Ok(FileOutcome {
            shown,
            crate_name: task.crate_name.clone(),
            scope: task.scope,
            is_source: false,
            hash,
            cached: false,
            findings,
            markers: Vec::new(),
            used: BTreeSet::new(),
            source,
            symbols: None,
            allows: None,
        });
    }

    let stream = lexer::tokenize(&source);
    let symbols = symbols::extract(&source, &stream);
    let mut report = rules::check_file(&shown, &source, task.scope, &symbols);
    if task.path.file_name().is_some_and(|f| f == "lib.rs") {
        report.findings.extend(rules::check_forbid_unsafe(&shown, &source));
    }
    Ok(FileOutcome {
        shown,
        crate_name: task.crate_name.clone(),
        scope: task.scope,
        is_source: true,
        hash,
        cached: false,
        findings: report.findings,
        markers: report.markers,
        used: report.used,
        source,
        symbols: Some(symbols),
        allows: Some(report.allows),
    })
}

/// Counters for one lint run, printed as the `lint_stats:` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Files considered (sources plus manifests).
    pub files: usize,
    /// Files actually rule-scanned this run.
    pub scanned: usize,
    /// Files served from the content-hash cache.
    pub cached: usize,
    /// Whether the phase-2 graph findings were replayed from the cache.
    pub graph_cached: bool,
    /// Call-graph nodes (non-test fns).
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Wall time of the whole run, in milliseconds.
    pub wall_ms: u128,
}

impl LintStats {
    /// The `engine_stats`-style one-liner for the CLI.
    pub fn render(&self) -> String {
        format!(
            "lint_stats: files={} scanned={} cached={} graph={} fns={} edges={} wall_ms={}",
            self.files,
            self.scanned,
            self.cached,
            if self.graph_cached { "cached" } else { "built" },
            self.fns,
            self.edges,
            self.wall_ms,
        )
    }
}

/// Findings plus run counters.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub stats: LintStats,
}

impl LintReport {
    /// The `--format json` payload: findings array plus run counters,
    /// one object on one line, suitable as a CI artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"findings\":{},\"stats\":{{\"files\":{},\"scanned\":{},\"cached\":{},\
             \"graph_cached\":{},\"fns\":{},\"edges\":{},\"wall_ms\":{}}}}}",
            cache::findings_json(&self.findings),
            self.stats.files,
            self.stats.scanned,
            self.stats.cached,
            self.stats.graph_cached,
            self.stats.fns,
            self.stats.edges,
            self.stats.wall_ms,
        )
    }
}

/// Collects the workspace's file tasks: the root package plus every
/// directory under `crates/`, manifests and `.rs` sources, sorted so
/// output is identical at any worker count.
fn collect_tasks(root: &Path) -> Result<Vec<FileTask>, String> {
    let mut crate_dirs: Vec<(String, PathBuf)> = vec![(".".to_string(), root.to_path_buf())];
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
        if entry.path().is_dir() {
            dirs.push(entry.path());
        }
    }
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        crate_dirs.push((name, dir));
    }

    let mut tasks = Vec::new();
    for (name, dir) in crate_dirs {
        let scope = scope_for(&name);
        let manifest_path = dir.join("Cargo.toml");
        if manifest_path.is_file() {
            tasks.push(FileTask {
                crate_name: name.clone(),
                path: manifest_path,
                scope,
                is_source: false,
            });
        }
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            tasks.push(FileTask { crate_name: name.clone(), path, scope, is_source: true });
        }
    }
    Ok(tasks)
}

/// Lints the whole workspace rooted at `root`, fanned across `workers`
/// threads (one file per task, results reassembled in task order so the
/// output is identical at any worker count). With `cache_path` set, the
/// content-hash cache at that path is consulted and rewritten: unchanged
/// files skip all rule scanning, and an unchanged tree also skips the
/// graph rebuild. Findings come back sorted by (file, line, rule).
pub fn lint_workspace_report(
    root: &Path,
    workers: usize,
    cache_path: Option<&Path>,
) -> Result<LintReport, String> {
    let started = std::time::Instant::now();
    let cache = cache_path.and_then(Cache::load).unwrap_or_default();
    let tasks = collect_tasks(root)?;

    // ---- phase 1: per-file scan / cache replay, fanned over workers ----
    let workers = workers.clamp(1, tasks.len().max(1));
    let (tx, rx) = mpsc::channel::<(usize, Result<FileOutcome, String>)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let tasks = &tasks;
            let cache = &cache;
            scope.spawn(move || {
                for (i, task) in tasks.iter().enumerate() {
                    if i % workers != w {
                        continue;
                    }
                    let result = process_task(root, task, cache);
                    if tx.send((i, result)).is_err() {
                        return;
                    }
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<FileOutcome>> = tasks.iter().map(|_| None).collect();
    for (i, result) in rx {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(result?);
        }
    }
    let mut outcomes: Vec<FileOutcome> = Vec::with_capacity(slots.len());
    for (slot, task) in slots.into_iter().zip(&tasks) {
        match slot {
            Some(outcome) => outcomes.push(outcome),
            None => return Err(format!("lint worker dropped {}", task.path.display())),
        }
    }

    let mut stats = LintStats {
        files: outcomes.len(),
        scanned: outcomes.iter().filter(|o| !o.cached).count(),
        cached: outcomes.iter().filter(|o| o.cached).count(),
        ..LintStats::default()
    };

    // ---- phase 2: call graph, gated on the tree digest ----
    let mut hashes: BTreeMap<String, u64> = BTreeMap::new();
    for o in outcomes.iter().filter(|o| o.is_source) {
        hashes.insert(o.shown.clone(), o.hash);
    }
    let digest = cache::tree_digest(&hashes);

    let graph_entry = match cache.graph {
        Some(ref g) if g.digest == digest => {
            stats.graph_cached = true;
            stats.fns = g.fns;
            stats.edges = g.edges;
            g.clone()
        }
        _ => {
            let mut analyses: Vec<FileAnalysis> = Vec::new();
            for o in &mut outcomes {
                if !o.is_source {
                    continue;
                }
                let (symbols, allows) = match (o.symbols.take(), o.allows.take()) {
                    (Some(s), Some(a)) => (s, a),
                    _ => {
                        // Cache hit: findings were replayed, but the graph
                        // needs fresh symbols. Re-deriving them is pure
                        // tokenization — no rule scanning happens here.
                        let stream = lexer::tokenize(&o.source);
                        let symbols = symbols::extract(&o.source, &stream);
                        let (allows, _) = rules::resolve_allows(&o.source, &symbols);
                        (symbols, allows)
                    }
                };
                analyses.push(FileAnalysis {
                    path: o.shown.clone(),
                    crate_name: o.crate_name.clone(),
                    scope: o.scope,
                    symbols,
                    allows,
                });
            }
            let graph = callgraph::Graph::build(&analyses);
            let mut used_idx: BTreeSet<(usize, usize)> = BTreeSet::new();
            let findings = callgraph::graph_findings(&graph, &mut used_idx);
            let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
            for (fi, marker) in used_idx {
                if let Some(a) = analyses.get(fi) {
                    used.insert((a.path.clone(), marker));
                }
            }
            stats.fns = graph.fn_count();
            stats.edges = graph.edge_count();
            GraphEntry {
                digest,
                findings,
                used,
                fns: stats.fns,
                edges: stats.edges,
            }
        }
    };

    // ---- unused-allow report (always fresh: depends on both phases) ----
    let mut findings: Vec<Finding> = Vec::new();
    for o in &outcomes {
        findings.extend(o.findings.iter().cloned());
        for (idx, (line, category)) in o.markers.iter().enumerate() {
            let locally_used = o.used.contains(&idx);
            let graph_used = graph_entry.used.contains(&(o.shown.clone(), idx));
            if !locally_used && !graph_used {
                findings.push(Finding {
                    file: o.shown.clone(),
                    line: *line,
                    rule: "allow-unused",
                    message: format!(
                        "lint:allow({category}) suppresses nothing — remove the stale marker"
                    ),
                });
            }
        }
    }
    findings.extend(graph_entry.findings.iter().cloned());
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();

    // ---- persist the cache for the next run ----
    if let Some(path) = cache_path {
        let mut files: BTreeMap<String, FileEntry> = BTreeMap::new();
        for o in &outcomes {
            files.insert(
                o.shown.clone(),
                FileEntry {
                    hash: o.hash,
                    findings: o.findings.clone(),
                    markers: o.markers.clone(),
                    used: o.used.clone(),
                },
            );
        }
        let next = Cache { files, graph: Some(graph_entry) };
        next.store(path)?;
    }

    stats.wall_ms = started.elapsed().as_millis();
    Ok(LintReport { findings, stats })
}

/// Cache-less convenience wrapper: lints the workspace and returns just
/// the findings.
pub fn lint_workspace(root: &Path, workers: usize) -> Result<Vec<Finding>, String> {
    lint_workspace_report(root, workers, None).map(|r| r.findings)
}

#[cfg(test)]
mod threads_tests {
    use super::parse_threads;

    #[test]
    fn valid_values_win_and_invalid_values_carry_a_diagnostic() {
        assert_eq!(parse_threads(Some("8"), 4).workers, 8);
        assert_eq!(parse_threads(Some(" 2 "), 4).workers, 2);
        assert!(parse_threads(Some("8"), 4).diagnostic.is_none());
        // Unset: silent fallback, floored at one worker.
        assert_eq!(parse_threads(None, 4).workers, 4);
        assert_eq!(parse_threads(None, 0).workers, 1);
        assert!(parse_threads(None, 4).diagnostic.is_none());
        // Set-but-invalid: fallback plus a printable diagnostic, the same
        // contract as memdos_runner::threads_config().
        for bad in ["0", "-3", "many", "2.5", ""] {
            let hint = parse_threads(Some(bad), 4);
            assert_eq!(hint.workers, 4, "fallback for {bad:?}");
            let diag = hint.diagnostic.unwrap_or_default();
            assert!(diag.contains("MEMDOS_THREADS"), "diagnostic for {bad:?}: {diag}");
        }
    }
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}
