//! # xtask — workspace static analysis
//!
//! A dependency-free lint pass for the memdos workspace, run as
//! `cargo run -p xtask -- lint`. It walks every `crates/*/src` tree (and
//! the root package's `src/`) with one task per crate fanned across
//! `MEMDOS_THREADS` workers, strips comments and string literals with a
//! small hand-rolled lexer, and enforces seven rule families:
//!
//! * **L1 panic-freedom** — no `unwrap()`/`expect()`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` and no unchecked slice
//!   indexing in non-test library code. SDS is a real-time detector; a
//!   panic on a degenerate window is a missed detection.
//! * **L2 determinism** — no `std::time::{Instant, SystemTime}`, no
//!   `HashMap`/`HashSet` in the deterministic crates (`sim`, `stats`,
//!   `core`), no ambient randomness: every stochastic choice flows from
//!   the seeded `memdos_stats::rng`.
//! * **L3 float-safety** — no `==`/`!=` on float expressions (use
//!   `memdos_stats::float::approx_eq`) and no NaN-unsafe `partial_cmp`
//!   (use `f64::total_cmp`).
//! * **L4 crate hygiene** — every `lib.rs` carries
//!   `#![forbid(unsafe_code)]`; every `Cargo.toml` dependency is
//!   workspace-inherited with no wildcard versions.
//! * **L5 concurrency & seed discipline** — thread spawning
//!   (`std::thread`, `thread::spawn`, `thread::scope`) is allowed only in
//!   the harness crates (`runner`, `bench`, `xtask`), which are also the
//!   only crates exempt from the wall-clock ban; and the golden-ratio
//!   seed constant may appear only in `stats` — everyone else derives
//!   seeds through `memdos_stats::rng::derive_seed`/`Rng::fork`, which
//!   keeps parallel and sequential schedules bit-identical.
//! * **L6 detector authority** — outside `core`, detectors are stepped
//!   only through the `Detector` trait (`on_observation`); the
//!   scheme-private `on_sample` methods were folded into the trait path
//!   during the verdict API unification and must not leak back out.
//! * **L7 hot-path allocation** — in the ingest crates (`engine`,
//!   `metrics`), functions marked with a `// hot-path` comment must not
//!   build `String`s (`format!`, `.to_string()`, `.to_owned()`,
//!   `String::new/from/with_capacity`): the streaming fast path promises
//!   zero allocations per sample, and one stray `format!` silently
//!   un-promises it. Render through `jsonl::LineBuf` and the `write_*`
//!   formatters instead.
//!
//! A finding is suppressed only by an inline justification on the same
//! line or the line above: `// lint:allow(<category>) -- <reason>`.
//! Categories: `panic`, `index`, `time`, `collections`, `rand`,
//! `float-eq`, `partial-cmp`, `thread`, `seed`, `step`, `hot-alloc`.
//! Markers without a reason are themselves reported and suppress nothing.
//!
//! A second subcommand, `cargo run -p xtask -- bench-check <current>
//! <baseline> [<current> <baseline> ...]`, validates one or more
//! `BENCH_*.json` micro-benchmark reports against their baselines and
//! fails on kernel regressions (see [`benchcheck`]).

#![forbid(unsafe_code)]

pub mod benchcheck;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rules::{FileScope, Finding};

/// The worker count for the parallel lint walk plus any `MEMDOS_THREADS`
/// diagnostic. Mirrors `memdos_runner::threads_config()`: xtask cannot
/// depend on the runner crate — the lint must stay runnable even when the
/// workspace it checks does not compile — so the strict-parse semantics
/// are duplicated here and pinned by the [`parse_threads`] tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsHint {
    /// Worker count to use (always >= 1).
    pub workers: usize,
    /// Human-readable description of an ignored `MEMDOS_THREADS` value,
    /// when the variable was set but not a positive integer. Printed
    /// once by `main`.
    pub diagnostic: Option<String>,
}

/// Resolves a raw `MEMDOS_THREADS` value (`None` when unset) against a
/// fallback worker count, reporting invalid values instead of silently
/// swallowing them.
pub fn parse_threads(value: Option<&str>, fallback: usize) -> ThreadsHint {
    let fallback = fallback.max(1);
    match value {
        None => ThreadsHint { workers: fallback, diagnostic: None },
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => ThreadsHint { workers: n, diagnostic: None },
            _ => ThreadsHint {
                workers: fallback,
                diagnostic: Some(format!(
                    "MEMDOS_THREADS={v:?} is not a positive integer; \
                     falling back to available parallelism"
                )),
            },
        },
    }
}

/// Reads `MEMDOS_THREADS` from the environment and resolves it against
/// the machine's available parallelism.
pub fn threads_hint() -> ThreadsHint {
    let fallback = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    parse_threads(std::env::var("MEMDOS_THREADS").ok().as_deref(), fallback)
}

/// Crates whose outputs must be reproducible bit-for-bit across runs.
/// `engine` joins the original three: its verdict log is the replayable
/// artifact the whole serving layer is built around.
const DETERMINISTIC_CRATES: [&str; 4] = ["sim", "stats", "core", "engine"];

/// Harness crates: the only places allowed to spawn threads or measure
/// wall-clock time. Everything else must stay single-threaded and
/// tick-counted so results are schedule-independent.
const HARNESS_CRATES: [&str; 3] = ["runner", "bench", "xtask"];

/// The one crate allowed to spell the golden-ratio seed constant; all
/// other crates must route seed derivation through `memdos_stats::rng`.
const SEED_AUTHORITY_CRATES: [&str; 1] = ["stats"];

/// The one crate allowed to call the scheme-private `on_sample` stepping
/// methods; everyone else steps detectors through the `Detector` trait.
const DETECTOR_AUTHORITY_CRATES: [&str; 1] = ["core"];

/// The crates carrying the allocation-free ingest contract: functions
/// marked `// hot-path` there are held to the L7 no-String-allocation
/// rule.
const HOT_PATH_CRATES: [&str; 2] = ["engine", "metrics"];

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

/// Lints one crate's `src` tree and manifest. `name` is the directory
/// name under `crates/` (or `"."` for the workspace root package).
fn lint_crate(root: &Path, crate_dir: &Path, name: &str) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let scope = FileScope {
        deterministic: DETERMINISTIC_CRATES.contains(&name),
        harness: HARNESS_CRATES.contains(&name),
        seed_authority: SEED_AUTHORITY_CRATES.contains(&name),
        detector_authority: DETECTOR_AUTHORITY_CRATES.contains(&name),
        hot_path_checked: HOT_PATH_CRATES.contains(&name),
    };

    let manifest_path = crate_dir.join("Cargo.toml");
    if manifest_path.is_file() {
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
        let is_root = text.contains("[workspace]");
        findings.extend(manifest::check_manifest(
            &display_path(root, &manifest_path),
            &text,
            is_root,
        ));
    }

    let src = crate_dir.join("src");
    if !src.is_dir() {
        return Ok(findings);
    }
    let mut files = Vec::new();
    rust_files(&src, &mut files)?;
    for path in files {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let shown = display_path(root, &path);
        findings.extend(rules::check_source(&shown, &text, scope));
        if path.file_name().is_some_and(|f| f == "lib.rs") {
            findings.extend(rules::check_forbid_unsafe(&shown, &text));
        }
    }
    Ok(findings)
}

/// Lints the whole workspace rooted at `root`: the root package plus
/// every directory under `crates/`, fanned across `workers` threads (one
/// crate per task). Findings come back sorted by file and line, so the
/// output is identical at any worker count.
pub fn lint_workspace(root: &Path, workers: usize) -> Result<Vec<Finding>, String> {
    let mut findings = lint_crate(root, root, ".")?;
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
        if entry.path().is_dir() {
            dirs.push(entry.path());
        }
    }
    dirs.sort();

    let workers = workers.clamp(1, dirs.len().max(1));
    let slots: Vec<Mutex<Option<Result<Vec<Finding>, String>>>> =
        dirs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let dirs = &dirs;
            scope.spawn(move || {
                for (i, dir) in dirs.iter().enumerate() {
                    if i % workers != w {
                        continue;
                    }
                    let name = dir
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    let result = lint_crate(root, dir, &name);
                    if let Some(slot) = slots.get(i) {
                        match slot.lock() {
                            Ok(mut guard) => *guard = Some(result),
                            Err(poisoned) => *poisoned.into_inner() = Some(result),
                        }
                    }
                }
            });
        }
    });
    for (slot, dir) in slots.into_iter().zip(&dirs) {
        let inner = match slot.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        match inner {
            Some(Ok(crate_findings)) => findings.extend(crate_findings),
            Some(Err(e)) => return Err(e),
            None => return Err(format!("lint worker dropped {}", dir.display())),
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings.dedup();
    Ok(findings)
}

#[cfg(test)]
mod threads_tests {
    use super::parse_threads;

    #[test]
    fn valid_values_win_and_invalid_values_carry_a_diagnostic() {
        assert_eq!(parse_threads(Some("8"), 4).workers, 8);
        assert_eq!(parse_threads(Some(" 2 "), 4).workers, 2);
        assert!(parse_threads(Some("8"), 4).diagnostic.is_none());
        // Unset: silent fallback, floored at one worker.
        assert_eq!(parse_threads(None, 4).workers, 4);
        assert_eq!(parse_threads(None, 0).workers, 1);
        assert!(parse_threads(None, 4).diagnostic.is_none());
        // Set-but-invalid: fallback plus a printable diagnostic, the same
        // contract as memdos_runner::threads_config().
        for bad in ["0", "-3", "many", "2.5", ""] {
            let hint = parse_threads(Some(bad), 4);
            assert_eq!(hint.workers, 4, "fallback for {bad:?}");
            let diag = hint.diagnostic.unwrap_or_default();
            assert!(diag.contains("MEMDOS_THREADS"), "diagnostic for {bad:?}: {diag}");
        }
    }
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}
