//! Phase-2 workspace call graph and the dataflow rule families.
//!
//! Builds a conservative call graph over every non-test `fn` extracted
//! by [`crate::symbols`], then runs:
//!
//! * **L9/hot-propagate** — the L7 hot-path allocation contract made
//!   transitive: a `// hot-path` function whose call chain reaches a
//!   String allocation *anywhere* (any hop count, any crate) is flagged
//!   at the call site, with the offending path printed.
//! * **L10/determinism-taint** — `HashMap`/`HashSet`, `std::env` reads
//!   and wall-clock types flagged anywhere reachable from the
//!   deterministic verdict path (`Detector::on_observation`, the
//!   paper-facing step surface) or the engine's `(seq, sub)` merge
//!   (`Engine::flush`), with the full reachability chain in the
//!   diagnostic.
//!
//! Call resolution is name-based and tiered: a call site resolves
//! against candidates in the same file first, then the same crate, then
//! crates the file imports. The first non-empty tier wins — this keeps
//! the over-approximation honest without letting ubiquitous method
//! names (`get`, `push`, `new`) connect every crate to every other.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rules::{AllowRange, FileScope, Finding};
use crate::symbols::{FileSymbols, FnDef};

/// One analyzed file, assembled by the driver in `lib.rs`.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative display path.
    pub path: String,
    /// Crate directory name (`"engine"`, `"."` for the root package).
    pub crate_name: String,
    pub scope: FileScope,
    pub symbols: FileSymbols,
    /// Resolved suppression ranges for this file.
    pub allows: Vec<AllowRange>,
}

/// One node: `(file index, fn index within that file)`.
type Node = (usize, usize);

/// The workspace call graph.
pub struct Graph<'a> {
    files: &'a [FileAnalysis],
    /// All non-test fns, in deterministic (file, fn) order.
    nodes: Vec<Node>,
    /// Callees of each node, each edge carrying the call-site line.
    edges: BTreeMap<usize, Vec<(usize, u32)>>,
}

fn def_at(files: &[FileAnalysis], n: Node) -> Option<&FnDef> {
    files.get(n.0).and_then(|f| f.symbols.fns.get(n.1))
}

impl<'a> Graph<'a> {
    /// Builds the graph over every non-test fn in `files`.
    pub fn build(files: &'a [FileAnalysis]) -> Graph<'a> {
        let mut nodes: Vec<Node> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, d) in file.symbols.fns.iter().enumerate() {
                if !d.is_test {
                    nodes.push((fi, di));
                }
            }
        }

        // Name index: fn name -> node ids (deterministic order).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, &n) in nodes.iter().enumerate() {
            if let Some(d) = def_at(files, n) {
                by_name.entry(&d.name).or_default().push(i);
            }
        }

        let node_at = |c: usize| nodes.get(c).copied().unwrap_or((usize::MAX, 0));
        let crate_of = |c: usize| {
            files
                .get(node_at(c).0)
                .map(|f| f.crate_name.as_str())
                .unwrap_or("")
        };

        // Method names that collide with std container/String methods.
        // The receiver's type is unknown to a name-based resolver, so
        // `out.push_str(..)` on a plain `String` would otherwise wire
        // into every workspace method that happens to share the name.
        // Path-qualified and uniquely-named calls still resolve.
        const STD_COLLIDERS: [&str; 14] = [
            "push", "push_str", "pop", "insert", "remove", "extend", "clear",
            "truncate", "reserve", "get", "len", "is_empty", "clone", "contains",
        ];

        let mut edges: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
        for (i, &n) in nodes.iter().enumerate() {
            let (fi, _) = n;
            let Some(caller_file) = files.get(fi) else { continue };
            let Some(caller) = def_at(files, n) else { continue };
            for call in &caller.calls {
                if call.method && STD_COLLIDERS.contains(&call.name.as_str()) {
                    continue;
                }
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                // Explicit crate-qualified path: `memdos_core::...::f(..)`
                // resolves only into that crate, bypassing the tiers.
                let crate_hint = call
                    .path
                    .first()
                    .and_then(|seg| seg.strip_prefix("memdos_"));
                // `Type::assoc(..)` paths must match the impl subject.
                let type_hint = call
                    .path
                    .last()
                    .filter(|seg| seg.chars().next().is_some_and(char::is_uppercase));
                let matches_type = |c: &usize| match type_hint {
                    Some(t) => def_at(files, node_at(*c))
                        .is_some_and(|d| d.impl_ctx.as_deref() == Some(t.as_str())),
                    None => true,
                };
                let tiered: Vec<usize> = if let Some(target) = crate_hint {
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| crate_of(c) == target)
                        .filter(|c| matches_type(c))
                        .collect()
                } else {
                    let same_file: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| node_at(c).0 == fi)
                        .filter(|c| matches_type(c))
                        .collect();
                    if !same_file.is_empty() {
                        same_file
                    } else {
                        let same_crate: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&c| crate_of(c) == caller_file.crate_name)
                            .filter(|c| matches_type(c))
                            .collect();
                        if !same_crate.is_empty() {
                            same_crate
                        } else {
                            cands
                                .iter()
                                .copied()
                                .filter(|&c| {
                                    crate_of(c) != caller_file.crate_name
                                        && caller_file.symbols.imports_name(&format!(
                                            "memdos_{}",
                                            crate_of(c)
                                        ))
                                })
                                .filter(|c| matches_type(c))
                                .collect()
                        }
                    }
                };
                for c in tiered {
                    let out = edges.entry(i).or_default();
                    if c != i && !out.iter().any(|&(e, _)| e == c) {
                        out.push((c, call.line));
                    }
                }
            }
        }
        Graph { files, nodes, edges }
    }

    /// Number of nodes (non-test fns).
    pub fn fn_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of resolved call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    fn node(&self, id: usize) -> Node {
        self.nodes.get(id).copied().unwrap_or((usize::MAX, 0))
    }

    fn node_def(&self, id: usize) -> Option<&FnDef> {
        def_at(self.files, self.node(id))
    }

    fn node_file(&self, id: usize) -> Option<&FileAnalysis> {
        self.files.get(self.node(id).0)
    }

    fn qual_name(&self, id: usize) -> String {
        self.node_def(id).map(FnDef::qual_name).unwrap_or_default()
    }

    /// BFS from `root`, returning the parent edge (`parent`, call line)
    /// for every reached node; the root maps to `None`.
    fn bfs(&self, root: usize) -> BTreeMap<usize, Option<(usize, u32)>> {
        let mut parents: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
        parents.insert(root, None);
        let mut queue = VecDeque::from([root]);
        while let Some(n) = queue.pop_front() {
            for &(m, line) in self.edges.get(&n).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = parents.entry(m) {
                    e.insert(Some((n, line)));
                    queue.push_back(m);
                }
            }
        }
        parents
    }

    /// The chain of qualified fn names from the BFS root to `id`.
    fn chain(&self, parents: &BTreeMap<usize, Option<(usize, u32)>>, id: usize) -> Vec<String> {
        let mut names = vec![self.qual_name(id)];
        let mut cur = id;
        while let Some(Some((p, _))) = parents.get(&cur) {
            names.push(self.qual_name(*p));
            cur = *p;
        }
        names.reverse();
        names
    }

    /// First hop of the path root -> … -> `id`: the call line inside the
    /// root function. `None` for the root itself.
    fn first_hop_line(
        &self,
        parents: &BTreeMap<usize, Option<(usize, u32)>>,
        id: usize,
    ) -> Option<u32> {
        let mut cur = id;
        let mut hop = None;
        while let Some(Some((p, line))) = parents.get(&cur) {
            hop = Some(*line);
            cur = *p;
        }
        hop
    }
}

/// Marks the allow covering `(category, line)` in `file` as used and
/// returns true when one exists. `used` collects `(file index, marker
/// index)` pairs for the unused-allow report.
fn consume_allow(
    file_idx: usize,
    file: &FileAnalysis,
    category: &str,
    line: u32,
    used: &mut BTreeSet<(usize, usize)>,
) -> bool {
    let mut hit = false;
    for r in &file.allows {
        if r.category == category && (r.lo..=r.hi).contains(&(line as usize)) {
            used.insert((file_idx, r.marker));
            hit = true;
        }
    }
    hit
}

/// Runs L9/hot-propagate and L10/determinism-taint over the graph.
/// `used` collects the `(file, marker)` suppressions the graph rules
/// consumed, for the unused-allow report.
pub fn graph_findings(
    graph: &Graph<'_>,
    used: &mut BTreeSet<(usize, usize)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // ---- L9/hot-propagate ----
    for root in 0..graph.fn_count() {
        let (Some(rd), Some(rf)) = (graph.node_def(root), graph.node_file(root)) else {
            continue;
        };
        if !rd.hot || !rf.scope.hot_path_checked {
            continue;
        }
        let parents = graph.bfs(root);
        // BTreeMap iteration is by node id, so the report order is
        // deterministic at any worker count.
        let mut reported: BTreeSet<u32> = BTreeSet::new();
        for &id in parents.keys() {
            if id == root {
                continue; // the root's own allocations are L7's job
            }
            let Some(d) = graph.node_def(id) else { continue };
            // A justification at the allocation site itself ("this is
            // per-session control-plane work, not per-sample") clears
            // every chain that ends there; the first *unjustified*
            // allocation is the one reported.
            let (tfi, _) = graph.node(id);
            let Some(tf) = graph.node_file(id) else { continue };
            let mut alloc: Option<(u32, &str)> = None;
            for &(line, ref pat) in &d.allocs {
                if consume_allow(tfi, tf, "hot-propagate", line, used) {
                    continue;
                }
                alloc = Some((line, pat.as_str()));
                break;
            }
            let Some((alloc_line, pat)) = alloc else { continue };
            let Some(call_line) = graph.first_hop_line(&parents, id) else {
                continue;
            };
            let (rfi, _) = graph.node(root);
            if consume_allow(rfi, rf, "hot-propagate", call_line, used) {
                continue;
            }
            if !reported.insert(call_line) {
                continue; // one finding per call site
            }
            let chain = graph.chain(&parents, id).join(" -> ");
            let target_path = graph.node_file(id).map(|f| f.path.as_str()).unwrap_or("?");
            findings.push(Finding {
                file: rf.path.clone(),
                line: call_line as usize,
                rule: "L9/hot-propagate",
                message: format!(
                    "hot-path function `{}` reaches a String allocation through \
                     {chain} ({target_path}:{alloc_line}: {pat}); hot-path functions \
                     promise zero allocations per sample — lift the allocation out \
                     of the chain or justify with lint:allow(hot-propagate)",
                    rd.qual_name(),
                ),
            });
        }
    }

    // ---- L10/determinism-taint ----
    // Roots: every `Detector::on_observation` impl (the paper-facing
    // step surface) and the engine's `(seq, sub)` merge.
    let mut roots: Vec<usize> = Vec::new();
    for id in 0..graph.fn_count() {
        let (Some(d), Some(f)) = (graph.node_def(id), graph.node_file(id)) else {
            continue;
        };
        let step_impl = d.name == "on_observation" && d.impl_ctx.is_some();
        let merge = d.name == "flush"
            && d.impl_ctx.as_deref() == Some("Engine")
            && f.crate_name == "engine";
        if step_impl || merge {
            roots.push(id);
        }
    }
    let mut seen_taints: BTreeSet<(usize, u32)> = BTreeSet::new();
    for &root in &roots {
        let parents = graph.bfs(root);
        for &id in parents.keys() {
            let Some(d) = graph.node_def(id) else { continue };
            if d.taints.is_empty() {
                continue;
            }
            let Some(tf) = graph.node_file(id) else { continue };
            let (tfi, _) = graph.node(id);
            for &(line, kind, ref text) in &d.taints {
                if !seen_taints.insert((id, line)) {
                    continue; // one finding per taint site across all roots
                }
                if consume_allow(tfi, tf, "determinism-taint", line, used) {
                    continue;
                }
                let chain = graph.chain(&parents, id).join(" -> ");
                findings.push(Finding {
                    file: tf.path.clone(),
                    line: line as usize,
                    rule: "L10/determinism-taint",
                    message: format!(
                        "`{text}` — {} — is reachable from the deterministic verdict \
                         path: {chain}; the byte-identical replay guarantee forbids \
                         it — use ordered collections / tick counts, or justify with \
                         lint:allow(determinism-taint)",
                        kind.describe(),
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::FileScope;
    use crate::symbols::extract;

    fn analysis(path: &str, crate_name: &str, src: &str, scope: FileScope) -> FileAnalysis {
        FileAnalysis {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            scope,
            symbols: extract(src, &tokenize(src)),
            allows: Vec::new(),
        }
    }

    const HOT: FileScope = FileScope {
        deterministic: false,
        harness: false,
        seed_authority: false,
        detector_authority: false,
        hot_path_checked: true,
        shared_state_sanctioned: false,
    };
    const PLAIN: FileScope = FileScope { hot_path_checked: false, ..HOT };

    #[test]
    fn three_hop_hot_chain_is_flagged_at_the_call_site() {
        let src = "\
// hot-path
fn ingest(x: u32) -> u32 {
    mid(x)
}
fn mid(x: u32) -> u32 {
    leaf(x)
}
fn leaf(x: u32) -> u32 {
    let s = x.to_string();
    s.len() as u32
}
";
        let files = vec![analysis("e.rs", "engine", src, HOT)];
        let graph = Graph::build(&files);
        assert_eq!(graph.fn_count(), 3);
        assert!(graph.edge_count() >= 2);
        let mut used = BTreeSet::new();
        let findings = graph_findings(&graph, &mut used);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "L9/hot-propagate");
        assert_eq!(f.line, 3, "flagged at the call site in the hot fn");
        assert!(f.message.contains("ingest -> mid -> leaf"), "{}", f.message);
        assert!(f.message.contains(".to_string()"), "{}", f.message);
    }

    #[test]
    fn cross_file_resolution_follows_crate_tiers() {
        let hot = "\
use memdos_metrics::render;
// hot-path
fn ingest(x: u32) {
    render(x);
}
";
        let helper = "\
pub fn render(x: u32) -> String {
    format!(\"{x}\")
}
";
        let files = vec![
            analysis("engine/src/a.rs", "engine", hot, HOT),
            analysis("metrics/src/b.rs", "metrics", helper, HOT),
        ];
        let graph = Graph::build(&files);
        let mut used = BTreeSet::new();
        let findings = graph_findings(&graph, &mut used);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ingest -> render"));
    }

    #[test]
    fn unimported_crates_do_not_resolve() {
        let hot = "\
// hot-path
fn ingest(x: u32) {
    render(x);
}
";
        let helper = "pub fn render(x: u32) -> String { format!(\"{x}\") }\n";
        let files = vec![
            analysis("engine/src/a.rs", "engine", hot, HOT),
            analysis("metrics/src/b.rs", "metrics", helper, HOT),
        ];
        let graph = Graph::build(&files);
        let mut used = BTreeSet::new();
        let findings = graph_findings(&graph, &mut used);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn taint_reachable_from_on_observation_prints_the_chain() {
        let src = "\
impl Detector for SdsP {
    fn on_observation(&mut self, x: u32) {
        helper(x);
    }
}
fn helper(x: u32) {
    deep(x);
}
fn deep(_x: u32) {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}
";
        let files = vec![analysis("core/src/d.rs", "core", src, PLAIN)];
        let graph = Graph::build(&files);
        let mut used = BTreeSet::new();
        let findings = graph_findings(&graph, &mut used);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "L10/determinism-taint");
        assert!(
            f.message.contains("SdsP::on_observation -> helper -> deep"),
            "{}",
            f.message
        );
    }

    #[test]
    fn taint_unreachable_from_roots_is_silent() {
        let src = "\
fn unrelated() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}
";
        let files = vec![analysis("w.rs", "workloads", src, PLAIN)];
        let graph = Graph::build(&files);
        let mut used = BTreeSet::new();
        assert!(graph_findings(&graph, &mut used).is_empty());
    }

    #[test]
    fn allowed_taint_is_suppressed_and_marked_used() {
        let src = "\
impl Detector for SdsP {
    fn on_observation(&mut self, x: u32) {
        helper(x);
    }
}
fn helper(_x: u32) {
    let now = Instant::now();
    let _ = now;
}
";
        let mut file = analysis("core/src/d.rs", "core", src, PLAIN);
        file.allows.push(AllowRange {
            category: "determinism-taint".to_string(),
            lo: 7,
            hi: 7,
            marker: 0,
        });
        let files = vec![file];
        let graph = Graph::build(&files);
        let mut used = BTreeSet::new();
        let findings = graph_findings(&graph, &mut used);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(used.contains(&(0, 0)));
    }

    #[test]
    fn type_hints_restrict_assoc_fn_candidates() {
        let src = "\
// hot-path
fn ingest() {
    Other::build();
}
impl Mine {
    fn build() -> String { format!(\"no\") }
}
";
        let files = vec![analysis("e.rs", "engine", src, HOT)];
        let graph = Graph::build(&files);
        let mut used = BTreeSet::new();
        // `Other::build` must not resolve to `Mine::build`.
        assert!(graph_findings(&graph, &mut used).is_empty());
    }
}
