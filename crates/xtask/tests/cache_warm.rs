//! Warm-cache contract: an unchanged workspace must replay entirely
//! from the content-hash cache — zero files rule-scanned, graph reused
//! — and editing one file must invalidate exactly that file.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::lint_workspace_report;

const CLEAN_LIB: &str = "\
#![forbid(unsafe_code)]

//! Demo crate for the cache test.

pub fn double(x: u64) -> u64 {
    helper(x) * 2
}

fn helper(x: u64) -> u64 {
    x + 1
}
";

const CLEAN_UTIL: &str = "\
//! Second file so the cache holds more than one entry.

pub fn triple(x: u64) -> u64 {
    x * 3
}
";

const MANIFEST: &str = "\
[package]
name = \"demo\"
version = \"0.1.0\"
edition = \"2021\"
";

/// Builds a minimal fake workspace under the target tmp dir. The name
/// is keyed on the process id so parallel test binaries never collide.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("cache_warm_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/demo/src");
    fs::create_dir_all(&src).expect("create scratch workspace");
    fs::write(root.join("crates/demo/Cargo.toml"), MANIFEST).expect("write manifest");
    fs::write(src.join("lib.rs"), CLEAN_LIB).expect("write lib.rs");
    fs::write(src.join("util.rs"), CLEAN_UTIL).expect("write util.rs");
    root
}

#[test]
fn warm_run_scans_nothing_and_reuses_the_graph() {
    let root = scratch_workspace("warm");
    let cache = root.join("lint-cache.json");

    let cold = lint_workspace_report(&root, 2, Some(&cache)).expect("cold run");
    assert!(cold.findings.is_empty(), "{:?}", cold.findings);
    assert_eq!(cold.stats.scanned, cold.stats.files, "{:?}", cold.stats.render());
    assert!(!cold.stats.graph_cached, "{}", cold.stats.render());
    assert!(cache.is_file(), "cache file not written");

    let warm = lint_workspace_report(&root, 2, Some(&cache)).expect("warm run");
    // The whole point: not a single file goes through rule scanning.
    assert_eq!(warm.stats.scanned, 0, "{}", warm.stats.render());
    assert_eq!(warm.stats.cached, cold.stats.files, "{}", warm.stats.render());
    assert!(warm.stats.graph_cached, "{}", warm.stats.render());
    assert_eq!(warm.findings, cold.findings);
    assert_eq!(
        (warm.stats.fns, warm.stats.edges),
        (cold.stats.fns, cold.stats.edges),
        "cached graph stats drifted"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn editing_one_file_rescans_exactly_that_file() {
    let root = scratch_workspace("edit");
    let cache = root.join("lint-cache.json");

    let cold = lint_workspace_report(&root, 2, Some(&cache)).expect("cold run");
    assert!(cold.findings.is_empty(), "{:?}", cold.findings);

    // Introduce a fresh violation in one of the two source files.
    let util = root.join("crates/demo/src/util.rs");
    let dirty = format!("{CLEAN_UTIL}\npub fn boom(x: Option<u64>) -> u64 {{\n    x.unwrap()\n}}\n");
    fs::write(&util, dirty).expect("rewrite util.rs");

    let edited = lint_workspace_report(&root, 2, Some(&cache)).expect("edited run");
    assert_eq!(edited.stats.scanned, 1, "{}", edited.stats.render());
    assert_eq!(edited.stats.cached, cold.stats.files - 1, "{}", edited.stats.render());
    // The tree digest changed with the file, so the graph rebuilds.
    assert!(!edited.stats.graph_cached, "{}", edited.stats.render());
    let rules: Vec<&str> = edited.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["L1/panic"], "{:?}", edited.findings);
    let Some(f) = edited.findings.first() else {
        return;
    };
    assert!(f.file.ends_with("util.rs"), "{f:?}");

    let _ = fs::remove_dir_all(&root);
}
