//! Fixture: what the detector-authority rule must NOT flag outside
//! `memdos-core` — the `Detector` trait path, prose and string mentions
//! of on_sample, a local function of the same name, a justified allow,
//! and test code.

/// Steps the detector through the one supported surface. A comment
/// mentioning det.on_sample(x) is not a call.
pub fn drive(det: &mut dyn Detector, obs: Observation) -> bool {
    let step = det.on_observation(obs);
    let label = "legacy name: .on_sample()";
    step.became_active && !label.is_empty()
}

/// A free function named on_sample is not a method call on a detector.
pub fn on_sample(x: f64) -> f64 {
    x * 2.0
}

pub fn justified(det: &mut SdsB, s: f64) -> bool {
    // lint:allow(step) -- documented escape hatch exercised by the fixture
    det.on_sample(s)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_step_directly() {
        let mut det = fresh();
        assert!(!det.on_sample(1.0));
    }
}
