//! Fixture: every L1 panic pattern in non-test library code must fire.

pub fn all_panic_patterns(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("fixture");
    if a + b > 100 {
        panic!("too big");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        n => n,
    }
}
