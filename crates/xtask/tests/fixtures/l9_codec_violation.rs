//! Fixture: a transitive allocation in the codec's decode chain that
//! the local L7 scan cannot see — the hot entry only calls helpers, and
//! the owned diagnostic String is built two hops away, so only the
//! call-graph rule (L9/hot-propagate) connects the chain.

/// The marked decode entry point: locally allocation-free.
// hot-path
pub fn decode_frame(buf: &[u8]) -> usize {
    validate(buf)
}

/// Pass-through hop: also clean on its own lines.
fn validate(buf: &[u8]) -> usize {
    reason_of(buf).len()
}

/// The hidden allocation, two hops from the hot entry.
fn reason_of(buf: &[u8]) -> String {
    format!("bad frame of {} bytes", buf.len())
}
