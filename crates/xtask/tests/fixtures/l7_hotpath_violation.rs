//! Fixture: String allocation inside `// hot-path` functions — every
//! allocating idiom in a marked function must fire L7/hot-alloc.

/// Renders a sample line the slow, allocating way.
// hot-path
pub fn render_sample(out: &mut String, seq: u64) {
    out.push_str(&format!("{{\"seq\":{seq}}}"));
}

// hot-path
#[inline]
pub fn label_of(tenant: &str) -> String {
    tenant.to_string()
}

// hot-path
pub fn owned_reason(reason: &str) -> String {
    let mut s = String::with_capacity(reason.len());
    s.push_str(&reason.to_owned());
    s
}
