//! Fixture: what L9/hot-propagate must NOT flag in the codec — a
//! checksum fold that never allocates, a justified define-frame hop
//! that may, and an allocating helper no hot function reaches.

/// The marked encode entry point.
// hot-path
pub fn encode_sample(out: &mut Vec<u8>, tenant: u32) {
    push_header(out, tenant);
    // lint:allow(hot-propagate) -- the define hop runs once per tenant, not per sample
    define(out, tenant);
}

/// Fletcher-style checksum fold plus fixed-width writes; alloc-free.
fn push_header(out: &mut Vec<u8>, tenant: u32) {
    let mut sum = 0u32;
    for &b in tenant.to_le_bytes().iter() {
        sum = (sum + u32::from(b)) % 255;
    }
    out.push(sum as u8);
    out.extend_from_slice(&tenant.to_le_bytes());
}

/// Allocates, but the only chain into it is justified at the call site.
fn define(out: &mut Vec<u8>, tenant: u32) {
    out.extend_from_slice(tenant.to_string().as_bytes());
}

/// Allocates, but no hot function can reach it.
pub fn describe(tenant: u32) -> String {
    format!("tenant {tenant}")
}
