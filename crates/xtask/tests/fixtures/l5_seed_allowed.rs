//! Fixture: seeds that flow through the stats crate's derivation API do
//! not fire, and a justified allow suppresses the rule.

pub fn per_run_seed(base: u64, run: u64) -> u64 {
    memdos_stats::rng::derive_seed(base, run)
}

pub fn forked(rng: &mut memdos_stats::rng::Rng, stream: u64) -> memdos_stats::rng::Rng {
    rng.fork(stream)
}

// lint:allow(seed) -- fixture exercising the documented escape hatch
pub const MIRROR_OF_STATS_CONSTANT: u64 = 0x9E37_79B9_7F4A_7C15;
