//! Fixture: what L11/verdict-match must NOT flag — exhaustive matches,
//! named bindings, guarded wildcards, wildcards over foreign enums, and
//! verdict names appearing only in arm *bodies*.

pub enum Verdict {
    Normal,
    Alarm,
    Quarantine,
}

pub fn label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Normal => "normal",
        Verdict::Alarm => "alarm",
        Verdict::Quarantine => "quarantine",
    }
}

pub fn named_binding(v: &Verdict) -> bool {
    match v {
        Verdict::Alarm => true,
        other => matches!(other, Verdict::Quarantine),
    }
}

pub fn guarded(v: &Verdict, strict: bool) -> bool {
    match v {
        Verdict::Alarm => true,
        _ if strict => false,
        Verdict::Normal | Verdict::Quarantine => true,
    }
}

pub enum RecordError {
    Syntax,
}

/// The scrutinee is a plain byte — `RecordError` only appears in the
/// arm body, which must not trigger the rule.
pub fn classify(b: u8) -> Result<u8, RecordError> {
    match b {
        b'{' => Ok(b),
        _ => Err(RecordError::Syntax),
    }
}
