//! Fixture: what the hot-path allocation rule must NOT flag — unmarked
//! functions (free to allocate), marked functions that write through
//! reusable buffers, code past the marked body, justified allows, and
//! test code.

/// Appends digits without allocating; the marker covers only this body.
// hot-path
pub fn write_u64(out: &mut String, mut n: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    loop {
        at -= 1;
        if let Some(d) = digits.get_mut(at) {
            *d = b'0' + (n % 10) as u8;
        }
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(digits.get(at..).unwrap_or(&[])).unwrap_or(""));
}

/// Unmarked: the cold error path may build Strings freely.
pub fn describe(seq: u64) -> String {
    format!("cold diagnostic for seq {seq}")
}

// hot-path
pub fn justified(line: &str) -> String {
    // lint:allow(hot-alloc) -- the returned log line itself must own its bytes
    line.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate() {
        // hot-path
        fn helper(x: u64) -> String {
            x.to_string()
        }
        assert_eq!(helper(7), "7");
    }
}
