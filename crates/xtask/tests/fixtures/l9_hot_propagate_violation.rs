//! Fixture: a transitive allocation L7 cannot see. The hot function
//! allocates nothing itself — the String is built two calls away, so
//! only the call-graph rule (L9/hot-propagate) catches it.

/// The marked entry point: locally allocation-free.
// hot-path
pub fn ingest(out: &mut Vec<u8>, seq: u64) {
    out.extend_from_slice(mid(seq).as_bytes());
}

/// Pass-through hop: also allocation-free on its own lines.
fn mid(seq: u64) -> String {
    leaf(seq)
}

/// The hidden allocation, two hops from the hot entry.
fn leaf(seq: u64) -> String {
    seq.to_string()
}
