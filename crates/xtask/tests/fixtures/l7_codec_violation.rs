//! Fixture: allocation inside `// hot-path` frame-codec functions — the
//! binary wire format's per-sample encode/decode must not build owned
//! strings, so every allocating idiom in a marked codec function must
//! fire L7/hot-alloc.

/// Decodes a tenant-name payload the allocating way.
// hot-path
pub fn decode_name(payload: &[u8]) -> String {
    let mut name = String::new();
    for &b in payload {
        name.push(b as char);
    }
    name
}

/// Renders a resync reason per skipped span.
// hot-path
pub fn skip_reason(bytes: usize) -> String {
    format!("skipped {bytes} bytes")
}
