//! Fixture: wall-clock time, unordered maps, and ambient randomness all
//! fire in a deterministic-scoped file.

use std::collections::HashMap;
use std::time::Instant;

pub fn nondeterministic() -> usize {
    let started = Instant::now();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    counts.insert(0, 1);
    let noise = rand::random::<u32>() as usize;
    counts.len() + noise + started.elapsed().as_nanos() as usize
}
