//! Fixture: a lib.rs carrying the attribute passes L4/unsafe.

#![forbid(unsafe_code)]

pub fn noop() {}
