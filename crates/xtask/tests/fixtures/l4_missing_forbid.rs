//! Fixture: a lib.rs without `#![forbid(unsafe_code)]` fires L4/unsafe.

pub fn noop() {}
