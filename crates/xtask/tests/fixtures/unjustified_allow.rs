//! Fixture: an allow marker without `-- reason` is itself a finding and
//! suppresses nothing.

pub fn bare_marker(x: Option<u32>) -> u32 {
    // lint:allow(panic)
    x.unwrap()
}
