//! Fixture: what L8/shared-state must NOT flag — the workspace's own
//! `Cell` figure type, the `MemOp::Atomic` enum variant, lazy-init
//! primitives, plain statics, justified allows, and test code.

use std::sync::OnceLock;

/// The bench crate's own figure cell — not `std::cell::Cell`.
pub struct Cell {
    pub runs: u32,
}

pub enum MemOp {
    Read,
    Write,
    Atomic,
}

pub fn classify(op: &MemOp, c: &Cell) -> u32 {
    match op {
        MemOp::Atomic => c.runs,
        _ => 0,
    }
}

static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
static LIMIT: u64 = 1024;

/// Owner-checked slab in the engine's style: plain vectors, integer
/// generations and a lend/restore discipline instead of interior
/// mutability. The names echo concurrency idioms ("slots", "free
/// list", "generation") but nothing here is shared state.
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    generation: u32,
}

impl<T> Slab<T> {
    pub fn lend(&mut self, idx: usize) -> Option<T> {
        self.generation = self.generation.wrapping_add(1);
        self.slots.get_mut(idx).and_then(Option::take)
    }

    pub fn restore(&mut self, idx: usize, value: T) {
        if let Some(slot) = self.slots.get_mut(idx) {
            *slot = Some(value);
        } else {
            self.free.push(idx as u32);
        }
    }
}

pub fn justified() {
    // lint:allow(shared-state) -- documented escape hatch exercised by the fixture
    let counter = std::sync::atomic::AtomicU64::new(0);
    let _ = counter;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_lock() {
        let m = std::sync::Mutex::new(1u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
