//! Fixture: what L8/shared-state must NOT flag — the workspace's own
//! `Cell` figure type, the `MemOp::Atomic` enum variant, lazy-init
//! primitives, plain statics, justified allows, and test code.

use std::sync::OnceLock;

/// The bench crate's own figure cell — not `std::cell::Cell`.
pub struct Cell {
    pub runs: u32,
}

pub enum MemOp {
    Read,
    Write,
    Atomic,
}

pub fn classify(op: &MemOp, c: &Cell) -> u32 {
    match op {
        MemOp::Atomic => c.runs,
        _ => 0,
    }
}

static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
static LIMIT: u64 = 1024;

pub fn justified() {
    // lint:allow(shared-state) -- documented escape hatch exercised by the fixture
    let counter = std::sync::atomic::AtomicU64::new(0);
    let _ = counter;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_lock() {
        let m = std::sync::Mutex::new(1u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
