//! Fixture: shared-state primitives outside the sanctioned concurrency
//! layer — every interior-mutability idiom must fire L8/shared-state.

use std::cell::Cell;
use std::cell::RefCell;
use std::sync::atomic::AtomicUsize;
use std::sync::{Mutex, RwLock};

pub struct Holder {
    slots: Mutex<Vec<u64>>,
    readers: RwLock<Vec<u64>>,
    count: AtomicUsize,
    scratch: RefCell<Vec<f64>>,
    flag: std::cell::Cell<bool>,
}

static mut GLOBAL_TICKS: u64 = 0;

/// A slab that guards each slot with a lock and hands out atomic
/// generations — the design the engine's owner-checked slab exists to
/// avoid. Every primitive must fire even when buried in a generic
/// container type.
pub struct LockedSlab<T> {
    slots: Vec<Mutex<Option<T>>>,
    free: RwLock<Vec<u32>>,
    generation: AtomicUsize,
}
