//! Fixture: what L10/determinism-taint must NOT flag — taint in code no
//! detector step can reach, and taint behind a justified marker.

pub struct SdsY {
    ewma: f64,
}

impl SdsY {
    pub fn on_observation(&mut self, x: f64) -> bool {
        self.ewma = 0.9 * self.ewma + 0.1 * x;
        stat(self.ewma)
    }
}

/// Deterministic helper on the step path.
fn stat(x: f64) -> bool {
    x > 1.0
}

/// Tainted, but only the (unmarked) reporting side calls it.
pub fn ambient_report() -> String {
    // lint:allow(determinism-taint) -- diagnostics-only; never feeds a verdict
    std::env::var("MEMDOS_REPORT").unwrap_or_default()
}
