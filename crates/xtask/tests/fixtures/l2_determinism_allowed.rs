//! Fixture: ordered maps and the workspace's seeded rng are fine in
//! deterministic scope.

use std::collections::BTreeMap;

pub fn deterministic(seed: u64) -> usize {
    let mut rng = memdos_stats::rng::Rng::new(seed);
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    counts.insert(rng.next_u64(), 1);
    counts.len()
}
