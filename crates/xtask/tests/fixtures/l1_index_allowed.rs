//! Fixture: literal indices, range slicing, and justified allows pass.

pub fn safe_shapes(values: &[u32], i: usize) -> u32 {
    let first = values[0];
    let tail = &values[1..];
    let checked = values.get(i).copied().unwrap_or(0);
    // lint:allow(index) -- fixture: i is validated by the caller.
    let trusted = values[i];
    first + tail.len() as u32 + checked + trusted
}
