//! Fixture: raw float equality and NaN-unsafe ordering fire L3.

pub fn float_hazards(a: f64, b: f64) -> bool {
    let same = a == 0.0;
    let diff = a as f64 != b;
    let ord = a.partial_cmp(&b);
    same || diff || ord.is_none()
}
