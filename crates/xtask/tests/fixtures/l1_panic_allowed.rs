//! Fixture: justified allows and `#[cfg(test)]` code suppress L1/panic.

pub fn justified(x: Option<u32>) -> u32 {
    // lint:allow(panic) -- fixture: the invariant is documented here.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        v.expect("tests may panic");
    }
}
