//! Fixture: thread spawning in a non-harness crate — every variant of
//! the spawning idiom must fire L5/thread.

pub fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || jobs.len() as u64);
    let joined = handle.join().unwrap_or(0);
    thread::scope(|s| {
        s.spawn(|| ());
    });
    let b = thread::Builder::new();
    drop(b);
    vec![joined]
}
