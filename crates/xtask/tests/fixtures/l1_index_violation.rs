//! Fixture: unchecked variable indexing fires L1/index.

pub fn pick(values: &[u32], i: usize) -> u32 {
    values[i]
}
