//! Fixture: the allocation-free shape of the binary frame codec —
//! fixed-width little-endian writes through a caller-owned buffer,
//! static resync reasons, and a justified allow where a define frame's
//! name payload must own its bytes.

/// Appends one fixed-width sample frame; no owned strings anywhere.
// hot-path
pub fn write_sample(out: &mut Vec<u8>, tenant: u32, access: f64) {
    out.push(0xA5);
    out.push(0);
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&access.to_bits().to_le_bytes());
}

/// Static reasons cost nothing per skipped span.
// hot-path
pub fn skip_reason(kind: u8) -> &'static str {
    if kind == 0 {
        "bad frame marker"
    } else {
        "frame checksum mismatch"
    }
}

/// A define frame binds a tenant name once per stream, and the binding
/// must own its bytes.
// hot-path
pub fn define_name(payload: &[u8]) -> String {
    // lint:allow(hot-alloc) -- a define frame binds a name once per tenant, not per sample
    String::from(core::str::from_utf8(payload).unwrap_or(""))
}
