//! Fixture: hand-rolled seed derivation outside the stats crate — the
//! golden-ratio constant fires L5/seed under any case or grouping.

pub fn run_seed(base: u64, run: u64) -> u64 {
    base ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

pub fn lowercase_ungrouped(x: u64) -> u64 {
    x.wrapping_add(0x9e3779b97f4a7c15)
}
