//! Fixture: scheme-private detector stepping outside `memdos-core` —
//! every direct `on_sample` method call must fire L6/step.

pub fn drive_boundary(det: &mut SdsB, samples: &[f64]) -> u64 {
    let mut alarms = 0u64;
    for &s in samples {
        if det.on_sample(s) {
            alarms += 1;
        }
    }
    alarms
}

pub fn drive_period(det: &mut SdsP, sample: f64) -> bool {
    det.inner().on_sample(sample)
}
