//! Fixture: `_` wildcard arms in matches over verdict-class enums —
//! adding a variant must break the build, not fall through silently.

pub enum Verdict {
    Normal,
    Alarm,
    Quarantine,
}

pub fn label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Alarm => "alarm",
        _ => "other",
    }
}

pub enum RecordError {
    Syntax,
    MissingTenant,
}

pub fn retryable(e: &RecordError) -> bool {
    match e {
        RecordError::Syntax => false,
        _ => true,
    }
}
