//! Fixture: what the thread rule must NOT flag in a non-harness crate —
//! thread-local storage, prose, a justified allow, and test code.

thread_local! {
    // lint:allow(shared-state) -- per-thread scratch is single-owner; this fixture exercises storage, not sharing
    static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Hands multi-threaded work to the runner crate instead of spawning.
pub fn delegate(items: &[u64]) -> usize {
    items.len()
}

pub fn justified() {
    // lint:allow(thread) -- documented escape hatch exercised by the fixture
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        std::thread::spawn(|| ()).join().unwrap();
    }
}
