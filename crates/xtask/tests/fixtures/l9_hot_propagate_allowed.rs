//! Fixture: what L9/hot-propagate must NOT flag — allocation-free call
//! chains, allocations behind a justified call site, and allocating
//! helpers that no hot function can reach.

// hot-path
pub fn ingest(out: &mut Vec<u8>, seq: u64) {
    write_digits(out, seq);
    // lint:allow(hot-propagate) -- the session-open hop is per-tenant control plane, not per-sample
    open_path(seq);
}

/// Allocation-free rendering: digits straight into the byte buffer.
fn write_digits(out: &mut Vec<u8>, mut n: u64) {
    let start = out.len();
    loop {
        out.push(b'0' + (n % 10) as u8);
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out[start..].reverse();
}

/// Allocates, but every chain into it is justified at the call site.
fn open_path(seq: u64) -> String {
    seq.to_string()
}

/// Allocates, but is never called from a hot function.
pub fn cold_report(seq: u64) -> String {
    format!("report {seq}")
}
