//! Fixture: tolerance-based comparison, total ordering, and integer
//! equality pass L3.

pub fn float_safe(a: f64, b: f64, n: usize, m: usize) -> bool {
    let close = memdos_stats::float::approx_eq(a, b, 1e-9);
    let order = a.total_cmp(&b);
    let ints_equal = n == m;
    // lint:allow(float-eq) -- fixture: exact sentinel comparison.
    let sentinel = a == 0.0;
    close || order.is_lt() || ints_equal || sentinel
}
