//! Fixture: nondeterminism reachable from the detector step surface.
//! The taint lives two calls below `on_observation`, so only the
//! reachability rule (L10/determinism-taint) can connect them.

pub struct SdsX {
    ticks: u64,
}

impl SdsX {
    pub fn on_observation(&mut self, x: f64) -> bool {
        self.ticks += 1;
        helper(x)
    }
}

fn helper(x: f64) -> bool {
    deep(x)
}

fn deep(x: f64) -> bool {
    let mut seen = std::collections::HashMap::new();
    seen.insert(0u64, x);
    seen.len() == 1
}
