//! Drives each rule family against the fixture corpus under
//! `tests/fixtures/`, proving every family fires on its violation
//! fixture and stays silent on the matching allowed fixture.

use std::collections::BTreeSet;

use xtask::callgraph::{graph_findings, FileAnalysis, Graph};
use xtask::manifest::check_manifest;
use xtask::rules::{check_file, check_forbid_unsafe, check_source, FileScope, Finding};

const LIB_SCOPE: FileScope = FileScope {
    deterministic: false,
    harness: false,
    seed_authority: false,
    detector_authority: false,
    hot_path_checked: false,
    shared_state_sanctioned: false,
};
const SANCTIONED_SCOPE: FileScope = FileScope { shared_state_sanctioned: true, ..LIB_SCOPE };
const DET_SCOPE: FileScope = FileScope { deterministic: true, ..LIB_SCOPE };
const HOT_SCOPE: FileScope = FileScope { hot_path_checked: true, ..LIB_SCOPE };
const HARNESS_SCOPE: FileScope = FileScope { harness: true, ..LIB_SCOPE };
const STATS_SCOPE: FileScope =
    FileScope { deterministic: true, seed_authority: true, ..LIB_SCOPE };
const CORE_SCOPE: FileScope =
    FileScope { deterministic: true, detector_authority: true, ..LIB_SCOPE };

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// Runs the full two-phase pipeline (extract, local scan for allow
/// ranges, call graph, graph rules) over in-memory fixture files and
/// returns the phase-2 findings.
fn analyze(files: &[(&str, &str, &str, FileScope)]) -> Vec<Finding> {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|&(path, crate_name, src, scope)| {
            let stream = xtask::lexer::tokenize(src);
            let symbols = xtask::symbols::extract(src, &stream);
            let report = check_file(path, src, scope, &symbols);
            FileAnalysis {
                path: path.to_string(),
                crate_name: crate_name.to_string(),
                scope,
                symbols,
                allows: report.allows,
            }
        })
        .collect();
    let graph = Graph::build(&analyses);
    let mut used = BTreeSet::new();
    graph_findings(&graph, &mut used)
}

#[test]
fn l1_panic_fires_on_every_pattern() {
    let src = include_str!("fixtures/l1_panic_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!
    assert_eq!(count(&findings, "L1/panic"), 6, "{findings:?}");
}

#[test]
fn l1_panic_respects_allows_and_test_code() {
    let src = include_str!("fixtures/l1_panic_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l1_index_fires_on_variable_subscript() {
    let src = include_str!("fixtures/l1_index_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert_eq!(rules_of(&findings), vec!["L1/index"]);
}

#[test]
fn l1_index_skips_literals_ranges_and_allows() {
    let src = include_str!("fixtures/l1_index_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l2_determinism_fires_on_time_collections_and_rand() {
    let src = include_str!("fixtures/l2_determinism_violation.rs");
    let findings = check_source("fixture.rs", src, DET_SCOPE);
    assert!(count(&findings, "L2/time") >= 1, "{findings:?}");
    assert!(count(&findings, "L2/collections") >= 1, "{findings:?}");
    assert!(count(&findings, "L2/rand") >= 1, "{findings:?}");
}

#[test]
fn l2_collections_only_guard_deterministic_crates() {
    let src = include_str!("fixtures/l2_determinism_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert_eq!(count(&findings, "L2/collections"), 0, "{findings:?}");
    // Wall-clock time stays banned everywhere.
    assert!(count(&findings, "L2/time") >= 1, "{findings:?}");
}

#[test]
fn l2_ordered_maps_and_seeded_rng_pass() {
    let src = include_str!("fixtures/l2_determinism_allowed.rs");
    let findings = check_source("fixture.rs", src, DET_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l3_float_fires_on_eq_and_partial_cmp() {
    let src = include_str!("fixtures/l3_float_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert_eq!(count(&findings, "L3/float-eq"), 2, "{findings:?}");
    assert_eq!(count(&findings, "L3/partial-cmp"), 1, "{findings:?}");
}

#[test]
fn l3_safe_comparisons_pass() {
    let src = include_str!("fixtures/l3_float_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l5_thread_fires_on_every_spawning_idiom() {
    let src = include_str!("fixtures/l5_thread_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // std::thread::spawn, thread::scope, thread::Builder
    assert_eq!(count(&findings, "L5/thread"), 3, "{findings:?}");
}

#[test]
fn l5_thread_spares_storage_allows_tests_and_harness_crates() {
    let src = include_str!("fixtures/l5_thread_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
    // The violation fixture is legal inside a harness crate.
    let violation = include_str!("fixtures/l5_thread_violation.rs");
    let findings = check_source("fixture.rs", violation, HARNESS_SCOPE);
    assert_eq!(count(&findings, "L5/thread"), 0, "{findings:?}");
}

#[test]
fn l5_seed_fires_on_hand_rolled_derivation() {
    let src = include_str!("fixtures/l5_seed_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // grouped-uppercase and ungrouped-lowercase spellings
    assert_eq!(count(&findings, "L5/seed"), 2, "{findings:?}");
}

#[test]
fn l5_seed_spares_rng_api_allows_and_the_stats_crate() {
    let src = include_str!("fixtures/l5_seed_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
    // The stats crate itself owns the constant.
    let violation = include_str!("fixtures/l5_seed_violation.rs");
    let findings = check_source("fixture.rs", violation, STATS_SCOPE);
    assert_eq!(count(&findings, "L5/seed"), 0, "{findings:?}");
}

#[test]
fn l6_step_fires_on_direct_on_sample_calls() {
    let src = include_str!("fixtures/l6_detector_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // the plain method call and the chained one
    assert_eq!(count(&findings, "L6/step"), 2, "{findings:?}");
}

#[test]
fn l6_step_spares_trait_path_allows_tests_and_the_core_crate() {
    let src = include_str!("fixtures/l6_detector_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
    // The violation fixture is legal inside memdos-core itself.
    let violation = include_str!("fixtures/l6_detector_violation.rs");
    let findings = check_source("fixture.rs", violation, CORE_SCOPE);
    assert_eq!(count(&findings, "L6/step"), 0, "{findings:?}");
}

#[test]
fn l7_hot_alloc_fires_inside_marked_functions() {
    let src = include_str!("fixtures/l7_hotpath_violation.rs");
    let findings = check_source("fixture.rs", src, HOT_SCOPE);
    // format!, .to_string(), String::with_capacity(), .to_owned()
    assert_eq!(count(&findings, "L7/hot-alloc"), 4, "{findings:?}");
    // The family only guards the crates with the allocation-free contract.
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l7_hot_alloc_spares_buffers_cold_paths_allows_and_tests() {
    let src = include_str!("fixtures/l7_hotpath_allowed.rs");
    let findings = check_source("fixture.rs", src, HOT_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l7_hot_alloc_fires_in_the_binary_codec_shape() {
    let src = include_str!("fixtures/l7_codec_violation.rs");
    let findings = check_source("fixture.rs", src, HOT_SCOPE);
    // String::new() in the name decode, format! in the reason render
    assert_eq!(count(&findings, "L7/hot-alloc"), 2, "{findings:?}");
    // Outside the hot-path-checked crates the same code is legal.
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l7_codec_fixed_width_writes_and_justified_define_pass() {
    let src = include_str!("fixtures/l7_codec_allowed.rs");
    let findings = check_source("fixture.rs", src, HOT_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l4_missing_forbid_unsafe_fires() {
    let src = include_str!("fixtures/l4_missing_forbid.rs");
    let findings = check_forbid_unsafe("lib.rs", src);
    assert_eq!(rules_of(&findings), vec!["L4/unsafe"]);
}

#[test]
fn l4_forbid_unsafe_present_passes() {
    let src = include_str!("fixtures/l4_forbid_ok.rs");
    assert!(check_forbid_unsafe("lib.rs", src).is_empty());
}

#[test]
fn l4_manifest_wildcard_and_pinned_deps_fire() {
    let src = include_str!("fixtures/manifest_violation.toml");
    let findings = check_manifest("Cargo.toml", src, false);
    // wildcard "*", pinned "1.2.3", and the inline-table dev-dependency
    assert_eq!(count(&findings, "L4/cargo"), 3, "{findings:?}");
}

#[test]
fn l4_workspace_inherited_manifest_passes() {
    let src = include_str!("fixtures/manifest_ok.toml");
    let findings = check_manifest("Cargo.toml", src, false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l8_shared_state_fires_on_every_primitive() {
    let src = include_str!("fixtures/l8_shared_state_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // four `use` lines, five struct fields (one per line), static mut,
    // and the three lock/atomic fields of the slab counter-example
    assert_eq!(count(&findings, "L8/shared-state"), 13, "{findings:?}");
    // The sanctioned concurrency layer may hold all of them.
    let findings = check_source("fixture.rs", src, SANCTIONED_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l8_shared_state_spares_lookalikes_allows_and_tests() {
    let src = include_str!("fixtures/l8_shared_state_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l9_catches_the_transitive_allocation_l7_misses() {
    let src = include_str!("fixtures/l9_hot_propagate_violation.rs");
    // Phase 1 alone is blind: the hot function allocates nothing on
    // its own lines, so the local L7 scan stays silent.
    let local = check_source("engine/src/f.rs", src, HOT_SCOPE);
    assert_eq!(count(&local, "L7/hot-alloc"), 0, "{local:?}");
    // Phase 2 walks the call graph and connects the chain.
    let findings = analyze(&[("engine/src/f.rs", "engine", src, HOT_SCOPE)]);
    assert_eq!(count(&findings, "L9/hot-propagate"), 1, "{findings:?}");
    let Some(f) = findings.iter().find(|f| f.rule == "L9/hot-propagate") else {
        return;
    };
    assert!(f.message.contains("ingest -> mid -> leaf"), "{}", f.message);
}

#[test]
fn l9_spares_alloc_free_chains_justified_call_sites_and_cold_code() {
    let src = include_str!("fixtures/l9_hot_propagate_allowed.rs");
    let findings = analyze(&[("engine/src/f.rs", "engine", src, HOT_SCOPE)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l9_catches_transitive_allocation_in_the_decode_chain() {
    let src = include_str!("fixtures/l9_codec_violation.rs");
    // The hot decode entry allocates nothing on its own lines.
    let local = check_source("engine/src/codec.rs", src, HOT_SCOPE);
    assert_eq!(count(&local, "L7/hot-alloc"), 0, "{local:?}");
    let findings = analyze(&[("engine/src/codec.rs", "engine", src, HOT_SCOPE)]);
    assert_eq!(count(&findings, "L9/hot-propagate"), 1, "{findings:?}");
    let Some(f) = findings.iter().find(|f| f.rule == "L9/hot-propagate") else {
        return;
    };
    assert!(f.message.contains("decode_frame -> validate -> reason_of"), "{}", f.message);
}

#[test]
fn l9_spares_checksum_folds_and_justified_define_hops() {
    let src = include_str!("fixtures/l9_codec_allowed.rs");
    let findings = analyze(&[("engine/src/codec.rs", "engine", src, HOT_SCOPE)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l10_prints_the_full_reachability_chain() {
    let src = include_str!("fixtures/l10_taint_violation.rs");
    let findings = analyze(&[("core/src/sdsx.rs", "core", src, LIB_SCOPE)]);
    assert_eq!(count(&findings, "L10/determinism-taint"), 1, "{findings:?}");
    let Some(f) = findings.iter().find(|f| f.rule == "L10/determinism-taint") else {
        return;
    };
    assert!(
        f.message.contains("SdsX::on_observation -> helper -> deep"),
        "{}",
        f.message
    );
}

#[test]
fn l10_spares_unreachable_taint_and_justified_sites() {
    let src = include_str!("fixtures/l10_taint_allowed.rs");
    let findings = analyze(&[("core/src/sdsy.rs", "core", src, LIB_SCOPE)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l11_wildcard_fires_on_verdict_class_enums() {
    let src = include_str!("fixtures/l11_wildcard_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // one `_` arm over Verdict, one over RecordError
    assert_eq!(count(&findings, "L11/verdict-match"), 2, "{findings:?}");
}

#[test]
fn l11_wildcard_spares_exhaustive_guarded_and_foreign_matches() {
    let src = include_str!("fixtures/l11_wildcard_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unjustified_allow_is_reported_and_suppresses_nothing() {
    let src = include_str!("fixtures/unjustified_allow.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    assert_eq!(rules, vec!["L1/panic", "allow"], "{findings:?}");
}
