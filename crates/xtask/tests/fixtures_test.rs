//! Drives each rule family against the fixture corpus under
//! `tests/fixtures/`, proving every family fires on its violation
//! fixture and stays silent on the matching allowed fixture.

use xtask::manifest::check_manifest;
use xtask::rules::{check_forbid_unsafe, check_source, FileScope, Finding};

const LIB_SCOPE: FileScope = FileScope {
    deterministic: false,
    harness: false,
    seed_authority: false,
    detector_authority: false,
    hot_path_checked: false,
};
const DET_SCOPE: FileScope = FileScope { deterministic: true, ..LIB_SCOPE };
const HOT_SCOPE: FileScope = FileScope { hot_path_checked: true, ..LIB_SCOPE };
const HARNESS_SCOPE: FileScope = FileScope { harness: true, ..LIB_SCOPE };
const STATS_SCOPE: FileScope =
    FileScope { deterministic: true, seed_authority: true, ..LIB_SCOPE };
const CORE_SCOPE: FileScope =
    FileScope { deterministic: true, detector_authority: true, ..LIB_SCOPE };

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn l1_panic_fires_on_every_pattern() {
    let src = include_str!("fixtures/l1_panic_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!
    assert_eq!(count(&findings, "L1/panic"), 6, "{findings:?}");
}

#[test]
fn l1_panic_respects_allows_and_test_code() {
    let src = include_str!("fixtures/l1_panic_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l1_index_fires_on_variable_subscript() {
    let src = include_str!("fixtures/l1_index_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert_eq!(rules_of(&findings), vec!["L1/index"]);
}

#[test]
fn l1_index_skips_literals_ranges_and_allows() {
    let src = include_str!("fixtures/l1_index_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l2_determinism_fires_on_time_collections_and_rand() {
    let src = include_str!("fixtures/l2_determinism_violation.rs");
    let findings = check_source("fixture.rs", src, DET_SCOPE);
    assert!(count(&findings, "L2/time") >= 1, "{findings:?}");
    assert!(count(&findings, "L2/collections") >= 1, "{findings:?}");
    assert!(count(&findings, "L2/rand") >= 1, "{findings:?}");
}

#[test]
fn l2_collections_only_guard_deterministic_crates() {
    let src = include_str!("fixtures/l2_determinism_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert_eq!(count(&findings, "L2/collections"), 0, "{findings:?}");
    // Wall-clock time stays banned everywhere.
    assert!(count(&findings, "L2/time") >= 1, "{findings:?}");
}

#[test]
fn l2_ordered_maps_and_seeded_rng_pass() {
    let src = include_str!("fixtures/l2_determinism_allowed.rs");
    let findings = check_source("fixture.rs", src, DET_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l3_float_fires_on_eq_and_partial_cmp() {
    let src = include_str!("fixtures/l3_float_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert_eq!(count(&findings, "L3/float-eq"), 2, "{findings:?}");
    assert_eq!(count(&findings, "L3/partial-cmp"), 1, "{findings:?}");
}

#[test]
fn l3_safe_comparisons_pass() {
    let src = include_str!("fixtures/l3_float_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l5_thread_fires_on_every_spawning_idiom() {
    let src = include_str!("fixtures/l5_thread_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // std::thread::spawn, thread::scope, thread::Builder
    assert_eq!(count(&findings, "L5/thread"), 3, "{findings:?}");
}

#[test]
fn l5_thread_spares_storage_allows_tests_and_harness_crates() {
    let src = include_str!("fixtures/l5_thread_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
    // The violation fixture is legal inside a harness crate.
    let violation = include_str!("fixtures/l5_thread_violation.rs");
    let findings = check_source("fixture.rs", violation, HARNESS_SCOPE);
    assert_eq!(count(&findings, "L5/thread"), 0, "{findings:?}");
}

#[test]
fn l5_seed_fires_on_hand_rolled_derivation() {
    let src = include_str!("fixtures/l5_seed_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // grouped-uppercase and ungrouped-lowercase spellings
    assert_eq!(count(&findings, "L5/seed"), 2, "{findings:?}");
}

#[test]
fn l5_seed_spares_rng_api_allows_and_the_stats_crate() {
    let src = include_str!("fixtures/l5_seed_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
    // The stats crate itself owns the constant.
    let violation = include_str!("fixtures/l5_seed_violation.rs");
    let findings = check_source("fixture.rs", violation, STATS_SCOPE);
    assert_eq!(count(&findings, "L5/seed"), 0, "{findings:?}");
}

#[test]
fn l6_step_fires_on_direct_on_sample_calls() {
    let src = include_str!("fixtures/l6_detector_violation.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    // the plain method call and the chained one
    assert_eq!(count(&findings, "L6/step"), 2, "{findings:?}");
}

#[test]
fn l6_step_spares_trait_path_allows_tests_and_the_core_crate() {
    let src = include_str!("fixtures/l6_detector_allowed.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
    // The violation fixture is legal inside memdos-core itself.
    let violation = include_str!("fixtures/l6_detector_violation.rs");
    let findings = check_source("fixture.rs", violation, CORE_SCOPE);
    assert_eq!(count(&findings, "L6/step"), 0, "{findings:?}");
}

#[test]
fn l7_hot_alloc_fires_inside_marked_functions() {
    let src = include_str!("fixtures/l7_hotpath_violation.rs");
    let findings = check_source("fixture.rs", src, HOT_SCOPE);
    // format!, .to_string(), String::with_capacity(), .to_owned()
    assert_eq!(count(&findings, "L7/hot-alloc"), 4, "{findings:?}");
    // The family only guards the crates with the allocation-free contract.
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l7_hot_alloc_spares_buffers_cold_paths_allows_and_tests() {
    let src = include_str!("fixtures/l7_hotpath_allowed.rs");
    let findings = check_source("fixture.rs", src, HOT_SCOPE);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l4_missing_forbid_unsafe_fires() {
    let src = include_str!("fixtures/l4_missing_forbid.rs");
    let findings = check_forbid_unsafe("lib.rs", src);
    assert_eq!(rules_of(&findings), vec!["L4/unsafe"]);
}

#[test]
fn l4_forbid_unsafe_present_passes() {
    let src = include_str!("fixtures/l4_forbid_ok.rs");
    assert!(check_forbid_unsafe("lib.rs", src).is_empty());
}

#[test]
fn l4_manifest_wildcard_and_pinned_deps_fire() {
    let src = include_str!("fixtures/manifest_violation.toml");
    let findings = check_manifest("Cargo.toml", src, false);
    // wildcard "*", pinned "1.2.3", and the inline-table dev-dependency
    assert_eq!(count(&findings, "L4/cargo"), 3, "{findings:?}");
}

#[test]
fn l4_workspace_inherited_manifest_passes() {
    let src = include_str!("fixtures/manifest_ok.toml");
    let findings = check_manifest("Cargo.toml", src, false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unjustified_allow_is_reported_and_suppresses_nothing() {
    let src = include_str!("fixtures/unjustified_allow.rs");
    let findings = check_source("fixture.rs", src, LIB_SCOPE);
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    assert_eq!(rules, vec!["L1/panic", "allow"], "{findings:?}");
}
