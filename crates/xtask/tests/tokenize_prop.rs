//! Seeded property test for the lexer: token positions must be exact.
//!
//! For every generated source the test checks three invariants:
//!
//! 1. each token's `(line, col)` matches an independent recomputation
//!    from its byte offset,
//! 2. token spans are in-bounds, non-empty and strictly ordered,
//! 3. re-rendering the file from nothing but the tokens' recorded
//!    `(line, col)` positions and re-tokenizing yields an identical
//!    stream — so positions are not just plausible, they are
//!    sufficient to reconstruct the code layout.
//!
//! The generator is a fixed-seed LCG, so failures reproduce exactly.

use xtask::lexer::{tokenize, TokKind};

/// Knuth's MMIX LCG — deterministic, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        let idx = self.below(items.len() as u64) as usize;
        items.get(idx).copied().unwrap_or("")
    }
}

const IDENTS: &[&str] = &[
    "alpha", "beta_7", "_tmp", "r#type", "Engine", "on_observation", "xs", "SDS", "naïve",
];
const NUMBERS: &[&str] = &["0", "42", "0xFF_u32", "0b1010", "3.25", "1e-9", "7usize"];
const STRINGS: &[&str] = &[
    "\"plain\"",
    "\"br{ace}s\"",
    "\"esc \\\" aped\"",
    "b\"bytes\"",
    "r\"raw\"",
    "r#\"raw # hash\"#",
    "\"two\\nlines\"",
];
const CHARS: &[&str] = &["'a'", "'\\n'", "b'x'", "'}'"];
const LIFETIMES: &[&str] = &["'a", "'static", "'buf"];
const PUNCT: &[&str] = &["+", "->", "::", "==", ";", ",", ".", "=>", "&", "|"];
const COMMENTS: &[&str] = &[
    "// trailing note",
    "/* inline */",
    "/* nested /* block */ done */",
    "/// doc with \"quote\"",
];

/// Appends one random fragment. Delimiters are emitted in matched
/// pairs so the generated file is always well-formed.
fn push_fragment(rng: &mut Rng, out: &mut String, depth: &mut u32) {
    match rng.below(12) {
        0 => out.push_str(rng.pick(IDENTS)),
        1 => out.push_str(rng.pick(NUMBERS)),
        2 => out.push_str(rng.pick(STRINGS)),
        3 => out.push_str(rng.pick(CHARS)),
        4 => out.push_str(rng.pick(LIFETIMES)),
        5 | 6 => out.push_str(rng.pick(PUNCT)),
        7 => out.push_str(rng.pick(COMMENTS)),
        8 if *depth < 4 => {
            out.push_str(rng.pick(&["(", "[", "{"]));
            *depth += 1;
        }
        8 | 9 => out.push('\n'),
        10 => out.push_str("    "),
        _ => out.push(' '),
    }
    // Line comments must end the line or they would swallow the next
    // fragment — which is legal Rust, but makes invariant 3 vacuous.
    if out.ends_with("note") || out.ends_with('"') && out.ends_with("\"quote\"") {
        out.push('\n');
    }
}

fn generate(rng: &mut Rng) -> String {
    let mut out = String::new();
    let mut depth = 0u32;
    let len = 20 + rng.below(60);
    for _ in 0..len {
        push_fragment(rng, &mut out, &mut depth);
    }
    for _ in 0..depth {
        out.push('}');
    }
    out
}

/// Independent recomputation of `(line, col)` from a byte offset.
fn locate(source: &str, offset: usize) -> (u32, u32) {
    let head = source.get(..offset).unwrap_or("");
    let line = 1 + head.bytes().filter(|&b| b == b'\n').count() as u32;
    let col = 1 + head.rfind('\n').map_or(offset, |nl| offset - nl - 1) as u32;
    (line, col)
}

/// Rebuilds a source image from tokens alone: a canvas of spaces with
/// the original line structure, each token pasted at the byte offset
/// its `(line, col)` claims.
fn re_render(source: &str, tokens: &[xtask::lexer::Token]) -> String {
    let mut line_starts = vec![0usize];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let mut canvas: Vec<u8> = source
        .bytes()
        .map(|b| if b == b'\n' { b'\n' } else { b' ' })
        .collect();
    for tok in tokens {
        let Some(&ls) = line_starts.get((tok.line as usize).saturating_sub(1)) else {
            continue;
        };
        let at = ls + (tok.col as usize).saturating_sub(1);
        for (i, b) in tok.text(source).bytes().enumerate() {
            if let Some(slot) = canvas.get_mut(at + i) {
                *slot = b;
            }
        }
    }
    String::from_utf8_lossy(&canvas).into_owned()
}

#[test]
fn positions_are_exact_and_sufficient_to_re_render() {
    let mut rng = Rng(0x1d2e_3f4a_5b6c_7d8e);
    for case in 0..300 {
        let source = generate(&mut rng);
        let stream = tokenize(&source);

        // Invariant 1+2: recomputed positions match; spans are ordered.
        let mut prev_end = 0usize;
        for tok in &stream.tokens {
            assert!(
                tok.start >= prev_end && tok.end > tok.start && tok.end <= source.len(),
                "case {case}: bad span {}..{} in {source:?}",
                tok.start,
                tok.end
            );
            prev_end = tok.end;
            let (line, col) = locate(&source, tok.start);
            assert_eq!(
                (tok.line, tok.col),
                (line, col),
                "case {case}: token {:?} at byte {} in {source:?}",
                tok.text(&source),
                tok.start
            );
        }

        // Invariant 3: the token stream alone reproduces the layout.
        let rendered = re_render(&source, &stream.tokens);
        let again = tokenize(&rendered);
        assert_eq!(
            stream.tokens.len(),
            again.tokens.len(),
            "case {case}: token count changed after re-render\n--- source\n{source}\n--- rendered\n{rendered}"
        );
        for (a, b) in stream.tokens.iter().zip(again.tokens.iter()) {
            assert_eq!(
                (a.kind, a.line, a.col, a.text(&source)),
                (b.kind, b.line, b.col, b.text(&rendered)),
                "case {case}:\n--- source\n{source}\n--- rendered\n{rendered}"
            );
        }
    }
}

#[test]
fn multi_line_literals_keep_interior_newlines() {
    let source = "let s = r#\"first\nsecond\"#;\nnext";
    let stream = tokenize(source);
    let Some(raw) = stream.tokens.iter().find(|t| t.kind == TokKind::Str) else {
        panic!("raw string not lexed as Str: {:?}", stream.tokens);
    };
    assert_eq!((raw.line, raw.col), (1, 9));
    assert!(raw.text(source).contains('\n'));
    let Some(next) = stream.tokens.iter().find(|t| t.text(source) == "next") else {
        panic!("trailing ident lost: {:?}", stream.tokens);
    };
    // The line counter must advance across the literal's interior newline.
    assert_eq!((next.line, next.col), (3, 1));
}
