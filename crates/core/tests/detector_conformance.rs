//! Shared behavioural conformance suite over all four detectors.
//!
//! Every scheme — SDS/B, SDS/P, the combined SDS and the KStest
//! baseline — is exercised through the same trait surface
//! ([`Detector`] + [`FromProfile`]) against the same contract:
//!
//! * construction is uniform: `from_profile(&Profile, &Params)`;
//! * the alarm state clears when the detection condition clears;
//! * `activations()` is monotonic and increments exactly when a step
//!   reports `became_active`;
//! * the `Alarm` verdict class coincides with `alarm_active()`;
//! * degenerate observations (NaN) never panic and leave a fresh
//!   detector at `Verdict::Normal`.
//!
//! The drive loop honours throttle requests the way the experiment loop
//! does (while throttled, the protected VM runs alone and its statistics
//! are clean), so the KStest baseline runs its real protocol.

use memdos_core::config::{KsTestParams, SdsBParams, SdsPParams, SdsParams};
use memdos_core::detector::{
    Detector, DetectorStep, FromProfile, Observation, ObservationBatch, ThrottleRequest, Verdict,
};
use memdos_core::kstest::KsTestDetector;
use memdos_core::profile::{Profile, Profiler, ProfilerConfig};
use memdos_core::sds::Sds;
use memdos_core::sdsb::SdsB;
use memdos_core::sdsp::SdsP;
use std::sync::OnceLock;

/// Stationary benign signal (non-periodic). The jitter is a hash, not a
/// modular pattern: a pattern whose period divides the MA window would
/// make every MA value identical and the profiled sigma exactly zero,
/// leaving a degenerate zero-width normal range.
fn flat_obs(i: u64) -> Observation {
    let h = i.wrapping_mul(2654435761);
    Observation {
        access_num: 1000.0 + (h % 17) as f64,
        miss_num: 100.0 + (h % 7) as f64,
    }
}

/// Square-wave benign signal: period 1000 ticks = 20 MA windows.
fn square_obs(i: u64) -> Observation {
    let phase = (i / 500) % 2;
    let base = if phase == 0 { 1200.0 } else { 400.0 };
    Observation { access_num: base + (i % 13) as f64, miss_num: 30.0 + (i % 3) as f64 }
}

/// Attack signature: AccessNum collapses, MissNum inflates, and any
/// periodic structure vanishes.
fn attack_obs(i: u64) -> Observation {
    Observation { access_num: 100.0 + (i % 7) as f64, miss_num: 300.0 + (i % 3) as f64 }
}

fn profile_of(signal: fn(u64) -> Observation, ticks: u64) -> Profile {
    let mut profiler =
        Profiler::new(ProfilerConfig::default()).expect("default profiler config is valid");
    for i in 0..ticks {
        profiler.observe(signal(i));
    }
    profiler.finish().expect("profile signal is long enough")
}

fn flat_profile() -> &'static Profile {
    static P: OnceLock<Profile> = OnceLock::new();
    P.get_or_init(|| profile_of(flat_obs, 6_000))
}

fn periodic_profile() -> &'static Profile {
    static P: OnceLock<Profile> = OnceLock::new();
    P.get_or_init(|| {
        let p = profile_of(square_obs, 10_000);
        assert!(p.is_periodic(), "square wave must profile as periodic");
        p
    })
}

/// One detector under test, with the benign signal its profile was
/// built from and stage lengths matched to its detection delay.
struct Case {
    label: &'static str,
    det: Box<dyn Detector>,
    benign: fn(u64) -> Observation,
    benign_ticks: u64,
    attack_ticks: u64,
    recovery_ticks: u64,
}

/// Every scheme, constructed through the uniform [`FromProfile`] path.
fn cases() -> Vec<Case> {
    fn build<D: FromProfile>(profile: &Profile, params: &D::Params) -> Box<D> {
        Box::new(D::from_profile(profile, params).expect("conformance profile is valid"))
    }
    // Compact KStest schedule: W_R = W_M = 20, L_M = 40, L_R = 2000, so
    // an alarm needs 4 × 40 = 160 attack ticks and no reference refresh
    // lands inside the attack stage.
    let ks = KsTestParams {
        w_r_ticks: 20,
        w_m_ticks: 20,
        l_m_ticks: 40,
        l_r_ticks: 2_000,
        ..KsTestParams::default()
    };
    vec![
        Case {
            label: "SDS/B",
            det: build::<SdsB>(flat_profile(), &SdsBParams::default()),
            benign: flat_obs,
            benign_ticks: 3_000,
            attack_ticks: 4_000,
            recovery_ticks: 5_000,
        },
        Case {
            label: "SDS/P",
            det: build::<SdsP>(periodic_profile(), &SdsPParams::default()),
            benign: square_obs,
            benign_ticks: 3_000,
            attack_ticks: 5_000,
            recovery_ticks: 8_000,
        },
        Case {
            label: "SDS",
            det: build::<Sds>(periodic_profile(), &SdsParams::default()),
            benign: square_obs,
            benign_ticks: 3_000,
            attack_ticks: 5_000,
            recovery_ticks: 8_000,
        },
        Case {
            label: "KStest",
            det: build::<KsTestDetector>(flat_profile(), &ks),
            benign: flat_obs,
            benign_ticks: 500,
            attack_ticks: 600,
            recovery_ticks: 600,
        },
    ]
}

/// Drives `det` over `ticks`, feeding the attack signature when
/// `attacked` (except while the detector holds the server throttled),
/// and checks the per-step invariants of the [`Detector`] contract.
fn drive(
    case: &mut Case,
    start: u64,
    ticks: u64,
    attacked: bool,
    throttled: &mut bool,
    baseline_activations: u64,
    became_total: &mut u64,
) {
    for i in start..start + ticks {
        let obs = if *throttled || !attacked { (case.benign)(i) } else { attack_obs(i) };
        let step = case.det.on_observation(obs);
        match step.throttle {
            Some(ThrottleRequest::PauseOthers) => *throttled = true,
            Some(ThrottleRequest::ResumeAll) => *throttled = false,
            None => {}
        }
        if step.became_active {
            *became_total += 1;
            assert!(
                case.det.alarm_active(),
                "{}: became_active step must leave the alarm active",
                case.label
            );
        }
        // activations() counts exactly the became_active transitions.
        assert_eq!(
            case.det.activations(),
            baseline_activations + *became_total,
            "{}: activations() out of sync with became_active",
            case.label
        );
        // The Alarm verdict class coincides with alarm_active().
        assert_eq!(
            step.verdict.same_class(&Verdict::Alarm),
            case.det.alarm_active(),
            "{}: verdict {:?} disagrees with alarm_active()",
            case.label,
            step.verdict
        );
    }
}

#[test]
fn alarm_activates_under_attack_and_clears_after() {
    for mut case in cases() {
        let base = case.det.activations();
        assert_eq!(base, 0, "{}: fresh detector has activations", case.label);
        let mut throttled = false;
        let mut became = 0u64;
        let (b, a, r) = (case.benign_ticks, case.attack_ticks, case.recovery_ticks);

        drive(&mut case, 0, b, false, &mut throttled, base, &mut became);
        assert!(
            !case.det.alarm_active(),
            "{}: false alarm on the profiled benign signal",
            case.label
        );
        assert_eq!(became, 0, "{}: activation during benign stage", case.label);

        drive(&mut case, b, a, true, &mut throttled, base, &mut became);
        assert!(became >= 1, "{}: attack not detected", case.label);
        assert!(
            case.det.alarm_active(),
            "{}: alarm not active at the end of the attack",
            case.label
        );

        drive(&mut case, b + a, r, false, &mut throttled, base, &mut became);
        assert!(
            !case.det.alarm_active(),
            "{}: alarm did not clear after the attack stopped",
            case.label
        );
    }
}

#[test]
fn duplicated_and_reordered_samples_keep_invariants() {
    // Transport-level glitches the chaos harness injects upstream: a
    // sample delivered twice, or two adjacent samples swapped. Every
    // detector must keep the per-step contract; the flat-profile schemes
    // (SDS/B, KStest) must additionally not false-alarm, since neither
    // duplication nor a local swap changes the flat signal's statistics.
    for mut case in cases() {
        let mut stream: Vec<Observation> = (0..case.benign_ticks).map(case.benign).collect();
        let mut i = 1usize;
        while i + 1 < stream.len() {
            if i % 53 == 0 {
                stream.swap(i, i + 1);
            }
            i += 1;
        }
        let mut perturbed = Vec::with_capacity(stream.len() + stream.len() / 97 + 1);
        for (i, obs) in stream.iter().enumerate() {
            perturbed.push(*obs);
            if i % 97 == 0 {
                perturbed.push(*obs);
            }
        }
        let mut became = 0u64;
        for (i, obs) in perturbed.iter().enumerate() {
            let step = case.det.on_observation(*obs);
            if step.became_active {
                became += 1;
                assert!(case.det.alarm_active(), "{}: tick {i}", case.label);
            }
            assert_eq!(case.det.activations(), became, "{}: tick {i}", case.label);
            assert_eq!(
                step.verdict.same_class(&Verdict::Alarm),
                case.det.alarm_active(),
                "{}: tick {i}: verdict {:?} disagrees with alarm_active()",
                case.label,
                step.verdict
            );
        }
        if matches!(case.label, "SDS/B" | "KStest") {
            assert_eq!(
                became, 0,
                "{}: duplicated/reordered benign samples raised an alarm",
                case.label
            );
            assert!(!case.det.alarm_active(), "{}", case.label);
        }
    }
}

#[test]
fn stepping_long_past_alarm_is_safe() {
    // Once the engine quarantines a tenant it stops consuming verdicts,
    // but samples can keep arriving (queued batches, replay). Stepping a
    // detector far past its alarm — including degenerate observations in
    // that regime — must stay panic-free, keep activations monotonic,
    // and still recover once the attack stops.
    for mut case in cases() {
        let mut throttled = false;
        let mut became = 0u64;
        let (b, a, r) = (case.benign_ticks, case.attack_ticks, case.recovery_ticks);
        drive(&mut case, 0, b, false, &mut throttled, 0, &mut became);
        drive(&mut case, b, a, true, &mut throttled, 0, &mut became);
        assert!(became >= 1, "{}: attack not detected", case.label);
        let at_alarm = case.det.activations();

        // Sustained attack long past the first alarm.
        drive(&mut case, b + a, a, true, &mut throttled, 0, &mut became);
        assert!(
            case.det.activations() >= at_alarm,
            "{}: activations went backwards",
            case.label
        );

        // Degenerate samples while alarmed: no panic, no lost counts.
        let before_nan = case.det.activations();
        for _ in 0..3 {
            let step = case.det.on_observation(Observation {
                access_num: f64::NAN,
                miss_num: f64::NAN,
            });
            if step.became_active {
                became += 1;
            }
        }
        assert!(case.det.activations() >= before_nan, "{}", case.label);
        assert_eq!(case.det.activations(), became, "{}", case.label);

        drive(&mut case, b + 2 * a, r, false, &mut throttled, 0, &mut became);
        assert!(
            !case.det.alarm_active(),
            "{}: alarm did not clear after the extended attack stopped",
            case.label
        );
    }
}

#[test]
fn throttle_induced_counter_discontinuity_keeps_invariants_and_clears() {
    // The mitigation loop's execution throttle scales the controlled
    // tenant's own PCM counters discontinuously to the throttle duty
    // (~25 %) and restores them on release — two step edges no benign
    // workload produces. A detector watching the throttled tenant must
    // keep the per-step contract through both edges and clear once the
    // control lifts; the collapse edge itself is allowed (expected, for
    // the flat-band scheme) to read as an alarm, which is exactly why
    // the engine samples *victim* recovery rather than the throttled
    // tenant's own detector.
    const DUTY: f64 = 0.25;
    for mut case in cases() {
        let mut became = 0u64;
        let mut drive = |case: &mut Case, start: u64, ticks: u64, scale: f64, became: &mut u64| {
            for i in start..start + ticks {
                let base = (case.benign)(i);
                let obs = Observation {
                    access_num: base.access_num * scale,
                    miss_num: base.miss_num * scale,
                };
                let step = case.det.on_observation(obs);
                if step.became_active {
                    *became += 1;
                    assert!(case.det.alarm_active(), "{}: tick {i}", case.label);
                }
                assert_eq!(case.det.activations(), *became, "{}: tick {i}", case.label);
                assert_eq!(
                    step.verdict.same_class(&Verdict::Alarm),
                    case.det.alarm_active(),
                    "{}: tick {i}: verdict {:?} disagrees with alarm_active()",
                    case.label,
                    step.verdict
                );
            }
        };
        let (b, a, r) = (case.benign_ticks, case.attack_ticks, case.recovery_ticks);
        drive(&mut case, 0, b, 1.0, &mut became);
        assert!(!case.det.alarm_active(), "{}: false alarm before the throttle", case.label);

        // The control lands: counters collapse to the duty cycle.
        drive(&mut case, b, a, DUTY, &mut became);
        if case.label == "SDS/B" {
            assert!(
                became >= 1,
                "{}: a 4x counter collapse must leave the profiled band",
                case.label
            );
        }

        // The control lifts: counters restore, and whatever the
        // discontinuity triggered must clear on the benign signal.
        drive(&mut case, b + a, r, 1.0, &mut became);
        assert!(
            !case.det.alarm_active(),
            "{}: alarm did not clear after the throttle lifted",
            case.label
        );
    }
}

#[test]
fn step_batch_is_bit_identical_to_scalar_stepping() {
    // The Detector::step_batch contract: for any batch boundaries, the
    // step stream and final state must match scalar stepping exactly —
    // including batches that straddle the benign→attack edge and the
    // alarm-activation boundary (the single-batch pattern covers the
    // whole stream in one call), and Suspicious streak values mid-climb.
    // KStest runs the default scalar-loop implementation; the three SDS
    // schemes run their real columnar implementations. Stepping goes
    // through Box<dyn Detector>, so the blanket forwarding is pinned too.
    let patterns: [&[usize]; 5] = [&[1], &[3, 1, 7], &[64], &[1 << 20], &[1, 2, 3, 5, 8, 13, 21]];
    for pattern in patterns {
        let scalar_cases = cases();
        let batch_cases = cases();
        for (mut s, mut b) in scalar_cases.into_iter().zip(batch_cases) {
            // Benign → attack → benign, with no throttle feedback (both
            // sides consume the identical pre-built stream).
            let total = s.benign_ticks + s.attack_ticks + s.recovery_ticks;
            let stream: Vec<Observation> = (0..total)
                .map(|i| {
                    if i < s.benign_ticks || i >= s.benign_ticks + s.attack_ticks {
                        (s.benign)(i)
                    } else {
                        attack_obs(i)
                    }
                })
                .collect();
            let scalar_steps: Vec<DetectorStep> =
                stream.iter().map(|o| s.det.on_observation(*o)).collect();

            let access: Vec<f64> = stream.iter().map(|o| o.access_num).collect();
            let miss: Vec<f64> = stream.iter().map(|o| o.miss_num).collect();
            let mut batch_steps = Vec::new();
            let mut at = 0usize;
            let mut pi = 0usize;
            while at < stream.len() {
                let take = pattern[pi % pattern.len()].min(stream.len() - at);
                pi += 1;
                let batch = ObservationBatch::new(&access[at..at + take], &miss[at..at + take]);
                b.det.step_batch(batch, &mut batch_steps);
                at += take;
            }

            assert_eq!(
                scalar_steps.len(),
                batch_steps.len(),
                "{}: step_batch must append exactly one step per observation",
                s.label
            );
            for (i, (sv, bv)) in scalar_steps.iter().zip(&batch_steps).enumerate() {
                assert_eq!(
                    sv, bv,
                    "{}: pattern {pattern:?} diverges from scalar at tick {i}",
                    s.label
                );
            }
            assert_eq!(s.det.alarm_active(), b.det.alarm_active(), "{}", s.label);
            assert_eq!(s.det.activations(), b.det.activations(), "{}", s.label);
            // The stream must actually cross an alarm boundary for the
            // schemes with a real columnar implementation, or the test
            // would pin nothing.
            if matches!(s.label, "SDS/B" | "SDS/P" | "SDS") {
                assert!(
                    b.det.activations() >= 1,
                    "{}: batch stream never activated — boundary not exercised",
                    s.label
                );
            }
        }
    }
}

#[test]
fn step_batch_appends_and_preserves_existing_steps() {
    // Sessions reuse one output buffer across detectors; step_batch must
    // append, never clear.
    let mut case = cases().remove(0);
    let access = [1000.0, 1001.0, 1002.0];
    let miss = [100.0, 100.0, 100.0];
    let mut out = vec![DetectorStep::quiet()];
    case.det.step_batch(ObservationBatch::new(&access, &miss), &mut out);
    assert_eq!(out.len(), 4, "one pre-existing step plus one per observation");
    assert_eq!(out.first(), Some(&DetectorStep::quiet()));
}

#[test]
fn nan_observations_never_panic_and_stay_normal() {
    for mut case in cases() {
        for i in 0..5u64 {
            let nan = Observation { access_num: f64::NAN, miss_num: f64::NAN };
            let step = case.det.on_observation(nan);
            assert_eq!(
                step.verdict,
                Verdict::Normal,
                "{}: NaN tick {i} produced a non-normal verdict",
                case.label
            );
            assert!(!step.became_active, "{}: NaN activated the alarm", case.label);
        }
        assert!(!case.det.alarm_active());
        assert_eq!(case.det.activations(), 0);
    }
}

#[test]
fn construction_is_uniform_and_validated() {
    // All four schemes build from the same profile through the same
    // trait path; names are distinct and stable.
    let names: Vec<String> = cases().iter().map(|c| c.det.name().to_string()).collect();
    assert_eq!(names.len(), 4);
    for (i, name) in names.iter().enumerate() {
        assert!(!name.is_empty());
        assert!(!names.iter().skip(i + 1).any(|other| other == name), "duplicate name {name}");
    }
    // A scheme that needs periodicity refuses a non-periodic profile...
    assert!(SdsP::from_profile(flat_profile(), &SdsPParams::default()).is_err());
    // ...and invalid parameters are rejected by every scheme the same
    // way, via the params' shared validate() contract.
    let bad_b = SdsBParams { h_c: 0, ..SdsBParams::default() };
    assert!(SdsB::from_profile(flat_profile(), &bad_b).is_err());
    let bad_p = SdsPParams { h_p: 0, ..SdsPParams::default() };
    assert!(SdsP::from_profile(periodic_profile(), &bad_p).is_err());
    let bad_sds = SdsParams { sdsb: bad_b, ..SdsParams::default() };
    assert!(Sds::from_profile(flat_profile(), &bad_sds).is_err());
    let bad_ks = KsTestParams { consecutive: 0, ..KsTestParams::default() };
    assert!(KsTestDetector::from_profile(flat_profile(), &bad_ks).is_err());
}
