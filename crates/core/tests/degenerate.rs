//! Table-driven degenerate-parameter tests for the detector layer: bad
//! configurations and starved profiles must surface as `CoreError`s, not
//! panics, because detectors are constructed from operator-supplied
//! parameter sets at runtime.

use memdos_core::config::{KsTestParams, SdsBParams, SdsPParams};
use memdos_core::detector::Observation;
use memdos_core::kstest::KsTestDetector;
use memdos_core::profile::{Profiler, ProfilerConfig};
use memdos_core::sdsb::SdsB;
use memdos_core::sdsp::SdsP;
use memdos_core::CoreError;

#[test]
fn sdsb_rejects_degenerate_parameters() {
    let base = SdsBParams::default();
    let cases: Vec<(&str, SdsBParams)> = vec![
        ("window=0", SdsBParams { window: 0, ..base }),
        ("step=0", SdsBParams { step: 0, ..base }),
        ("step>window", SdsBParams { step: base.window + 1, ..base }),
        ("alpha=0", SdsBParams { alpha: 0.0, ..base }),
        ("k=1", SdsBParams { k: 1.0, ..base }),
        ("h_c=0", SdsBParams { h_c: 0, ..base }),
    ];
    for (label, params) in cases {
        assert!(
            SdsB::new(params, 100.0, 5.0).is_err(),
            "{label}: must be rejected"
        );
    }
}

#[test]
fn sdsb_rejects_degenerate_profiles() {
    let p = SdsBParams::default();
    // (label, mu, sigma)
    let cases: Vec<(&str, f64, f64)> = vec![
        ("sigma<0", 100.0, -1.0),
        ("sigma=NaN", 100.0, f64::NAN),
        ("mu=NaN", f64::NAN, 5.0),
    ];
    for (label, mu, sigma) in cases {
        assert!(
            SdsB::new(p, mu, sigma).is_err(),
            "{label}: must be rejected"
        );
    }
    // σ = 0 (an all-constant profile) is legal: the band is a point.
    let det = SdsB::new(p, 100.0, 0.0).expect("sigma=0 is legal");
    assert!(!det.range().is_violation(100.0));
}

#[test]
fn sdsp_rejects_degenerate_periods() {
    let p = SdsPParams::default();
    let cases: Vec<(&str, f64)> = vec![
        ("period=0", 0.0),
        ("period<4", 3.9),
        ("period=NaN", f64::NAN),
        ("period=-8", -8.0),
    ];
    for (label, period) in cases {
        assert!(
            SdsP::new(p, period).is_err(),
            "{label}: must be rejected"
        );
    }
}

#[test]
fn kstest_rejects_degenerate_windows() {
    let base = KsTestParams::default();
    let mut zero_ref = base;
    zero_ref.w_r_ticks = 0;
    let mut zero_mon = base;
    zero_mon.w_m_ticks = 0;
    assert!(KsTestDetector::new(zero_ref).is_err());
    assert!(KsTestDetector::new(zero_mon).is_err());
}

#[test]
fn starved_profiler_reports_insufficient_profile() {
    let mut profiler = Profiler::default();
    // One observation is far below the minimum smoothed-point count.
    profiler.observe(Observation { access_num: 10.0, miss_num: 1.0 });
    match profiler.finish() {
        Err(CoreError::InsufficientProfile { required, actual }) => {
            assert!(required > actual, "required {required} vs actual {actual}");
            assert_eq!(actual, 0);
        }
        other => panic!("expected InsufficientProfile, got {other:?}"),
    }
}

#[test]
fn profiler_rejects_invalid_preprocessing() {
    let mut cfg = ProfilerConfig::default();
    cfg.sds.sdsb.window = 0;
    assert!(Profiler::new(cfg).is_err());
}
