//! The KStest baseline detector (Zhang et al., AsiaCCS '17 — [49]).
//!
//! Protocol (§3.2), per `L_R` cycle:
//!
//! 1. Throttle every VM except the protected one and collect `W_R`
//!    seconds of its statistics as *reference samples* (statistics under
//!    guaranteed no-contention), then resume the other VMs.
//! 2. Every `L_M` seconds, collect `W_M` seconds of *monitored samples*
//!    and run a two-sample Kolmogorov–Smirnov test against the reference.
//!    Four consecutive rejections declare an attack.
//!
//! The two weaknesses the paper demonstrates both fall out of this
//! structure: (a) applications whose statistics are non-stationary reject
//! the reference even when benign (false positives, Fig. 1 / §3.2);
//! (b) the throttling required for step 1 pauses every co-located VM for
//! `W_R / L_R` of its lifetime (≈3.3 % at the default parameters), the
//! dominant share of the baseline's 3–8 % overhead (Fig. 12).
//!
//! Both `AccessNum` and `MissNum` streams are tested; a round rejects
//! when either statistic's distributions differ.

use crate::config::KsTestParams;
use crate::detector::{
    Detector, DetectorStep, FromProfile, Observation, ThrottleRequest, Verdict,
};
use crate::profile::Profile;
use crate::CoreError;
use memdos_stats::ks::ks_two_sample;

/// Where the detector is within its `L_R` cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KsPhase {
    /// Requesting/performing reference collection (others throttled).
    Reference,
    /// Waiting between monitored windows.
    Idle,
    /// Collecting a monitored window.
    Monitor,
}

/// The KStest baseline detector.
#[derive(Debug)]
pub struct KsTestDetector {
    params: KsTestParams,
    /// Ticks since the detector started.
    tick: u64,
    ref_access: Vec<f64>,
    ref_miss: Vec<f64>,
    mon_access: Vec<f64>,
    mon_miss: Vec<f64>,
    consecutive: u32,
    active: bool,
    activations: u64,
    tests_run: u64,
    rejections: u64,
    last_rejected: Option<bool>,
}

impl KsTestDetector {
    /// Creates the detector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `params` fail
    /// validation.
    pub fn new(params: KsTestParams) -> Result<Self, CoreError> {
        params.validate()?;
        Ok(KsTestDetector {
            params,
            tick: 0,
            ref_access: Vec::with_capacity(params.w_r_ticks as usize),
            ref_miss: Vec::with_capacity(params.w_r_ticks as usize),
            mon_access: Vec::with_capacity(params.w_m_ticks as usize),
            mon_miss: Vec::with_capacity(params.w_m_ticks as usize),
            consecutive: 0,
            active: false,
            activations: 0,
            tests_run: 0,
            rejections: 0,
            last_rejected: None,
        })
    }

    /// Creates the detector from a Stage-1 [`Profile`], for construction
    /// parity with the SDS family ([`FromProfile`]). The KStest protocol
    /// derives nothing from the profile content — it builds its own
    /// reference under throttling — so the profile is accepted and
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `params` fail
    /// validation.
    pub fn from_profile(_profile: &Profile, params: &KsTestParams) -> Result<Self, CoreError> {
        KsTestDetector::new(*params)
    }

    /// KS tests run so far.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }

    /// KS tests that rejected `H_0` so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Outcome of the most recent KS round (`None` before the first).
    pub fn last_rejected(&self) -> Option<bool> {
        self.last_rejected
    }

    /// Current consecutive-rejection count.
    pub fn consecutive_rejections(&self) -> u32 {
        self.consecutive
    }

    /// Verdict reflecting the current counter/alarm state.
    fn verdict(&self) -> Verdict {
        if self.active {
            Verdict::Alarm
        } else if self.consecutive > 0 {
            Verdict::Suspicious { consecutive: self.consecutive }
        } else {
            Verdict::Normal
        }
    }

    /// Phase of the cycle position `c` (ticks within the `L_R` cycle).
    ///
    /// * `c == 0` — issue `PauseOthers`; the sample of this tick is
    ///   discarded (the throttle takes effect on the next tick).
    /// * `c ∈ [1, W_R]` — collect reference; at `c == W_R` also issue
    ///   `ResumeAll`.
    /// * monitored windows occupy the last `W_M` ticks of each `L_M`
    ///   sub-interval after the reference, so the first KS test completes
    ///   at `c = W_R + L_M`.
    fn phase(&self, c: u64) -> KsPhase {
        let p = &self.params;
        if c <= p.w_r_ticks {
            return KsPhase::Reference;
        }
        let rel = c - p.w_r_ticks - 1; // 0-based position after resume
        let in_round = rel % p.l_m_ticks;
        if in_round >= p.l_m_ticks - p.w_m_ticks {
            KsPhase::Monitor
        } else {
            KsPhase::Idle
        }
    }

    fn run_test(&mut self) -> bool {
        self.tests_run += 1;
        let rejected = [
            (&self.ref_access, &self.mon_access),
            (&self.ref_miss, &self.mon_miss),
        ]
        .iter()
        .any(|(r, m)| match ks_two_sample(r, m) {
            Ok(res) => res.rejects_at(self.params.alpha),
            Err(_) => false,
        });
        if rejected {
            self.rejections += 1;
        }
        self.last_rejected = Some(rejected);
        rejected
    }
}

impl Detector for KsTestDetector {
    fn name(&self) -> &str {
        "KStest"
    }

    fn on_observation(&mut self, obs: Observation) -> DetectorStep {
        let p = self.params;
        let c = self.tick % p.l_r_ticks;
        self.tick += 1;
        let mut step = DetectorStep::quiet();

        if c == 0 {
            // New cycle: refresh the reference under throttling.
            step.throttle = Some(ThrottleRequest::PauseOthers);
            self.ref_access.clear();
            self.ref_miss.clear();
            self.mon_access.clear();
            self.mon_miss.clear();
            self.consecutive = 0;
            // The detection state persists across the refresh only if it
            // was already active; an active alarm stays active until a
            // passing round clears it below.
            step.verdict = self.verdict();
            return step;
        }

        match self.phase(c) {
            KsPhase::Reference => {
                self.ref_access.push(obs.access_num);
                self.ref_miss.push(obs.miss_num);
                if c == p.w_r_ticks {
                    step.throttle = Some(ThrottleRequest::ResumeAll);
                }
            }
            KsPhase::Idle => {}
            KsPhase::Monitor => {
                self.mon_access.push(obs.access_num);
                self.mon_miss.push(obs.miss_num);
                if self.mon_access.len() == p.w_m_ticks as usize {
                    let rejected = self.run_test();
                    self.mon_access.clear();
                    self.mon_miss.clear();
                    if rejected {
                        self.consecutive = self.consecutive.saturating_add(1);
                    } else {
                        self.consecutive = 0;
                    }
                    let now_active = self.consecutive >= p.consecutive;
                    let became = now_active && !self.active;
                    if became {
                        self.activations += 1;
                    }
                    // A passing round clears the alarm; an alarmed state
                    // otherwise persists across reference refreshes.
                    if now_active {
                        self.active = true;
                    } else if !rejected {
                        self.active = false;
                    }
                    step.became_active = became;
                }
            }
        }
        step.verdict = self.verdict();
        step
    }

    fn alarm_active(&self) -> bool {
        self.active
    }

    fn activations(&self) -> u64 {
        self.activations
    }

    fn resident_bytes_hint(&self) -> usize {
        std::mem::size_of::<KsTestDetector>()
            + (self.ref_access.capacity()
                + self.ref_miss.capacity()
                + self.mon_access.capacity()
                + self.mon_miss.capacity())
                * std::mem::size_of::<f64>()
    }
}

impl Default for KsTestDetector {
    /// The detector at the paper's default parameters.
    fn default() -> Self {
        // lint:allow(panic) -- KsTestParams::default() is a compile-time
        // constant whose validity is pinned by the params_roundtrip tests.
        KsTestDetector::new(KsTestParams::default()).expect("defaults are valid")
    }
}

impl FromProfile for KsTestDetector {
    type Params = KsTestParams;

    fn from_profile(profile: &Profile, params: &KsTestParams) -> Result<Self, CoreError> {
        KsTestDetector::from_profile(profile, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compact parameters: W_R = W_M = 20 ticks, L_M = 40, L_R = 200.
    fn fast_params() -> KsTestParams {
        KsTestParams {
            w_r_ticks: 20,
            w_m_ticks: 20,
            l_m_ticks: 40,
            l_r_ticks: 200,
            consecutive: 4,
            alpha: 0.05,
        }
    }

    fn obs(a: f64, m: f64) -> Observation {
        Observation { access_num: a, miss_num: m }
    }

    /// Deterministic noise around a level.
    fn level(i: u64, base: f64) -> f64 {
        base + ((i * 2654435761) % 17) as f64
    }

    #[test]
    fn throttle_protocol_sequence() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        let mut requests = Vec::new();
        for i in 0..200u64 {
            let step = d.on_observation(obs(level(i, 100.0), level(i, 10.0)));
            if let Some(t) = step.throttle {
                requests.push((i, t));
            }
        }
        assert_eq!(
            requests,
            vec![
                (0, ThrottleRequest::PauseOthers),
                (20, ThrottleRequest::ResumeAll),
            ]
        );
    }

    #[test]
    fn stationary_signal_rarely_alarms() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        for i in 0..4000u64 {
            d.on_observation(obs(level(i, 100.0), level(i, 10.0)));
        }
        assert!(d.tests_run() > 50);
        assert!(!d.alarm_active());
        assert_eq!(d.activations(), 0);
    }

    /// Drives the detector like the real experiment loop does: while the
    /// detector has requested throttling, the protected VM runs alone and
    /// its statistics are *clean* regardless of any attack.
    fn drive(
        d: &mut KsTestDetector,
        ticks: std::ops::Range<u64>,
        throttled: &mut bool,
        attacked: impl Fn(u64) -> bool,
    ) -> bool {
        let mut became = false;
        for i in ticks {
            let (a, m) = if *throttled || !attacked(i) {
                (level(i, 100.0), level(i, 10.0))
            } else {
                (level(i, 10.0), level(i, 10.0))
            };
            let step = d.on_observation(obs(a, m));
            match step.throttle {
                Some(ThrottleRequest::PauseOthers) => *throttled = true,
                Some(ThrottleRequest::ResumeAll) => *throttled = false,
                None => {}
            }
            became |= step.became_active;
        }
        became
    }

    #[test]
    fn level_shift_alarms() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        let mut throttled = false;
        // One full cycle benign, then the attack collapses AccessNum.
        let became = drive(&mut d, 0..200, &mut throttled, |_| false)
            | drive(&mut d, 200..400, &mut throttled, |_| true);
        assert!(became, "no alarm after 4 consecutive rejecting rounds");
        assert!(d.alarm_active());
    }

    #[test]
    fn four_consecutive_rejections_required() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        for i in 0..200u64 {
            d.on_observation(obs(level(i, 100.0), level(i, 10.0)));
        }
        // Exactly 3 rejecting rounds (3 × L_M = 120 ticks), then normal.
        for i in 200..320u64 {
            d.on_observation(obs(level(i, 10.0), level(i, 10.0)));
        }
        assert!(d.consecutive_rejections() <= 3);
        assert!(!d.alarm_active());
        for i in 320..400u64 {
            d.on_observation(obs(level(i, 100.0), level(i, 10.0)));
        }
        assert!(!d.alarm_active());
        assert_eq!(d.activations(), 0);
    }

    #[test]
    fn reference_refresh_resets_consecutive_counter() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        // Rounds 180..200 of the first cycle reject (3 rounds max in the
        // tail), the refresh at tick 200 must reset the streak.
        for i in 0..160u64 {
            d.on_observation(obs(level(i, 100.0), level(i, 10.0)));
        }
        for i in 160..200u64 {
            d.on_observation(obs(level(i, 10.0), level(i, 10.0)));
        }
        let streak_before = d.consecutive_rejections();
        assert!(streak_before >= 1);
        // Tick 200 = new cycle.
        d.on_observation(obs(level(200, 10.0), level(200, 10.0)));
        assert_eq!(d.consecutive_rejections(), 0);
    }

    #[test]
    fn alarm_clears_on_passing_round() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        let mut throttled = false;
        drive(&mut d, 0..200, &mut throttled, |_| false);
        drive(&mut d, 200..400, &mut throttled, |_| true);
        assert!(d.alarm_active());
        // Back to normal: the next passing round clears the alarm.
        drive(&mut d, 400..800, &mut throttled, |_| false);
        assert!(!d.alarm_active());
    }

    #[test]
    fn miss_channel_also_detects() {
        let mut d = KsTestDetector::new(fast_params()).unwrap();
        let mut throttled = false;
        drive(&mut d, 0..200, &mut throttled, |_| false);
        // Cleansing signature: MissNum inflates while AccessNum stays.
        let mut became = false;
        for i in 200..400u64 {
            let (a, m) = if throttled {
                (level(i, 100.0), level(i, 10.0))
            } else {
                (level(i, 100.0), level(i, 500.0))
            };
            let step = d.on_observation(obs(a, m));
            match step.throttle {
                Some(ThrottleRequest::PauseOthers) => throttled = true,
                Some(ThrottleRequest::ResumeAll) => throttled = false,
                None => {}
            }
            became |= step.became_active;
        }
        assert!(became && d.alarm_active());
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = fast_params();
        p.w_m_ticks = 0;
        assert!(KsTestDetector::new(p).is_err());
    }
}
