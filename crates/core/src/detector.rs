//! The common detector interface.
//!
//! All schemes — SDS/B, SDS/P, the combined SDS, and the KStest baseline —
//! consume one [`Observation`] per `T_PCM` tick for the protected VM and
//! expose an *alarm state*: whether the scheme's detection condition is
//! currently satisfied (e.g. "the latest `H_C` EWMA values were all out
//! of range"). The state clears when the condition clears; the experiment
//! harness derives recall/specificity from the state over time and
//! detection delay from state-activation events.
//!
//! The KStest baseline is the only scheme that needs to manipulate the
//! hypervisor (execution throttling during reference collection); it
//! communicates this through [`ThrottleRequest`]s in its
//! [`DetectorStep`], which the experiment loop applies to the simulated
//! server — mirroring how the real system drives the KVM scheduler.

use crate::profile::Profile;
use crate::CoreError;
use memdos_sim::pcm::{PcmSample, Stat};

/// The per-tick PCM statistics of the protected VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// LLC accesses in the tick (`AccessNum`).
    pub access_num: f64,
    /// LLC misses in the tick (`MissNum`).
    pub miss_num: f64,
}

impl Observation {
    /// Selects one statistic.
    pub fn stat(&self, which: Stat) -> f64 {
        match which {
            Stat::AccessNum => self.access_num,
            Stat::MissNum => self.miss_num,
        }
    }
}

impl From<&PcmSample> for Observation {
    fn from(s: &PcmSample) -> Self {
        Observation { access_num: s.accesses as f64, miss_num: s.misses as f64 }
    }
}

/// A columnar batch of observations: the structure-of-arrays twin of
/// [`Observation`], borrowed from the caller's column buffers so batch
/// stepping never copies or re-packs samples.
///
/// Both columns must be the same length; [`ObservationBatch::new`]
/// truncates to the shorter one so a malformed caller cannot cause an
/// out-of-bounds read.
#[derive(Debug, Clone, Copy)]
pub struct ObservationBatch<'a> {
    access: &'a [f64],
    miss: &'a [f64],
}

impl<'a> ObservationBatch<'a> {
    /// Wraps two equal-length columns (truncating to the shorter).
    pub fn new(access: &'a [f64], miss: &'a [f64]) -> Self {
        let n = access.len().min(miss.len());
        let access = access.get(..n).unwrap_or(access);
        let miss = miss.get(..n).unwrap_or(miss);
        ObservationBatch { access, miss }
    }

    /// Number of observations in the batch.
    pub fn len(&self) -> usize {
        self.access.len()
    }

    /// Whether the batch holds no observations.
    pub fn is_empty(&self) -> bool {
        self.access.is_empty()
    }

    /// The access-counter column.
    pub fn access(&self) -> &'a [f64] {
        self.access
    }

    /// The miss-counter column.
    pub fn miss(&self) -> &'a [f64] {
        self.miss
    }

    /// The column for one statistic.
    pub fn column(&self, which: Stat) -> &'a [f64] {
        match which {
            Stat::AccessNum => self.access,
            Stat::MissNum => self.miss,
        }
    }

    /// Iterates the batch as scalar [`Observation`]s, in order.
    pub fn iter(&self) -> impl Iterator<Item = Observation> + 'a {
        self.access
            .iter()
            .zip(self.miss)
            .map(|(&access_num, &miss_num)| Observation { access_num, miss_num })
    }
}

/// A hypervisor action requested by a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleRequest {
    /// Pause every VM except the protected one (reference collection).
    PauseOthers,
    /// Resume all VMs.
    ResumeAll,
}

/// The detector's judgement after a step — the full state callers need,
/// so they never reassemble it from `alarm_active()` plus the per-scheme
/// consecutive counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Verdict {
    /// The detection condition shows no sign of an attack.
    #[default]
    Normal,
    /// The condition is partially satisfied: `consecutive` violations
    /// (or period changes / KS rejections) in a row, below the scheme's
    /// threshold.
    Suspicious {
        /// Length of the current violation streak.
        consecutive: u32,
    },
    /// The detection condition is fully satisfied.
    Alarm,
}

impl Verdict {
    /// Stable lowercase label (used by the engine's JSONL event log).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Normal => "normal",
            Verdict::Suspicious { .. } => "suspicious",
            Verdict::Alarm => "alarm",
        }
    }

    /// Whether two verdicts fall in the same class, ignoring the
    /// suspicious streak length (transition logs key on this).
    pub fn same_class(&self, other: &Verdict) -> bool {
        self.label() == other.label()
    }
}

/// What happened during one detector step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStep {
    /// The detector's judgement after consuming this observation.
    pub verdict: Verdict,
    /// The alarm state transitioned from inactive to active on this tick.
    pub became_active: bool,
    /// Hypervisor action the detector requires (KStest baseline only).
    pub throttle: Option<ThrottleRequest>,
}

impl DetectorStep {
    /// A step with a `Normal` verdict, no alarm transition and no
    /// throttle request.
    pub fn quiet() -> Self {
        DetectorStep::default()
    }
}

/// A real-time memory-DoS detector.
pub trait Detector {
    /// Scheme name for reports (e.g. `"SDS/B"`).
    fn name(&self) -> &str;

    /// Feeds the PCM statistics of one tick.
    fn on_observation(&mut self, obs: Observation) -> DetectorStep;

    /// Feeds a columnar batch of consecutive ticks, appending exactly
    /// one [`DetectorStep`] per observation to `out` (existing contents
    /// are preserved).
    ///
    /// The contract is *bit-identical equivalence* with scalar stepping:
    /// for any batch, the appended steps and the detector's final state
    /// must match calling [`Detector::on_observation`] once per
    /// observation in order — batching is a throughput optimisation,
    /// never a semantic fork (`detector_conformance` pins this for every
    /// scheme). The default implementation is that scalar loop; schemes
    /// whose per-tick work is a smoothing push (SDS/B, SDS/P, SDS)
    /// override it with branch-light columnar loops.
    // hot-path
    fn step_batch(&mut self, batch: ObservationBatch<'_>, out: &mut Vec<DetectorStep>) {
        for obs in batch.iter() {
            out.push(self.on_observation(obs));
        }
    }

    /// Whether the scheme's detection condition is currently satisfied.
    fn alarm_active(&self) -> bool;

    /// Number of inactive→active transitions so far.
    fn activations(&self) -> u64;

    /// Estimated heap bytes of the detector's working set (smoothing
    /// windows, reference samples). A deterministic capacity-based
    /// accounting figure — fleet hosts budget tens of thousands of
    /// detector stacks against a memory ceiling, so the estimate must
    /// replay identically run to run; it is not an allocator
    /// measurement. Defaults to `0` for schemes whose state is a few
    /// scalars.
    fn resident_bytes_hint(&self) -> usize {
        0
    }
}

/// Uniform construction from a Stage-1 profile: every scheme builds the
/// same way — a profile plus its own parameter struct — so generic code
/// (the engine's session stack, the conformance suite) can instantiate
/// any detector without per-scheme special cases. The KStest baseline
/// participates for parity even though it derives nothing from the
/// profile content (it builds its own reference under throttling).
pub trait FromProfile: Detector + Sized {
    /// The scheme's parameter struct (all of them expose `validate()`).
    type Params;

    /// Builds the detector from a Stage-1 profile and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid parameters or
    /// a degenerate profile, and [`CoreError::NotPeriodic`] when the
    /// scheme needs a periodicity entry the profile lacks.
    fn from_profile(profile: &Profile, params: &Self::Params) -> Result<Self, CoreError>;
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_observation(&mut self, obs: Observation) -> DetectorStep {
        (**self).on_observation(obs)
    }
    // hot-path
    fn step_batch(&mut self, batch: ObservationBatch<'_>, out: &mut Vec<DetectorStep>) {
        (**self).step_batch(batch, out)
    }
    fn alarm_active(&self) -> bool {
        (**self).alarm_active()
    }
    fn activations(&self) -> u64 {
        (**self).activations()
    }
    fn resident_bytes_hint(&self) -> usize {
        (**self).resident_bytes_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::cache::DomainId;
    use memdos_sim::hypervisor::VmId;

    #[test]
    fn observation_from_sample() {
        let s = PcmSample { vm: VmId(0), domain: DomainId(1), accesses: 10, misses: 3 };
        let o = Observation::from(&s);
        assert_eq!(o.access_num, 10.0);
        assert_eq!(o.miss_num, 3.0);
        assert_eq!(o.stat(Stat::AccessNum), 10.0);
        assert_eq!(o.stat(Stat::MissNum), 3.0);
    }

    #[test]
    fn quiet_step_is_default() {
        assert_eq!(DetectorStep::quiet(), DetectorStep::default());
        assert!(DetectorStep::quiet().throttle.is_none());
        assert_eq!(DetectorStep::quiet().verdict, Verdict::Normal);
    }

    #[test]
    fn verdict_labels_and_classes() {
        assert_eq!(Verdict::Normal.label(), "normal");
        assert_eq!(Verdict::Suspicious { consecutive: 3 }.label(), "suspicious");
        assert_eq!(Verdict::Alarm.label(), "alarm");
        assert!(Verdict::Suspicious { consecutive: 1 }
            .same_class(&Verdict::Suspicious { consecutive: 7 }));
        assert!(!Verdict::Normal.same_class(&Verdict::Alarm));
        assert_eq!(Verdict::default(), Verdict::Normal);
    }
}
