//! SDS — the combined Statistical-based Detection System (§5.1).
//!
//! "In SDS, for non-periodic applications, only SDS/B is used to infer an
//! attack. For periodic applications, SDS requires both SDS/B and SDS/P
//! to detect an attack before triggering an attack alarm." Requiring
//! agreement eliminates false positives either scheme generates alone
//! (the 3–6 pp specificity improvements of Fig. 10).
//!
//! SDS/B is instantiated twice: on `AccessNum` (a bus-locking attack
//! drives it below range) and on `MissNum` (a cleansing attack drives it
//! above range); either channel satisfying its condition counts as a
//! SDS/B detection. SDS/P runs on the `AccessNum` MA series, where the
//! periodic structure lives (Figs. 2(g), 6(a)).

use crate::config::{SdsBParams, SdsParams, SdsPParams};
use crate::detector::{
    Detector, DetectorStep, FromProfile, Observation, ObservationBatch, Verdict,
};
use crate::profile::Profile;
use crate::sdsb::SdsB;
use crate::sdsp::SdsP;
use crate::CoreError;
use memdos_sim::pcm::Stat;

/// The combined SDS detector.
#[derive(Debug)]
pub struct Sds {
    b_access: SdsB,
    b_miss: SdsB,
    p: Option<SdsP>,
    active: bool,
    activations: u64,
}

impl Sds {
    /// Builds SDS from a Stage-1 [`Profile`]. SDS/P is included exactly
    /// when the profile classified the application as periodic.
    ///
    /// The preprocessing parameters in `params` override the ones stored
    /// in the profile (sensitivity studies sweep them); pass
    /// `&profile.params` semantics by using [`SdsParams::default`] when
    /// the Table 1 values are wanted.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`SdsB::new`] / [`SdsP::new`].
    pub fn from_profile(profile: &Profile, params: &SdsParams) -> Result<Self, CoreError> {
        let b_access = SdsB::from_profile(
            profile,
            &SdsBParams { stat: Stat::AccessNum, ..params.sdsb },
        )?;
        let b_miss =
            SdsB::from_profile(profile, &SdsBParams { stat: Stat::MissNum, ..params.sdsb })?;
        let p = if profile.is_periodic() {
            Some(SdsP::from_profile(
                profile,
                &SdsPParams { stat: Stat::AccessNum, ..params.sdsp },
            )?)
        } else {
            None
        };
        Ok(Sds { b_access, b_miss, p, active: false, activations: 0 })
    }

    /// The `AccessNum` boundary channel.
    pub fn boundary_access(&self) -> &SdsB {
        &self.b_access
    }

    /// The `MissNum` boundary channel.
    pub fn boundary_miss(&self) -> &SdsB {
        &self.b_miss
    }

    /// The period channel, present for periodic applications.
    pub fn period_channel(&self) -> Option<&SdsP> {
        self.p.as_ref()
    }

    /// Whether this instance treats the application as periodic.
    pub fn is_periodic_mode(&self) -> bool {
        self.p.is_some()
    }

    /// Verdict reflecting the combined state: `Alarm` when the
    /// scheme-level condition holds, `Suspicious` with the longest
    /// channel streak while any channel counts violations, else
    /// `Normal`.
    fn verdict(&self) -> Verdict {
        if self.active {
            return Verdict::Alarm;
        }
        let mut streak = self.b_access.consecutive_violations();
        streak = streak.max(self.b_miss.consecutive_violations());
        if let Some(p) = &self.p {
            streak = streak.max(p.consecutive_changes());
        }
        if streak > 0 {
            Verdict::Suspicious { consecutive: streak }
        } else {
            Verdict::Normal
        }
    }
}

impl Detector for Sds {
    fn name(&self) -> &str {
        "SDS"
    }

    fn on_observation(&mut self, obs: Observation) -> DetectorStep {
        self.b_access.on_observation(obs);
        self.b_miss.on_observation(obs);
        if let Some(p) = &mut self.p {
            p.on_observation(obs);
        }
        let b_active = self.b_access.alarm_active() || self.b_miss.alarm_active();
        let now_active = match &self.p {
            Some(p) => b_active && p.alarm_active(),
            None => b_active,
        };
        let became = now_active && !self.active;
        if became {
            self.activations += 1;
        }
        self.active = now_active;
        DetectorStep { verdict: self.verdict(), became_active: became, throttle: None }
    }

    /// Columnar stepping: each channel's statistic column is selected
    /// once per batch and all three channels advance in one fused loop,
    /// so the per-observation work is three smoothing pushes plus the
    /// agreement combine — no virtual dispatch, no per-observation
    /// statistic selection. The combine and verdict bodies mirror
    /// [`Detector::on_observation`] and `Sds::verdict` line for line, so
    /// the step stream is bit-identical to scalar stepping.
    // hot-path
    fn step_batch(&mut self, batch: ObservationBatch<'_>, out: &mut Vec<DetectorStep>) {
        let col_a = batch.column(self.b_access.stat());
        let col_m = batch.column(self.b_miss.stat());
        out.reserve(col_a.len());
        match self.p.take() {
            Some(mut p) => {
                let col_p = batch.column(p.params().stat);
                for ((&a, &m), &pr) in col_a.iter().zip(col_m).zip(col_p) {
                    self.b_access.step_raw(a);
                    self.b_miss.step_raw(m);
                    p.advance(pr);
                    let b_active =
                        self.b_access.alarm_active() || self.b_miss.alarm_active();
                    let now_active = b_active && p.alarm_active();
                    let became = now_active && !self.active;
                    if became {
                        self.activations += 1;
                    }
                    self.active = now_active;
                    let verdict = if self.active {
                        Verdict::Alarm
                    } else {
                        let streak = self
                            .b_access
                            .consecutive_violations()
                            .max(self.b_miss.consecutive_violations())
                            .max(p.consecutive_changes());
                        if streak > 0 {
                            Verdict::Suspicious { consecutive: streak }
                        } else {
                            Verdict::Normal
                        }
                    };
                    out.push(DetectorStep { verdict, became_active: became, throttle: None });
                }
                self.p = Some(p);
            }
            None => {
                for (&a, &m) in col_a.iter().zip(col_m) {
                    self.b_access.step_raw(a);
                    self.b_miss.step_raw(m);
                    let now_active =
                        self.b_access.alarm_active() || self.b_miss.alarm_active();
                    let became = now_active && !self.active;
                    if became {
                        self.activations += 1;
                    }
                    self.active = now_active;
                    let verdict = if self.active {
                        Verdict::Alarm
                    } else {
                        let streak = self
                            .b_access
                            .consecutive_violations()
                            .max(self.b_miss.consecutive_violations());
                        if streak > 0 {
                            Verdict::Suspicious { consecutive: streak }
                        } else {
                            Verdict::Normal
                        }
                    };
                    out.push(DetectorStep { verdict, became_active: became, throttle: None });
                }
            }
        }
    }

    fn alarm_active(&self) -> bool {
        self.active
    }

    fn activations(&self) -> u64 {
        self.activations
    }

    fn resident_bytes_hint(&self) -> usize {
        std::mem::size_of::<Sds>()
            + self.b_access.resident_bytes_hint()
            + self.b_miss.resident_bytes_hint()
            + self.p.as_ref().map_or(0, SdsP::resident_bytes_hint)
    }
}

impl FromProfile for Sds {
    type Params = SdsParams;

    fn from_profile(profile: &Profile, params: &SdsParams) -> Result<Self, CoreError> {
        Sds::from_profile(profile, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SdsBParams, SdsPParams};
    use crate::profile::Profiler;

    fn fast_params() -> SdsParams {
        SdsParams {
            sdsb: SdsBParams {
                window: 10,
                step: 5,
                alpha: 0.5,
                k: 2.0,
                h_c: 3,
                ..SdsBParams::default()
            },
            sdsp: SdsPParams {
                window: 10,
                step: 5,
                window_periods: 2.0,
                step_ma: 2,
                h_p: 3,
                deviation: 0.2,
                ..SdsPParams::default()
            },
        }
    }

    /// Profiles a flat (non-periodic) signal.
    fn flat_profile() -> Profile {
        let mut p = Profiler::default();
        for i in 0..4000 {
            p.observe(Observation {
                access_num: 1000.0 + (i % 10) as f64,
                miss_num: 100.0 + (i % 5) as f64,
            });
        }
        p.finish().unwrap()
    }

    /// Profiles a square-wave (periodic) signal with period 20 MA
    /// windows at the default ΔW=50 (1000 raw samples per cycle).
    fn periodic_profile() -> Profile {
        let mut p = Profiler::default();
        for i in 0..12_000 {
            let phase = (i / 500) % 2;
            let a = if phase == 0 { 1200.0 } else { 400.0 };
            p.observe(Observation { access_num: a + (i % 7) as f64, miss_num: 50.0 });
        }
        p.finish().unwrap()
    }

    use crate::profile::Profile;

    #[test]
    fn non_periodic_mode_is_boundary_only() {
        let sds = Sds::from_profile(&flat_profile(), &fast_params()).unwrap();
        assert!(!sds.is_periodic_mode());
        assert!(sds.period_channel().is_none());
    }

    #[test]
    fn periodic_mode_includes_sdsp() {
        let sds = Sds::from_profile(&periodic_profile(), &SdsParams::default()).unwrap();
        assert!(sds.is_periodic_mode());
        let p = sds.period_channel().unwrap();
        assert!((15.0..=25.0).contains(&p.normal_period()));
    }

    /// The same generator the flat profile was built from.
    fn flat_obs(i: u64) -> Observation {
        Observation {
            access_num: 1000.0 + (i % 10) as f64,
            miss_num: 100.0 + (i % 5) as f64,
        }
    }

    #[test]
    fn non_periodic_alarm_on_access_drop() {
        let mut sds = Sds::from_profile(&flat_profile(), &fast_params()).unwrap();
        for i in 0..200u64 {
            sds.on_observation(flat_obs(i));
        }
        assert!(!sds.alarm_active());
        for i in 0..200u64 {
            sds.on_observation(Observation { access_num: 100.0, ..flat_obs(i) });
        }
        assert!(sds.alarm_active());
        assert_eq!(sds.activations(), 1);
    }

    #[test]
    fn non_periodic_alarm_on_miss_rise() {
        let mut sds = Sds::from_profile(&flat_profile(), &fast_params()).unwrap();
        for i in 0..200u64 {
            sds.on_observation(Observation { miss_num: 800.0, ..flat_obs(i) });
        }
        assert!(sds.alarm_active());
        assert!(sds.boundary_miss().alarm_active());
        assert!(!sds.boundary_access().alarm_active());
    }

    #[test]
    fn periodic_mode_requires_agreement() {
        // Craft a profile with period 20 MA windows, then feed a signal
        // whose *level* breaks the boundary but whose *period* stays
        // normal: combined SDS must stay quiet even though SDS/B alarms.
        let profile = periodic_profile();
        let mut sds = Sds::from_profile(&profile, &profile.params).unwrap();
        // Same square wave, but shifted up so the EWMA leaves the range
        // while periodicity is unchanged.
        for i in 0..30_000u64 {
            let phase = (i / 500) % 2;
            let a = if phase == 0 { 2400.0 } else { 1600.0 };
            sds.on_observation(Observation { access_num: a, miss_num: 50.0 });
        }
        assert!(sds.boundary_access().alarm_active(), "SDS/B should fire");
        assert!(
            !sds.period_channel().unwrap().alarm_active(),
            "SDS/P should stay quiet (period unchanged: {:?})",
            sds.period_channel().unwrap().last_period()
        );
        assert!(!sds.alarm_active(), "combined SDS must require agreement");
    }

    #[test]
    fn periodic_mode_alarms_when_both_agree() {
        let profile = periodic_profile();
        let mut sds = Sds::from_profile(&profile, &profile.params).unwrap();
        // Attack: level drops AND period dilates 60 %.
        for i in 0..40_000u64 {
            let phase = (i / 800) % 2;
            let a = if phase == 0 { 500.0 } else { 150.0 };
            sds.on_observation(Observation { access_num: a, miss_num: 50.0 });
        }
        assert!(sds.boundary_access().alarm_active());
        assert!(sds.period_channel().unwrap().alarm_active());
        assert!(sds.alarm_active());
    }

    #[test]
    fn detector_name() {
        let sds = Sds::from_profile(&flat_profile(), &fast_params()).unwrap();
        assert_eq!(sds.name(), "SDS");
    }
}
