use memdos_stats::StatsError;
use std::fmt;

/// Error type for detector construction and profiling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter failed validation.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: &'static str,
    },
    /// The profiling stage did not collect enough data.
    InsufficientProfile {
        /// Number of smoothed values required.
        required: usize,
        /// Number of smoothed values available.
        actual: usize,
    },
    /// A detector that requires a periodic profile was built from a
    /// non-periodic one.
    NotPeriodic,
    /// A tick report did not contain a PCM sample for a monitored VM.
    MissingSample {
        /// The VM whose sample was requested.
        vm: memdos_sim::VmId,
    },
    /// An underlying statistics routine failed.
    Stats(StatsError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::InsufficientProfile { required, actual } => write!(
                f,
                "profile too short: need {required} smoothed values, got {actual}"
            ),
            CoreError::NotPeriodic => {
                write!(f, "application profile is not periodic; SDS/P is inapplicable")
            }
            CoreError::MissingSample { vm } => {
                write!(f, "tick report lacks a PCM sample for monitored VM {vm:?}")
            }
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            CoreError::InvalidParameter { name: "k", reason: "must exceed 1" },
            CoreError::InsufficientProfile { required: 10, actual: 2 },
            CoreError::NotPeriodic,
            CoreError::Stats(StatsError::EmptyInput),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn stats_error_converts_and_chains() {
        use std::error::Error;
        let e: CoreError = StatsError::EmptyInput.into();
        assert!(e.source().is_some());
    }
}
