//! Typed parameter sets with the paper's Table 1 defaults.
//!
//! | parameter | Table 1 value |
//! |---|---|
//! | `T_PCM` | 0.01 s |
//! | window size `W` of raw data | 200 |
//! | sliding step `ΔW` | 50 |
//! | EWMA smooth factor `α` | 0.2 |
//! | bounds | `μ ± 1.125 σ` |
//! | consecutive violation threshold `H_C` | 30 |
//! | window size `W_P` in SDS/P | `2 · period` |
//! | sliding step `ΔW_P` in SDS/P | 10 |
//! | consecutive period-change threshold `H_P` | 5 |
//!
//! KStest baseline parameters follow §3.2 (and [49]): `W_R = W_M = 1 s`,
//! `L_M = 2 s`, `L_R = 30 s`, four consecutive rejections.

use crate::CoreError;
use memdos_sim::pcm::Stat;

/// Parameters of SDS/B (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdsBParams {
    /// The statistic this instance monitors (default `AccessNum`; the
    /// combined SDS builds one instance per statistic).
    pub stat: Stat,
    /// Window size `W` of raw data points per MA window.
    pub window: usize,
    /// Sliding step `ΔW` in raw data points.
    pub step: usize,
    /// EWMA smoothing factor `α`.
    pub alpha: f64,
    /// Boundary factor `k` (> 1).
    pub k: f64,
    /// Consecutive violation threshold `H_C`.
    pub h_c: u32,
}

impl Default for SdsBParams {
    fn default() -> Self {
        SdsBParams {
            stat: Stat::AccessNum,
            window: 200,
            step: 50,
            alpha: 0.2,
            k: 1.125,
            h_c: 30,
        }
    }
}

impl SdsBParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when any field is out of
    /// domain (see field docs).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window == 0 {
            return Err(CoreError::InvalidParameter {
                name: "window",
                reason: "W must be positive",
            });
        }
        if self.step == 0 || self.step > self.window {
            return Err(CoreError::InvalidParameter {
                name: "step",
                reason: "ΔW must be in [1, W]",
            });
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                reason: "α must be in (0, 1]",
            });
        }
        if !(self.k > 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "boundary factor must exceed 1",
            });
        }
        if self.h_c == 0 {
            return Err(CoreError::InvalidParameter {
                name: "h_c",
                reason: "H_C must be positive",
            });
        }
        Ok(())
    }

    /// Returns a copy with boundary factor `k` and `H_C` re-derived from
    /// Chebyshev's inequality for the given confidence level, as done in
    /// the Fig. 14 sensitivity study.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::InvalidParameter`] for an out-of-domain
    /// `k` or confidence.
    pub fn with_confidence(mut self, k: f64, confidence: f64) -> Result<Self, CoreError> {
        self.k = k;
        self.h_c = memdos_stats::bounds::required_h_c(k, confidence).map_err(|_| {
            CoreError::InvalidParameter {
                name: "k/confidence",
                reason: "k must exceed 1 and confidence must be in (0, 1)",
            }
        })?;
        self.validate()?;
        Ok(self)
    }

    /// Shortest possible detection delay in ticks:
    /// `H_C · ΔW` raw samples (§4.2.1; multiply by `T_PCM` for seconds).
    pub fn min_detection_delay_ticks(&self) -> u64 {
        self.h_c as u64 * self.step as u64
    }
}

/// Parameters of SDS/P (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdsPParams {
    /// The statistic whose MA series is monitored (default `AccessNum`,
    /// where the periodic structure lives — Figs. 2(g), 6(a)).
    pub stat: Stat,
    /// Window size `W` of raw data for the MA series (shared with SDS/B).
    pub window: usize,
    /// Sliding step `ΔW` for the MA series.
    pub step: usize,
    /// Monitoring window `W_P` as a multiple of the profiled period
    /// (Table 1: `W_P = 2 · period`).
    pub window_periods: f64,
    /// Sliding step `ΔW_P`: recompute the period every this many new MA
    /// values.
    pub step_ma: usize,
    /// Consecutive period-change threshold `H_P`.
    pub h_p: u32,
    /// Relative period deviation that counts as a change (§4.2.2: 20 %).
    pub deviation: f64,
}

impl Default for SdsPParams {
    fn default() -> Self {
        SdsPParams {
            stat: Stat::AccessNum,
            window: 200,
            step: 50,
            window_periods: 2.0,
            step_ma: 10,
            h_p: 5,
            deviation: 0.2,
        }
    }
}

impl SdsPParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when any field is out of
    /// domain.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window == 0 {
            return Err(CoreError::InvalidParameter {
                name: "window",
                reason: "W must be positive",
            });
        }
        if self.step == 0 || self.step > self.window {
            return Err(CoreError::InvalidParameter {
                name: "step",
                reason: "ΔW must be in [1, W]",
            });
        }
        if !(self.window_periods >= 2.0) {
            return Err(CoreError::InvalidParameter {
                name: "window_periods",
                reason: "W_P must span at least two periods",
            });
        }
        if self.step_ma == 0 {
            return Err(CoreError::InvalidParameter {
                name: "step_ma",
                reason: "ΔW_P must be positive",
            });
        }
        if self.h_p == 0 {
            return Err(CoreError::InvalidParameter {
                name: "h_p",
                reason: "H_P must be positive",
            });
        }
        if !(self.deviation > 0.0 && self.deviation < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "deviation",
                reason: "period deviation threshold must be in (0, 1)",
            });
        }
        Ok(())
    }

    /// Shortest possible detection delay in ticks:
    /// `H_P · ΔW_P · ΔW` raw samples (§4.2.2).
    pub fn min_detection_delay_ticks(&self) -> u64 {
        self.h_p as u64 * self.step_ma as u64 * self.step as u64
    }
}

/// Parameters of the combined SDS (§5.1): SDS/B for all applications,
/// plus SDS/P agreement for periodic ones.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SdsParams {
    /// Boundary-scheme parameters.
    pub sdsb: SdsBParams,
    /// Period-scheme parameters (used only when the profile is periodic).
    pub sdsp: SdsPParams,
}

impl SdsParams {
    /// Validates both channels' parameter sets.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when either channel's
    /// parameters are out of domain.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.sdsb.validate()?;
        self.sdsp.validate()
    }
}

/// Parameters of the KStest baseline (§3.2, after [49]), in ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTestParams {
    /// Reference collection window `W_R` in ticks (1 s = 100 ticks).
    pub w_r_ticks: u64,
    /// Monitored window `W_M` in ticks (1 s).
    pub w_m_ticks: u64,
    /// Monitoring cadence `L_M` in ticks (2 s).
    pub l_m_ticks: u64,
    /// Reference refresh cadence `L_R` in ticks (30 s).
    pub l_r_ticks: u64,
    /// Consecutive rejections before an alarm (the paper: four).
    pub consecutive: u32,
    /// KS significance level.
    pub alpha: f64,
}

impl Default for KsTestParams {
    fn default() -> Self {
        KsTestParams {
            w_r_ticks: 100,
            w_m_ticks: 100,
            l_m_ticks: 200,
            l_r_ticks: 3000,
            consecutive: 4,
            alpha: 0.05,
        }
    }
}

impl KsTestParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when any field is out of
    /// domain or the schedule is infeasible (windows longer than their
    /// cadence).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.w_r_ticks == 0 || self.w_m_ticks == 0 {
            return Err(CoreError::InvalidParameter {
                name: "w_r/w_m",
                reason: "collection windows must be positive",
            });
        }
        if self.l_m_ticks < self.w_m_ticks {
            return Err(CoreError::InvalidParameter {
                name: "l_m",
                reason: "monitoring cadence must be at least the monitored window",
            });
        }
        if self.l_r_ticks < self.w_r_ticks + self.l_m_ticks {
            return Err(CoreError::InvalidParameter {
                name: "l_r",
                reason: "reference cadence must fit the reference window plus one monitor round",
            });
        }
        if self.consecutive == 0 {
            return Err(CoreError::InvalidParameter {
                name: "consecutive",
                reason: "rejection threshold must be positive",
            });
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                reason: "significance level must be in (0, 1)",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let b = SdsBParams::default();
        assert_eq!(b.stat, Stat::AccessNum);
        assert_eq!(SdsPParams::default().stat, Stat::AccessNum);
        assert_eq!((b.window, b.step), (200, 50));
        assert_eq!(b.alpha, 0.2);
        assert_eq!(b.k, 1.125);
        assert_eq!(b.h_c, 30);
        let p = SdsPParams::default();
        assert_eq!(p.window_periods, 2.0);
        assert_eq!(p.step_ma, 10);
        assert_eq!(p.h_p, 5);
        assert_eq!(p.deviation, 0.2);
        assert!(b.validate().is_ok());
        assert!(p.validate().is_ok());
        assert!(KsTestParams::default().validate().is_ok());
    }

    #[test]
    fn table1_defaults_give_999_confidence() {
        let b = SdsBParams::default();
        let bound = memdos_stats::bounds::false_alarm_bound(b.k, b.h_c).unwrap();
        assert!(bound <= 0.001, "Table 1 defaults miss 99.9 %: {bound}");
    }

    #[test]
    fn min_delay_formulas() {
        // SDS/B: H_C · ΔW · T_PCM = 30 · 50 · 0.01 s = 15 s = 1500 ticks.
        assert_eq!(SdsBParams::default().min_detection_delay_ticks(), 1500);
        // SDS/P: H_P · ΔW_P · ΔW · T_PCM = 5 · 10 · 50 · 0.01 s = 25 s.
        assert_eq!(SdsPParams::default().min_detection_delay_ticks(), 2500);
    }

    #[test]
    fn with_confidence_rederives_h_c() {
        let b = SdsBParams::default().with_confidence(2.0, 0.999).unwrap();
        assert_eq!(b.h_c, 5);
        assert!(SdsBParams::default().with_confidence(0.9, 0.999).is_err());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut b = SdsBParams::default();
        b.k = 1.0;
        assert!(b.validate().is_err());
        let mut b = SdsBParams::default();
        b.step = 300;
        assert!(b.validate().is_err());
        let mut p = SdsPParams::default();
        p.window_periods = 1.5;
        assert!(p.validate().is_err());
        let mut ks = KsTestParams::default();
        ks.l_m_ticks = 50;
        assert!(ks.validate().is_err());
        let mut ks = KsTestParams::default();
        ks.l_r_ticks = 200;
        assert!(ks.validate().is_err());
    }

    #[test]
    fn sds_params_validate_covers_both_channels() {
        assert!(SdsParams::default().validate().is_ok());
        let mut p = SdsParams::default();
        p.sdsb.k = 0.5;
        assert!(p.validate().is_err());
        let mut p = SdsParams::default();
        p.sdsp.h_p = 0;
        assert!(p.validate().is_err());
    }
}
