//! SDS/P — the Period-based Statistical Detection Scheme (§4.2.2).
//!
//! For periodic applications, both attacks *prolong the period* of the
//! repeating cache-access pattern (Observation 2): the application needs
//! longer to process each batch. SDS/P monitors the MA time series with a
//! window of `W_P = 2p` values (two normal periods — the minimum that
//! determines the period, and small enough that abnormal values dominate
//! quickly); every `ΔW_P` new MA values it re-runs DFT-ACF on the latest
//! window and compares the estimate with the profiled normal period. When
//! `H_P` consecutive estimates deviate by more than 20 % — or the
//! periodic pattern disappears entirely, which a destroyed pattern under
//! harsh attack does — the alarm raises.
//!
//! Stepping goes exclusively through [`Detector::on_observation`] (the
//! statistic is chosen by [`SdsPParams::stat`]); the raw-sample path is
//! private so every caller sees the same [`DetectorStep`]/[`Verdict`]
//! surface.

use crate::config::SdsPParams;
use crate::detector::{
    Detector, DetectorStep, FromProfile, Observation, ObservationBatch, Verdict,
};
use crate::profile::Profile;
use crate::CoreError;
use memdos_stats::period::PeriodDetector;
use memdos_stats::smoothing::MovingAverage;
use std::collections::VecDeque;

/// The SDS/P online detector.
#[derive(Debug)]
pub struct SdsP {
    params: SdsPParams,
    normal_period: f64,
    w_p: usize,
    ma: MovingAverage,
    window: VecDeque<f64>,
    since_recompute: usize,
    period_detector: PeriodDetector,
    consecutive: u32,
    active: bool,
    activations: u64,
    last_period: Option<f64>,
    computations: u64,
    name: String,
}

impl SdsP {
    /// Creates a detector from the profiled normal period (in MA
    /// windows) for the statistic selected by `params.stat`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid `params` or a
    /// non-positive/NaN `normal_period`.
    pub fn new(params: SdsPParams, normal_period: f64) -> Result<Self, CoreError> {
        params.validate()?;
        if !(normal_period >= 4.0) {
            return Err(CoreError::InvalidParameter {
                name: "normal_period",
                reason: "profiled period must be at least 4 MA windows",
            });
        }
        let w_p = ((params.window_periods * normal_period).round() as usize).max(8);
        Ok(SdsP {
            ma: MovingAverage::new(params.window, params.step)?,
            normal_period,
            w_p,
            window: VecDeque::with_capacity(w_p),
            since_recompute: 0,
            period_detector: PeriodDetector::default(),
            consecutive: 0,
            active: false,
            activations: 0,
            last_period: None,
            computations: 0,
            // lint:allow(hot-propagate) -- the detector name is built once at construction (session open), never while sampling
            name: format!("SDS/P[{}]", params.stat),
            params,
        })
    }

    /// Creates a detector from a Stage-1 [`Profile`], monitoring the
    /// statistic selected by `params.stat`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotPeriodic`] when the profile has no
    /// periodicity entry, or parameter errors as in [`SdsP::new`].
    pub fn from_profile(profile: &Profile, params: &SdsPParams) -> Result<Self, CoreError> {
        let p = profile.periodicity.as_ref().ok_or(CoreError::NotPeriodic)?;
        SdsP::new(*params, p.period_ma)
    }

    /// The profiled normal period in MA windows.
    pub fn normal_period(&self) -> f64 {
        self.normal_period
    }

    /// Parameters in use.
    pub fn params(&self) -> &SdsPParams {
        &self.params
    }

    /// The monitoring window size `W_P` in MA values.
    pub fn window_size(&self) -> usize {
        self.w_p
    }

    /// The most recent period estimate (`None` before the first
    /// computation or when the last window had no detectable period).
    pub fn last_period(&self) -> Option<f64> {
        self.last_period
    }

    /// Number of DFT-ACF computations performed so far.
    pub fn computations(&self) -> u64 {
        self.computations
    }

    /// Current consecutive period-change count.
    pub fn consecutive_changes(&self) -> u32 {
        self.consecutive
    }

    /// Estimated heap bytes held by this channel (MA ring buffer, the
    /// `W_P` MA-value window and the rendered name). Deterministic
    /// capacity accounting, used for fleet resident-memory estimates.
    pub fn resident_bytes_hint(&self) -> usize {
        self.ma.resident_bytes_hint()
            + self.window.capacity() * std::mem::size_of::<f64>()
            + self.name.capacity()
    }

    /// Verdict reflecting the current counter/alarm state.
    fn verdict(&self) -> Verdict {
        if self.active {
            Verdict::Alarm
        } else if self.consecutive > 0 {
            Verdict::Suspicious { consecutive: self.consecutive }
        } else {
            Verdict::Normal
        }
    }

    /// Feeds one raw sample of the monitored statistic.
    fn step_raw(&mut self, raw: f64) -> DetectorStep {
        let became = self.advance(raw);
        DetectorStep { verdict: self.verdict(), became_active: became, throttle: None }
    }

    /// Core update; returns `true` on an inactive→active transition.
    /// Crate-visible so the combined [`crate::sds::Sds`] batch loop can
    /// step the period channel with a pre-selected column.
    pub(crate) fn advance(&mut self, raw: f64) -> bool {
        let Some(m) = self.ma.push(raw) else {
            return false;
        };
        if self.window.len() == self.w_p {
            self.window.pop_front();
        }
        self.window.push_back(m);
        if self.window.len() < self.w_p {
            return false;
        }
        self.since_recompute += 1;
        if self.since_recompute < self.params.step_ma {
            return false;
        }
        self.since_recompute = 0;

        let series: Vec<f64> = self.window.iter().copied().collect();
        self.computations += 1;
        let estimate = self
            .period_detector
            .detect(&series)
            .ok()
            .flatten()
            .map(|e| e.period);
        self.last_period = estimate;
        let deviates = match estimate {
            Some(p) => {
                (p - self.normal_period).abs() / self.normal_period > self.params.deviation
            }
            // The periodic pattern vanished altogether: maximal deviation.
            None => true,
        };
        if deviates {
            self.consecutive = self.consecutive.saturating_add(1);
        } else {
            self.consecutive = 0;
        }
        let now_active = self.consecutive >= self.params.h_p;
        let became = now_active && !self.active;
        if became {
            self.activations += 1;
        }
        self.active = now_active;
        became
    }
}

impl Detector for SdsP {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_observation(&mut self, obs: Observation) -> DetectorStep {
        self.step_raw(obs.stat(self.params.stat))
    }

    /// Columnar stepping over the statistic's column: the statistic is
    /// selected once per batch instead of per observation and the loop
    /// is monomorphic (no virtual dispatch). `advance` is a single MA
    /// push on most ticks — the DFT-ACF recompute cadence dominates, so
    /// the equivalence with scalar stepping is structural: the body is
    /// `step_raw` with the column pre-selected.
    // hot-path
    fn step_batch(&mut self, batch: ObservationBatch<'_>, out: &mut Vec<DetectorStep>) {
        let col = batch.column(self.params.stat);
        out.reserve(col.len());
        for &raw in col {
            let became = self.advance(raw);
            out.push(DetectorStep {
                verdict: self.verdict(),
                became_active: became,
                throttle: None,
            });
        }
    }

    fn alarm_active(&self) -> bool {
        self.active
    }

    fn activations(&self) -> u64 {
        self.activations
    }

    fn resident_bytes_hint(&self) -> usize {
        SdsP::resident_bytes_hint(self)
    }
}

impl FromProfile for SdsP {
    type Params = SdsPParams;

    fn from_profile(profile: &Profile, params: &SdsPParams) -> Result<Self, CoreError> {
        SdsP::from_profile(profile, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small parameters so tests run on short signals: MA over 10 raw
    /// samples stepping 5, recompute every 2 MA values, H_P = 3.
    fn fast_params() -> SdsPParams {
        SdsPParams {
            window: 10,
            step: 5,
            window_periods: 2.0,
            step_ma: 2,
            h_p: 3,
            deviation: 0.2,
            ..SdsPParams::default()
        }
    }

    /// Feeds a square wave whose period is `period_ma` MA windows
    /// (period_ma * step raw samples per cycle).
    fn feed_square(d: &mut SdsP, period_ma: f64, ma_values: usize) -> bool {
        let raw_per_cycle = (period_ma * 5.0) as usize;
        let total_raw = ma_values * 5 + 10;
        let mut any = false;
        for i in 0..total_raw {
            let phase = (i % raw_per_cycle) < raw_per_cycle / 2;
            let v = if phase { 1000.0 } else { 200.0 };
            any |= d.step_raw(v).became_active;
        }
        any
    }

    #[test]
    fn quiet_on_normal_period() {
        let mut d = SdsP::new(fast_params(), 16.0).unwrap();
        feed_square(&mut d, 16.0, 300);
        assert!(!d.alarm_active(), "last period {:?}", d.last_period());
        assert!(d.computations() > 50);
    }

    #[test]
    fn detects_dilated_period() {
        let mut d = SdsP::new(fast_params(), 16.0).unwrap();
        feed_square(&mut d, 16.0, 100);
        assert!(!d.alarm_active());
        // Attack: period grows 50 %.
        let became = feed_square(&mut d, 24.0, 200);
        assert!(became || d.alarm_active(), "no alarm on dilation");
        // The dilated period (24) exceeds W_P / 2 (= 16), so DFT-ACF may
        // legitimately report nothing — both a dilated estimate and a
        // vanished estimate count as deviations.
        if let Some(p) = d.last_period() {
            assert!(
                (p - 16.0).abs() / 16.0 > 0.2,
                "estimate {p} should deviate from the normal period"
            );
        }
    }

    #[test]
    fn detects_destroyed_pattern() {
        let mut d = SdsP::new(fast_params(), 16.0).unwrap();
        feed_square(&mut d, 16.0, 100);
        // Pattern collapses to a constant: DFT-ACF finds nothing.
        for _ in 0..2000 {
            d.step_raw(500.0);
        }
        assert!(d.alarm_active());
    }

    #[test]
    fn small_fluctuation_within_tolerance_stays_quiet() {
        let mut d = SdsP::new(fast_params(), 16.0).unwrap();
        // 10 % longer period: below the 20 % threshold. The estimate may
        // jitter between windows, so require merely that a sustained
        // alarm does not form.
        feed_square(&mut d, 16.0, 100);
        feed_square(&mut d, 17.5, 200);
        assert!(!d.alarm_active(), "alarmed at ~9 % deviation");
    }

    #[test]
    fn window_size_is_two_periods() {
        let d = SdsP::new(fast_params(), 16.0).unwrap();
        assert_eq!(d.window_size(), 32);
        assert_eq!(d.normal_period(), 16.0);
    }

    #[test]
    fn rejects_tiny_period() {
        assert!(matches!(
            SdsP::new(fast_params(), 2.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(SdsP::new(fast_params(), f64::NAN).is_err());
    }

    #[test]
    fn from_profile_requires_periodicity() {
        use crate::profile::Profiler;
        let mut p = Profiler::default();
        for i in 0..3000 {
            p.observe(Observation {
                access_num: 100.0 + (i % 3) as f64,
                miss_num: 10.0,
            });
        }
        let profile = p.finish().unwrap();
        assert!(matches!(
            SdsP::from_profile(&profile, &SdsPParams::default()),
            Err(CoreError::NotPeriodic)
        ));
    }

    #[test]
    fn verdict_reflects_streak_then_alarm() {
        let mut d = SdsP::new(fast_params(), 16.0).unwrap();
        feed_square(&mut d, 16.0, 100);
        let mut last = DetectorStep::quiet();
        for _ in 0..5000 {
            last = d.on_observation(Observation { access_num: 500.0, miss_num: 0.0 });
            if d.alarm_active() {
                break;
            }
        }
        assert_eq!(last.verdict, Verdict::Alarm);
        assert!(last.became_active);
        assert_eq!(d.activations(), 1);
    }

    #[test]
    fn computation_cadence_follows_step_ma() {
        let mut d = SdsP::new(fast_params(), 16.0).unwrap();
        feed_square(&mut d, 16.0, 100);
        let c1 = d.computations();
        feed_square(&mut d, 16.0, 20); // 20 new MA values, step_ma = 2
        let c2 = d.computations();
        assert!((c2 - c1) >= 9 && (c2 - c1) <= 11, "delta {}", c2 - c1);
    }
}
