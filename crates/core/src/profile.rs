//! Stage-1 profiling: learning a VM's benign behaviour.
//!
//! §4.2.1: "It is reasonable to assume that a benign VM is in a safe
//! state (i.e., not under any attack) immediately after it is newly
//! started or migrated, since the malicious tenant needs to conduct VM
//! co-location again. The providers can collect the cache-related
//! statistics of a benign VM at that time."
//!
//! The [`Profiler`] consumes the VM's PCM statistics during that safe
//! window and produces a [`Profile`]:
//!
//! * per-statistic EWMA mean `μ_E` and standard deviation `σ_E` (the
//!   SDS/B normal range), and
//! * the periodicity classification (§4.2.2): DFT-ACF is run over the MA
//!   series "to check if there exists a relatively constant period where
//!   MA patterns repeat" — the period must be detected consistently in
//!   both halves of the profile and be strong enough.

use crate::config::SdsParams;
use crate::detector::Observation;
use crate::CoreError;
use memdos_stats::period::PeriodDetector;
use memdos_stats::series;
use memdos_stats::smoothing::Pipeline;

/// Profiled EWMA statistics of one cache statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatProfile {
    /// Mean `μ_E` of the EWMA series without attack.
    pub mu: f64,
    /// Standard deviation `σ_E` of the EWMA series without attack.
    pub sigma: f64,
    /// Number of EWMA values the estimate is based on.
    pub n: usize,
}

/// Profiled periodicity of a periodic application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodProfile {
    /// The normal period `p`, in MA windows.
    pub period_ma: f64,
    /// ACF strength of the period in `[0, 1]`.
    pub strength: f64,
}

/// The complete Stage-1 profile of one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Preprocessing parameters the profile was computed with (detectors
    /// built from this profile must use the same ones).
    pub params: SdsParams,
    /// `AccessNum` EWMA statistics.
    pub access: StatProfile,
    /// `MissNum` EWMA statistics.
    pub miss: StatProfile,
    /// Periodicity of the `AccessNum` MA series, when the application is
    /// classified as periodic.
    pub periodicity: Option<PeriodProfile>,
}

impl Profile {
    /// Whether the application was classified as periodic.
    pub fn is_periodic(&self) -> bool {
        self.periodicity.is_some()
    }

    /// Merges this profile with a newer one, weighting each statistic by
    /// its sample count — the §6 *re-profiling* hook: "the cloud
    /// providers could allow tenants to profile the statistics under
    /// different situations, or allow tenants to request re-profiling
    /// when they notice their applications change."
    ///
    /// The merged standard deviation accounts for both within-profile
    /// variance and the shift between the two profile means, so a
    /// bimodal application (e.g. day/night behaviour) gets a band wide
    /// enough to cover both modes. Periodicity is taken from the newer
    /// profile (the application may have changed batch size).
    pub fn merged_with(&self, newer: &Profile) -> Profile {
        fn merge(a: &StatProfile, b: &StatProfile) -> StatProfile {
            let n = (a.n + b.n).max(1);
            let wa = a.n as f64 / n as f64;
            let wb = b.n as f64 / n as f64;
            let mu = wa * a.mu + wb * b.mu;
            let var = wa * (a.sigma * a.sigma + (a.mu - mu) * (a.mu - mu))
                + wb * (b.sigma * b.sigma + (b.mu - mu) * (b.mu - mu));
            StatProfile { mu, sigma: var.sqrt(), n }
        }
        Profile {
            params: newer.params,
            access: merge(&self.access, &newer.access),
            miss: merge(&self.miss, &newer.miss),
            periodicity: newer.periodicity,
        }
    }
}

/// Configuration of the profiling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Preprocessing/detector parameters (Table 1 defaults).
    pub sds: SdsParams,
    /// Minimum ACF strength for the periodic classification.
    pub min_period_strength: f64,
    /// Maximum relative disagreement between the periods detected in the
    /// two halves of the profile.
    pub consistency_tolerance: f64,
    /// Minimum number of EWMA values the profile must contain.
    pub min_smoothed: usize,
}

impl ProfilerConfig {
    /// Validates the configuration — the same contract every detector
    /// params struct exposes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.sds.validate()?;
        if !(self.min_period_strength > 0.0 && self.min_period_strength <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "min_period_strength",
                reason: "must be in (0, 1]",
            });
        }
        if !(self.consistency_tolerance > 0.0 && self.consistency_tolerance < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "consistency_tolerance",
                reason: "must be in (0, 1)",
            });
        }
        if self.min_smoothed == 0 {
            return Err(CoreError::InvalidParameter {
                name: "min_smoothed",
                reason: "must be positive",
            });
        }
        Ok(())
    }
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            sds: SdsParams::default(),
            min_period_strength: 0.5,
            consistency_tolerance: 0.25,
            min_smoothed: 20,
        }
    }
}

/// Streaming Stage-1 profiler.
#[derive(Debug)]
pub struct Profiler {
    cfg: ProfilerConfig,
    access_pipe: Pipeline,
    miss_pipe: Pipeline,
    access_ma: Vec<f64>,
    access_ewma: Vec<f64>,
    miss_ewma: Vec<f64>,
    observations: u64,
}

impl Profiler {
    /// Creates a profiler.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the preprocessing
    /// parameters are invalid.
    pub fn new(cfg: ProfilerConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let b = &cfg.sds.sdsb;
        Ok(Profiler {
            access_pipe: Pipeline::new(b.window, b.step, b.alpha)?,
            miss_pipe: Pipeline::new(b.window, b.step, b.alpha)?,
            access_ma: Vec::new(),
            access_ewma: Vec::new(),
            miss_ewma: Vec::new(),
            observations: 0,
            cfg,
        })
    }

    /// Feeds one tick of PCM statistics.
    pub fn observe(&mut self, obs: Observation) {
        self.observations += 1;
        if let Some(s) = self.access_pipe.push(obs.access_num) {
            self.access_ma.push(s.ma);
            self.access_ewma.push(s.ewma);
        }
        if let Some(s) = self.miss_pipe.push(obs.miss_num) {
            self.miss_ewma.push(s.ewma);
        }
    }

    /// Number of raw observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Estimated heap bytes held by the profiler: both smoothing
    /// pipelines plus the recorded MA/EWMA series (which grow with the
    /// profiling window). Deterministic capacity accounting, used for
    /// fleet resident-memory estimates.
    pub fn resident_bytes_hint(&self) -> usize {
        std::mem::size_of::<Profiler>()
            + self.access_pipe.resident_bytes_hint()
            + self.miss_pipe.resident_bytes_hint()
            + (self.access_ma.capacity()
                + self.access_ewma.capacity()
                + self.miss_ewma.capacity())
                * std::mem::size_of::<f64>()
    }

    /// Finalises the profile.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientProfile`] when fewer than
    /// `min_smoothed` EWMA values were produced.
    pub fn finish(self) -> Result<Profile, CoreError> {
        if self.access_ewma.len() < self.cfg.min_smoothed {
            return Err(CoreError::InsufficientProfile {
                required: self.cfg.min_smoothed,
                actual: self.access_ewma.len(),
            });
        }
        let access = StatProfile {
            mu: series::mean(&self.access_ewma)?,
            sigma: series::std_dev(&self.access_ewma)?,
            n: self.access_ewma.len(),
        };
        let miss = StatProfile {
            mu: series::mean(&self.miss_ewma)?,
            sigma: series::std_dev(&self.miss_ewma)?,
            n: self.miss_ewma.len(),
        };
        let periodicity = classify_periodicity(
            &self.access_ma,
            self.cfg.min_period_strength,
            self.cfg.consistency_tolerance,
        );
        Ok(Profile { params: self.cfg.sds, access, miss, periodicity })
    }
}

impl Default for Profiler {
    /// A profiler with the Table 1 defaults.
    fn default() -> Self {
        // lint:allow(panic) -- ProfilerConfig::default() is a compile-time
        // constant whose validity is pinned by unit tests.
        Profiler::new(ProfilerConfig::default()).expect("default parameters are valid")
    }
}

/// Runs the §4.2.2 periodicity check on an MA series: DFT-ACF must find a
/// strong period, and the periods detected in the two halves of the
/// series must agree within `tolerance` (a "relatively constant period").
///
/// Returns `None` for non-periodic series.
pub fn classify_periodicity(
    ma: &[f64],
    min_strength: f64,
    tolerance: f64,
) -> Option<PeriodProfile> {
    if ma.len() < 16 {
        return None;
    }
    // Amplitude floor: a micro-ripple on an otherwise flat series (e.g.
    // deterministic aliasing between the MA window and a fast loop in the
    // application) can autocorrelate perfectly yet carries no usable
    // periodic structure for SDS/P — the attack signal is a change in the
    // *macroscopic* batch pattern. Require the peak-to-peak swing to be
    // at least 5 % of the mean level.
    let mean = ma.iter().sum::<f64>() / ma.len() as f64;
    let max = ma.iter().cloned().fold(f64::MIN, f64::max);
    let min = ma.iter().cloned().fold(f64::MAX, f64::min);
    if (max - min) < 0.05 * mean.abs() {
        return None;
    }
    let det = PeriodDetector::default();
    let full = det.detect(ma).ok()??;
    if full.strength < min_strength {
        return None;
    }
    let half = ma.len() / 2;
    let first = det.detect(&ma[..half]).ok().flatten()?;
    let second = det.detect(&ma[half..]).ok().flatten()?;
    let spread = (first.period - second.period).abs() / full.period;
    if spread > tolerance {
        return None;
    }
    // The period must actually fit the monitoring window construction:
    // W_P = 2p needs p ≥ a few MA values.
    if full.period < 4.0 {
        return None;
    }
    Some(PeriodProfile { period_ma: full.period, strength: full.strength })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_signal(
        profiler: &mut Profiler,
        n: usize,
        f: impl Fn(usize) -> (f64, f64),
    ) {
        for i in 0..n {
            let (a, m) = f(i);
            profiler.observe(Observation { access_num: a, miss_num: m });
        }
    }

    #[test]
    fn profiles_stationary_signal() {
        let mut p = Profiler::default();
        observe_signal(&mut p, 5000, |i| {
            (1000.0 + (i % 11) as f64, 50.0 + (i % 7) as f64)
        });
        let profile = p.finish().unwrap();
        assert!((profile.access.mu - 1005.0).abs() < 3.0);
        assert!(profile.access.sigma < 5.0);
        assert!((profile.miss.mu - 53.0).abs() < 3.0);
        assert!(!profile.is_periodic());
    }

    #[test]
    fn detects_periodic_signal() {
        // Square wave with period 1000 raw ticks = 20 MA windows (ΔW=50).
        let mut p = Profiler::default();
        observe_signal(&mut p, 10_000, |i| {
            let phase = (i / 500) % 2;
            let a = if phase == 0 { 1200.0 } else { 400.0 };
            (a + (i % 13) as f64, 30.0)
        });
        let profile = p.finish().unwrap();
        let period = profile.periodicity.expect("square wave is periodic");
        assert!(
            (15.0..=25.0).contains(&period.period_ma),
            "period {} MA windows",
            period.period_ma
        );
        assert!(period.strength > 0.5);
    }

    #[test]
    fn insufficient_data_errors() {
        let mut p = Profiler::default();
        observe_signal(&mut p, 300, |_| (100.0, 10.0));
        assert!(matches!(
            p.finish(),
            Err(CoreError::InsufficientProfile { .. })
        ));
    }

    #[test]
    fn observation_counter() {
        let mut p = Profiler::default();
        observe_signal(&mut p, 42, |_| (1.0, 1.0));
        assert_eq!(p.observations(), 42);
    }

    #[test]
    fn classify_rejects_short_and_weak() {
        assert!(classify_periodicity(&[1.0; 10], 0.5, 0.25).is_none());
        // Aperiodic noise from a xorshift generator.
        let mut s = 0x1234_5678_9abc_def0u64;
        let noise: Vec<f64> = (0..200)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as f64
            })
            .collect();
        assert!(classify_periodicity(&noise, 0.5, 0.25).is_none());
    }

    #[test]
    fn classify_rejects_micro_ripple_on_flat_level() {
        // A deterministic 0.1 % ripple autocorrelates perfectly but must
        // not count as periodicity (amplitude floor).
        let ripple: Vec<f64> = (0..300)
            .map(|i| 1000.0 + (2.0 * std::f64::consts::PI * i as f64 / 20.0).sin())
            .collect();
        assert!(classify_periodicity(&ripple, 0.5, 0.25).is_none());
    }

    #[test]
    fn classify_rejects_inconsistent_halves() {
        // First half period 10, second half period 23: not "relatively
        // constant".
        let mut signal = Vec::new();
        for i in 0..150 {
            signal.push((2.0 * std::f64::consts::PI * i as f64 / 10.0).sin());
        }
        for i in 0..150 {
            signal.push((2.0 * std::f64::consts::PI * i as f64 / 23.0).sin());
        }
        assert!(classify_periodicity(&signal, 0.5, 0.25).is_none());
    }

    #[test]
    fn merged_profile_covers_both_modes() {
        let mk = |mu: f64, sigma: f64, n: usize| StatProfile { mu, sigma, n };
        let day = Profile {
            params: Default::default(),
            access: mk(1000.0, 10.0, 100),
            miss: mk(50.0, 5.0, 100),
            periodicity: None,
        };
        let night = Profile {
            params: Default::default(),
            access: mk(400.0, 10.0, 100),
            miss: mk(20.0, 5.0, 100),
            periodicity: None,
        };
        let merged = day.merged_with(&night);
        // Equal weights: mean in the middle, sigma spans the mode gap.
        assert_eq!(merged.access.mu, 700.0);
        assert!(merged.access.sigma > 290.0, "sigma {}", merged.access.sigma);
        assert_eq!(merged.access.n, 200);
        // Each mode lies within ~1.05 sigma of the merged mean.
        assert!((1000.0 - merged.access.mu) / merged.access.sigma < 1.125);
    }

    #[test]
    fn merged_profile_respects_sample_weights() {
        let mk = |mu: f64, n: usize| StatProfile { mu, sigma: 1.0, n };
        let big = Profile {
            params: Default::default(),
            access: mk(100.0, 900),
            miss: mk(10.0, 900),
            periodicity: None,
        };
        let small = Profile {
            params: Default::default(),
            access: mk(200.0, 100),
            miss: mk(20.0, 100),
            periodicity: None,
        };
        let merged = big.merged_with(&small);
        assert!((merged.access.mu - 110.0).abs() < 1e-9);
    }

    #[test]
    fn classify_accepts_clean_sine() {
        let signal: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 18.0).sin())
            .collect();
        let p = classify_periodicity(&signal, 0.5, 0.25).expect("sine is periodic");
        assert!((p.period_ma - 18.0).abs() < 1.0);
    }
}
