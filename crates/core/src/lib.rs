//! # memdos-core
//!
//! The primary contribution of *"Impact of Memory DoS Attacks on Cloud
//! Applications and Real-Time Detection Schemes"* (ICPP '20): real-time,
//! lightweight, statistical detection of memory denial-of-service attacks
//! between co-located VMs — plus the prior-work baseline it is evaluated
//! against.
//!
//! ## The detection schemes
//!
//! * [`sdsb::SdsB`] — the **Boundary-based Statistical Detection Scheme**
//!   (§4.2.1). Raw PCM statistics are smoothed through a sliding-window
//!   moving average (Eq. 1) and an EWMA (Eq. 2); an attack is inferred
//!   when `H_C` consecutive EWMA values leave the Chebyshev normal range
//!   `[μ_E − kσ_E, μ_E + kσ_E]` (Eq. 3–4). Works for every application.
//! * [`sdsp::SdsP`] — the **Period-based Statistical Detection Scheme**
//!   (§4.2.2), for *periodic* applications only. The period of the MA
//!   series is re-estimated with DFT-ACF every `ΔW_P` windows; `H_P`
//!   consecutive estimates deviating >20 % from the profiled period raise
//!   the alarm (attacks *dilate* the period — Observation 2).
//! * [`sds::Sds`] — the combined system (§5.1): SDS/B alone for
//!   non-periodic applications; for periodic applications both SDS/B
//!   *and* SDS/P must agree, eliminating false positives.
//! * [`kstest::KsTestDetector`] — the baseline of Zhang et al.
//!   (AsiaCCS '17): throttle all other VMs to collect reference samples,
//!   then declare an attack after four consecutive two-sample
//!   Kolmogorov–Smirnov rejections. Implemented with its full protocol
//!   (`L_R`/`W_R`/`L_M`/`W_M` scheduling and throttling requests) so its
//!   false positives, detection delay and throttling overhead can be
//!   reproduced.
//!
//! ## Workflow
//!
//! 1. **Profile** (Stage 1): immediately after a VM starts or migrates —
//!    when it is known not to be co-located with an attacker — feed its
//!    PCM statistics to a [`profile::Profiler`] to obtain the per-stat
//!    mean/deviation and the periodicity classification.
//! 2. **Monitor**: construct a detector from the profile and feed it one
//!    [`detector::Observation`] per `T_PCM` tick. SDS needs nothing else;
//!    the KStest baseline additionally emits
//!    [`detector::ThrottleRequest`]s that the hypervisor must honour.
//!
//! ```rust
//! use memdos_core::config::SdsParams;
//! use memdos_core::detector::{Detector, Observation};
//! use memdos_core::profile::Profiler;
//! use memdos_core::sds::Sds;
//!
//! // Stage 1: profile 3000 ticks of a (synthetic) benign signal.
//! let mut profiler = Profiler::default();
//! for i in 0..3000u64 {
//!     let wiggle = (i % 7) as f64;
//!     profiler.observe(Observation { access_num: 1000.0 + wiggle, miss_num: 50.0 + wiggle });
//! }
//! let profile = profiler.finish()?;
//!
//! // Stage 2: monitor in real time — same distribution, no alarm.
//! let mut sds = Sds::from_profile(&profile, &SdsParams::default())?;
//! for i in 0..2000u64 {
//!     let wiggle = (i % 7) as f64;
//!     sds.on_observation(Observation { access_num: 1000.0 + wiggle, miss_num: 50.0 + wiggle });
//! }
//! assert!(!sds.alarm_active()); // benign traffic: no alarm
//! # Ok::<(), memdos_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod kstest;
pub mod profile;
pub mod sds;
pub mod sdsb;
pub mod sdsp;

mod error;

pub use error::CoreError;
