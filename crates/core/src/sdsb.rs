//! SDS/B — the Boundary-based Statistical Detection Scheme (§4.2.1).
//!
//! Pipeline per monitored statistic: raw PCM samples → sliding-window MA
//! (Eq. 1) → EWMA (Eq. 2) → boundary condition `C_n` (Eq. 3) against the
//! profiled normal range `[μ_E − kσ_E, μ_E + kσ_E]` → alarm after `H_C`
//! consecutive violations. Chebyshev's inequality (Eq. 4) bounds the
//! false-alarm probability at `(1/k²)^{H_C}` for *any* underlying
//! distribution, which is what makes the scheme robust across
//! applications.
//!
//! A single [`SdsB`] instance monitors one statistic (chosen by
//! [`SdsBParams::stat`]); the combined [`crate::sds::Sds`] runs one
//! instance on `AccessNum` (bus-locking attacks drive it *below* range)
//! and one on `MissNum` (cleansing attacks drive it *above* range).
//!
//! Stepping goes exclusively through [`Detector::on_observation`]; the
//! raw-sample path is private so every caller sees the same
//! [`DetectorStep`]/[`Verdict`] surface.

use crate::config::SdsBParams;
use crate::detector::{
    Detector, DetectorStep, FromProfile, Observation, ObservationBatch, Verdict,
};
use crate::profile::{Profile, StatProfile};
use crate::CoreError;
use memdos_sim::pcm::Stat;
use memdos_stats::bounds::NormalRange;
use memdos_stats::smoothing::Pipeline;

/// The SDS/B online detector for one cache statistic.
#[derive(Debug)]
pub struct SdsB {
    params: SdsBParams,
    range: NormalRange,
    pipeline: Pipeline,
    consecutive: u32,
    active: bool,
    activations: u64,
    last_ewma: Option<f64>,
    name: String,
}

impl SdsB {
    /// Creates a detector from a profiled mean and standard deviation of
    /// the statistic selected by `params.stat`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid `params` or a
    /// degenerate profile (negative or NaN `sigma`).
    pub fn new(params: SdsBParams, mu: f64, sigma: f64) -> Result<Self, CoreError> {
        params.validate()?;
        let range = NormalRange::new(mu, sigma, params.k).map_err(|_| {
            CoreError::InvalidParameter {
                name: "profile",
                reason: "profiled mean/deviation must be finite with sigma >= 0",
            }
        })?;
        Ok(SdsB {
            pipeline: Pipeline::new(params.window, params.step, params.alpha)?,
            range,
            consecutive: 0,
            active: false,
            activations: 0,
            last_ewma: None,
            // lint:allow(hot-propagate) -- the detector name is built once at construction (session open), never while sampling
            name: format!("SDS/B[{}]", params.stat),
            params,
        })
    }

    /// Creates a detector from a Stage-1 [`Profile`], monitoring the
    /// statistic selected by `params.stat`.
    ///
    /// # Errors
    ///
    /// See [`SdsB::new`].
    pub fn from_profile(profile: &Profile, params: &SdsBParams) -> Result<Self, CoreError> {
        let sp: &StatProfile = match params.stat {
            Stat::AccessNum => &profile.access,
            Stat::MissNum => &profile.miss,
        };
        SdsB::new(*params, sp.mu, sp.sigma)
    }

    /// The normal range in use.
    pub fn range(&self) -> NormalRange {
        self.range
    }

    /// The statistic this instance monitors.
    pub fn stat(&self) -> Stat {
        self.params.stat
    }

    /// Parameters in use.
    pub fn params(&self) -> &SdsBParams {
        &self.params
    }

    /// Current consecutive-violation count.
    pub fn consecutive_violations(&self) -> u32 {
        self.consecutive
    }

    /// The most recent EWMA value `S_n`, if a window has completed.
    pub fn last_ewma(&self) -> Option<f64> {
        self.last_ewma
    }

    /// Estimated heap bytes held by this channel (the smoothing
    /// pipeline's ring buffer plus the rendered name). Deterministic
    /// capacity accounting, used for fleet resident-memory estimates.
    pub fn resident_bytes_hint(&self) -> usize {
        self.pipeline.resident_bytes_hint() + self.name.capacity()
    }

    /// Verdict reflecting the current counter/alarm state.
    fn verdict(&self) -> Verdict {
        if self.active {
            Verdict::Alarm
        } else if self.consecutive > 0 {
            Verdict::Suspicious { consecutive: self.consecutive }
        } else {
            Verdict::Normal
        }
    }

    /// Feeds one raw sample of the monitored statistic. Crate-visible so
    /// the combined [`crate::sds::Sds`] batch loop can step its channels
    /// with pre-selected columns; external callers go through
    /// [`Detector::on_observation`].
    pub(crate) fn step_raw(&mut self, raw: f64) -> DetectorStep {
        let mut became = false;
        if let Some(s) = self.pipeline.push(raw) {
            self.last_ewma = Some(s.ewma);
            if self.range.is_violation(s.ewma) {
                self.consecutive = self.consecutive.saturating_add(1);
            } else {
                self.consecutive = 0;
            }
            let now_active = self.consecutive >= self.params.h_c;
            became = now_active && !self.active;
            if became {
                self.activations += 1;
            }
            self.active = now_active;
        }
        DetectorStep { verdict: self.verdict(), became_active: became, throttle: None }
    }
}

impl Detector for SdsB {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_observation(&mut self, obs: Observation) -> DetectorStep {
        self.step_raw(obs.stat(self.params.stat))
    }

    /// Columnar stepping: one pass over the statistic's column with the
    /// verdict cached between pipeline emissions, so the per-sample work
    /// between window steps is a single `Pipeline::push` and a copy —
    /// no virtual dispatch, no statistic re-selection, no verdict
    /// recomputation. Bit-identical to the scalar loop by construction
    /// (the emission arm is `step_raw`'s body verbatim).
    // hot-path
    fn step_batch(&mut self, batch: ObservationBatch<'_>, out: &mut Vec<DetectorStep>) {
        let col = batch.column(self.params.stat);
        out.reserve(col.len());
        let mut quiet = DetectorStep { verdict: self.verdict(), became_active: false, throttle: None };
        for &raw in col {
            if let Some(s) = self.pipeline.push(raw) {
                self.last_ewma = Some(s.ewma);
                if self.range.is_violation(s.ewma) {
                    self.consecutive = self.consecutive.saturating_add(1);
                } else {
                    self.consecutive = 0;
                }
                let now_active = self.consecutive >= self.params.h_c;
                let became = now_active && !self.active;
                if became {
                    self.activations += 1;
                }
                self.active = now_active;
                quiet = DetectorStep { verdict: self.verdict(), became_active: false, throttle: None };
                out.push(DetectorStep { verdict: quiet.verdict, became_active: became, throttle: None });
            } else {
                out.push(quiet);
            }
        }
    }

    fn alarm_active(&self) -> bool {
        self.active
    }

    fn activations(&self) -> u64 {
        self.activations
    }

    fn resident_bytes_hint(&self) -> usize {
        SdsB::resident_bytes_hint(self)
    }
}

impl FromProfile for SdsB {
    type Params = SdsBParams;

    fn from_profile(profile: &Profile, params: &SdsBParams) -> Result<Self, CoreError> {
        SdsB::from_profile(profile, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameters that react quickly, for compact tests.
    fn fast_params() -> SdsBParams {
        SdsBParams { window: 10, step: 5, alpha: 0.5, k: 2.0, h_c: 3, ..SdsBParams::default() }
    }

    fn miss_params() -> SdsBParams {
        SdsBParams { stat: Stat::MissNum, ..fast_params() }
    }

    fn feed(d: &mut SdsB, value: f64, n: usize) -> bool {
        let mut any = false;
        for _ in 0..n {
            any |= d.step_raw(value).became_active;
        }
        any
    }

    #[test]
    fn stays_quiet_within_range() {
        let mut d = SdsB::new(fast_params(), 100.0, 10.0).unwrap();
        assert!(!feed(&mut d, 105.0, 500));
        assert!(!d.alarm_active());
        assert_eq!(d.activations(), 0);
    }

    #[test]
    fn detects_drop_below_range() {
        // Bus-locking signature: AccessNum collapses.
        let mut d = SdsB::new(fast_params(), 100.0, 10.0).unwrap();
        feed(&mut d, 100.0, 100);
        assert!(!d.alarm_active());
        let became = feed(&mut d, 20.0, 200);
        assert!(became);
        assert!(d.alarm_active());
        assert_eq!(d.activations(), 1);
    }

    #[test]
    fn detects_rise_above_range() {
        // Cleansing signature: MissNum inflates.
        let mut d = SdsB::new(miss_params(), 50.0, 5.0).unwrap();
        feed(&mut d, 50.0, 100);
        feed(&mut d, 300.0, 200);
        assert!(d.alarm_active());
    }

    #[test]
    fn needs_h_c_consecutive_violations() {
        // α = 1 (no EWMA memory) and non-overlapping windows isolate the
        // consecutive-counter logic: 3 violating windows < H_C = 4.
        let params = SdsBParams {
            window: 10,
            step: 10,
            alpha: 1.0,
            k: 2.0,
            h_c: 4,
            ..SdsBParams::default()
        };
        let mut d = SdsB::new(params, 100.0, 10.0).unwrap();
        feed(&mut d, 100.0, 50);
        feed(&mut d, 0.0, 30); // exactly 3 violating windows
        assert_eq!(d.consecutive_violations(), 3);
        assert!(!d.alarm_active());
        feed(&mut d, 100.0, 10); // a clean window resets the streak
        assert_eq!(d.consecutive_violations(), 0);
        feed(&mut d, 0.0, 40); // 4 violating windows reach H_C
        assert!(d.alarm_active());
        assert_eq!(d.activations(), 1);
    }

    #[test]
    fn alarm_clears_when_condition_clears() {
        let mut d = SdsB::new(fast_params(), 100.0, 1.0).unwrap();
        feed(&mut d, 100.0, 50);
        feed(&mut d, 0.0, 100);
        assert!(d.alarm_active());
        // EWMA needs a while to recover into range; keep feeding normal.
        feed(&mut d, 100.0, 200);
        assert!(!d.alarm_active());
        // Re-attack: a second activation.
        feed(&mut d, 0.0, 100);
        assert!(d.alarm_active());
        assert_eq!(d.activations(), 2);
    }

    #[test]
    fn verdict_tracks_streak_and_alarm() {
        let params = SdsBParams {
            window: 10,
            step: 10,
            alpha: 1.0,
            k: 2.0,
            h_c: 4,
            ..SdsBParams::default()
        };
        let mut d = SdsB::new(params, 100.0, 10.0).unwrap();
        let mut last = DetectorStep::quiet();
        for _ in 0..50 {
            last = d.on_observation(Observation { access_num: 100.0, miss_num: 0.0 });
        }
        assert_eq!(last.verdict, Verdict::Normal);
        for _ in 0..20 {
            last = d.on_observation(Observation { access_num: 0.0, miss_num: 0.0 });
        }
        assert_eq!(d.consecutive_violations(), 2);
        assert_eq!(last.verdict, Verdict::Suspicious { consecutive: 2 });
        for _ in 0..20 {
            last = d.on_observation(Observation { access_num: 0.0, miss_num: 0.0 });
        }
        assert_eq!(last.verdict, Verdict::Alarm);
        assert!(d.alarm_active());
    }

    #[test]
    fn detector_trait_selects_stat() {
        let mut d = SdsB::new(miss_params(), 50.0, 5.0).unwrap();
        // Access wildly anomalous, miss normal: a MissNum detector must
        // not react.
        for _ in 0..300 {
            d.on_observation(Observation { access_num: 100_000.0, miss_num: 51.0 });
        }
        assert!(!d.alarm_active());
        assert!(d.name().contains("MissNum"));
    }

    #[test]
    fn from_profile_uses_right_channel() {
        use crate::profile::Profiler;
        let mut p = Profiler::default();
        for i in 0..4000 {
            p.observe(Observation {
                access_num: 1000.0 + (i % 10) as f64,
                miss_num: 100.0 + (i % 5) as f64,
            });
        }
        let profile = p.finish().unwrap();
        let a = SdsB::from_profile(&profile, &SdsBParams::default()).unwrap();
        let m = SdsB::from_profile(
            &profile,
            &SdsBParams { stat: Stat::MissNum, ..SdsBParams::default() },
        )
        .unwrap();
        assert!(a.range().lower > 900.0 && a.range().upper < 1100.0);
        assert!(m.range().lower > 80.0 && m.range().upper < 120.0);
    }

    #[test]
    fn rejects_bad_profile() {
        assert!(SdsB::new(fast_params(), f64::NAN, 1.0).is_err());
        assert!(SdsB::new(fast_params(), 1.0, -1.0).is_err());
    }

    #[test]
    fn min_delay_bound_holds() {
        // The alarm cannot fire before H_C · ΔW raw samples after the
        // anomaly starts (§4.2.1).
        let params = fast_params(); // H_C=3, ΔW=5 → ≥15 samples
        let mut d = SdsB::new(params, 100.0, 1.0).unwrap();
        feed(&mut d, 100.0, 100);
        let mut samples_to_alarm = 0;
        for i in 1..=1000 {
            if d.step_raw(0.0).became_active {
                samples_to_alarm = i;
                break;
            }
        }
        assert!(samples_to_alarm >= params.min_detection_delay_ticks(),
            "alarm after {samples_to_alarm} samples, bound {}",
            params.min_detection_delay_ticks());
    }
}
