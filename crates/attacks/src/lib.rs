//! # memdos-attacks
//!
//! The two memory denial-of-service attacks of §2.2, implemented as guest
//! programs for the `memdos-sim` server:
//!
//! * [`bus_lock::BusLockAttack`] — the **atomic bus locking attack**:
//!   "the attack VM ... generates continuous atomic locking signals by
//!   repeatedly requesting atomic operations, which prevents the
//!   co-located VMs from using the memory bus resources".
//! * [`llc_cleanse::LlcCleanseAttack`] — the **LLC cleansing attack**,
//!   including the probe prelude: the attacker first primes and probes
//!   every cache set to discover which sets other VMs occupy, then
//!   repeatedly cleanses exactly those sets.
//!
//! [`schedule::Scheduled`] wraps any program with an activation window so
//! experiments can run the paper's protocol (benign stage, then attack
//! stage at a known launch time), and [`AttackKind`] gives the experiment
//! harness a uniform way to instantiate either attack.
//!
//! ## Example
//!
//! ```rust
//! use memdos_attacks::{AttackKind, schedule::Scheduled};
//! use memdos_sim::server::{Server, ServerConfig};
//!
//! let mut server = Server::new(ServerConfig::default());
//! let geometry = server.config().geometry;
//! // Attack goes live at tick 1000.
//! let attacker = Scheduled::starting_at(1000, AttackKind::BusLocking.build(geometry));
//! server.add_vm("attacker", Box::new(attacker));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus_lock;
pub mod llc_cleanse;
pub mod schedule;

use memdos_sim::cache::CacheGeometry;
use memdos_sim::program::VmProgram;

/// The two memory-DoS attack types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Atomic bus locking (victim signal: `AccessNum` drop).
    BusLocking,
    /// LLC cleansing (victim signal: `MissNum` rise).
    LlcCleansing,
}

impl AttackKind {
    /// Both attack kinds.
    pub const ALL: [AttackKind; 2] = [AttackKind::BusLocking, AttackKind::LlcCleansing];

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::BusLocking => "bus-locking",
            AttackKind::LlcCleansing => "llc-cleansing",
        }
    }

    /// The memory-level parallelism the attack VM should run with:
    /// the bus-locking attack is inherently serial (one lock stream
    /// already saturates the bus), while the cleansing attack is run
    /// multi-threaded, as in Zhang et al.'s implementation, to sweep the
    /// LLC fast enough to keep victim lines evicted.
    pub fn default_parallelism(&self) -> u8 {
        match self {
            AttackKind::BusLocking => 1,
            AttackKind::LlcCleansing => 8,
        }
    }

    /// Builds the attack program with default intensity for a cache of
    /// the given geometry.
    pub fn build(&self, geometry: CacheGeometry) -> Box<dyn VmProgram> {
        match self {
            AttackKind::BusLocking => Box::new(bus_lock::BusLockAttack::new(
                bus_lock::BusLockConfig::default(),
            )),
            AttackKind::LlcCleansing => Box::new(llc_cleanse::LlcCleanseAttack::new(
                llc_cleanse::LlcCleanseConfig::for_geometry(geometry),
            )),
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_defaults() {
        assert_eq!(AttackKind::BusLocking.default_parallelism(), 1);
        assert_eq!(AttackKind::LlcCleansing.default_parallelism(), 8);
    }

    #[test]
    fn kind_names() {
        assert_eq!(AttackKind::BusLocking.name(), "bus-locking");
        assert_eq!(AttackKind::LlcCleansing.to_string(), "llc-cleansing");
        assert_eq!(AttackKind::ALL.len(), 2);
    }

    #[test]
    fn builds_both_kinds() {
        let g = CacheGeometry::default();
        assert_eq!(AttackKind::BusLocking.build(g).name(), "bus-lock-attack");
        assert_eq!(AttackKind::LlcCleansing.build(g).name(), "llc-cleanse-attack");
    }
}
