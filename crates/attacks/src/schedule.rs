//! Attack scheduling: activation windows for guest programs.
//!
//! The paper's experiments run in stages — e.g. §5.1: "During the first
//! 300 seconds, we did not launch any attacks ... During the last 300
//! seconds, we performed the bus locking attack or LLC cleansing attack".
//! [`Scheduled`] wraps any program so that outside its activation window
//! the VM sits (almost) idle, exactly like an attack VM waiting for its
//! launch command.

use memdos_sim::program::{MemOp, ProgramCtx, VmProgram};

/// Wraps a program with an activation window `[start_tick, stop_tick)`.
///
/// Outside the window the VM performs idle compute with a trickle of
/// memory traffic (a real parked VM still touches memory occasionally,
/// and a completely silent VM would itself be an anomaly).
pub struct Scheduled<P> {
    inner: P,
    start_tick: u64,
    stop_tick: u64,
    idle_line: u64,
}

impl<P: VmProgram> Scheduled<P> {
    /// Activates `inner` from `start_tick` onwards, forever.
    pub fn starting_at(start_tick: u64, inner: P) -> Self {
        Scheduled { inner, start_tick, stop_tick: u64::MAX, idle_line: 0 }
    }

    /// Activates `inner` during `[start_tick, stop_tick)`.
    ///
    /// # Panics
    ///
    /// Panics if `start_tick >= stop_tick`.
    pub fn window(start_tick: u64, stop_tick: u64, inner: P) -> Self {
        assert!(start_tick < stop_tick, "activation window must be non-empty");
        Scheduled { inner, start_tick, stop_tick, idle_line: 0 }
    }

    /// Tick at which the inner program activates.
    pub fn start_tick(&self) -> u64 {
        self.start_tick
    }

    /// Whether the inner program is active at `tick`.
    pub fn is_active_at(&self, tick: u64) -> bool {
        (self.start_tick..self.stop_tick).contains(&tick)
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Replaces the wrapped program, returning the old one. The
    /// scheduling state (window and parked-traffic cursor) is kept, so a
    /// forked shared prefix can re-target a parked attacker to a
    /// different payload and remain byte-identical to a from-scratch run
    /// of that payload — the parked path never touches `inner`.
    pub fn swap_inner(&mut self, inner: P) -> P {
        std::mem::replace(&mut self.inner, inner)
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for Scheduled<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("start_tick", &self.start_tick)
            .field("stop_tick", &self.stop_tick)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<P: VmProgram + 'static> VmProgram for Scheduled<P> {
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
        if self.is_active_at(ctx.tick) {
            self.inner.next_op(ctx)
        } else {
            // Parked: long compute stretches with a rare touch of a tiny
            // working set.
            if ctx.rng.chance(0.02) {
                self.idle_line = (self.idle_line + 1) % 16;
                MemOp::read(self.idle_line)
            } else {
                MemOp::Compute { cycles: 5_000 }
            }
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn work_completed(&self) -> u64 {
        self.inner.work_completed()
    }

    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        // The clone erases `P` to `Box<dyn VmProgram>`; downcasts of a
        // cloned attacker must target `Scheduled<Box<dyn VmProgram>>`.
        Some(Box::new(Scheduled {
            inner: self.inner.clone_box()?,
            start_tick: self.start_tick,
            stop_tick: self.stop_tick,
            idle_line: self.idle_line,
        }))
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus_lock::{BusLockAttack, BusLockConfig};
    use memdos_sim::rng::Rng;

    fn ops_at_tick<P: VmProgram + 'static>(p: &mut Scheduled<P>, tick: u64, n: usize) -> Vec<MemOp> {
        let mut rng = Rng::new(9);
        let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: None, tick };
        (0..n).map(|_| p.next_op(&mut ctx)).collect()
    }

    #[test]
    fn idle_before_start() {
        let mut s =
            Scheduled::starting_at(100, BusLockAttack::new(BusLockConfig::default()));
        let before = ops_at_tick(&mut s, 99, 50);
        assert!(before.iter().all(|op| !matches!(op, MemOp::Atomic { .. })));
        assert!(!s.is_active_at(99));
    }

    #[test]
    fn active_within_window() {
        let mut s =
            Scheduled::window(100, 200, BusLockAttack::new(BusLockConfig::default()));
        let during = ops_at_tick(&mut s, 150, 10);
        assert!(during.iter().any(|op| matches!(op, MemOp::Atomic { .. })));
        assert!(s.is_active_at(100));
        assert!(!s.is_active_at(200));
    }

    #[test]
    fn idle_after_stop() {
        let mut s =
            Scheduled::window(0, 10, BusLockAttack::new(BusLockConfig::default()));
        let after = ops_at_tick(&mut s, 10, 50);
        assert!(after.iter().all(|op| !matches!(op, MemOp::Atomic { .. })));
    }

    #[test]
    fn name_delegates_to_inner() {
        let s = Scheduled::starting_at(0, BusLockAttack::new(BusLockConfig::default()));
        assert_eq!(s.name(), "bus-lock-attack");
        assert_eq!(s.start_tick(), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_window() {
        Scheduled::window(5, 5, BusLockAttack::new(BusLockConfig::default()));
    }
}
