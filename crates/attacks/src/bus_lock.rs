//! The atomic bus locking attack.
//!
//! Modern x86 processors serialise certain atomic operations — classically
//! a locked read-modify-write spanning two cache lines — by locking the
//! internal memory buses of the whole socket (§2.2, Intel SDM vol. 3B).
//! The attack issues such operations back to back at a configurable duty
//! cycle: at duty `d`, the bus is held locked roughly a fraction `d` of
//! the time, so co-located VMs can complete only about a `1 − d` share of
//! their normal LLC accesses — the `AccessNum` collapse of Figures 2–6(a).

use memdos_sim::program::{MemOp, ProgramCtx, VmProgram};

/// Intensity parameters of the bus-locking attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusLockConfig {
    /// Target fraction of time the bus is held locked, in `(0, 1]`.
    pub duty: f64,
    /// Bus-lock duration of one atomic op in cycles; must match the
    /// server's `atomic_lock_cycles` for the duty computation to be
    /// exact.
    pub lock_cycles: u64,
    /// Number of distinct lines the attacker's atomics touch (it cycles
    /// through a small buffer, as the real exploit does with a
    /// line-spanning buffer).
    pub buffer_lines: u64,
}

impl Default for BusLockConfig {
    fn default() -> Self {
        BusLockConfig { duty: 0.95, lock_cycles: 800, buffer_lines: 64 }
    }
}

/// The bus-locking attack program.
#[derive(Debug, Clone)]
pub struct BusLockAttack {
    cfg: BusLockConfig,
    next_line: u64,
    /// Alternation state: an atomic has just been issued and the duty
    /// gap is owed.
    gap_owed: bool,
    atomics_issued: u64,
}

impl BusLockAttack {
    /// Creates the attack with the given intensity.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is not in `(0, 1]` or `lock_cycles == 0`.
    pub fn new(cfg: BusLockConfig) -> Self {
        assert!(
            cfg.duty > 0.0 && cfg.duty <= 1.0,
            "duty cycle must be in (0, 1]"
        );
        assert!(cfg.lock_cycles > 0, "lock duration must be positive");
        assert!(cfg.buffer_lines > 0, "attack buffer must be non-empty");
        BusLockAttack { cfg, next_line: 0, gap_owed: false, atomics_issued: 0 }
    }

    /// Number of atomic operations issued so far.
    pub fn atomics_issued(&self) -> u64 {
        self.atomics_issued
    }

    /// Average inter-atomic compute gap that realises the configured duty
    /// cycle: `lock · (1 − d) / d`.
    fn mean_gap_cycles(&self) -> f64 {
        self.cfg.lock_cycles as f64 * (1.0 - self.cfg.duty) / self.cfg.duty
    }
}

impl VmProgram for BusLockAttack {
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
        if self.gap_owed {
            self.gap_owed = false;
            let mean = self.mean_gap_cycles();
            if mean >= 1.0 {
                // Jitter the gap ±50 % so the lock train is not perfectly
                // regular (the real attack contends with its own pipeline).
                let jittered = mean * (0.5 + ctx.rng.next_f64());
                return MemOp::Compute { cycles: jittered.max(1.0) as u32 };
            }
        }
        self.gap_owed = true;
        self.atomics_issued += 1;
        let line = self.next_line;
        self.next_line = (self.next_line + 1) % self.cfg.buffer_lines;
        MemOp::Atomic { line }
    }

    fn name(&self) -> &str {
        "bus-lock-attack"
    }
    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::rng::Rng;

    fn ops(attack: &mut BusLockAttack, n: usize) -> Vec<MemOp> {
        let mut rng = Rng::new(3);
        let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: None, tick: 0 };
        (0..n).map(|_| attack.next_op(&mut ctx)).collect()
    }

    #[test]
    fn alternates_atomics_and_gaps() {
        let mut a = BusLockAttack::new(BusLockConfig::default());
        let seq = ops(&mut a, 10);
        for pair in seq.chunks(2) {
            assert!(matches!(pair[0], MemOp::Atomic { .. }));
            assert!(matches!(pair[1], MemOp::Compute { .. }));
        }
        assert_eq!(a.atomics_issued(), 5);
    }

    #[test]
    fn full_duty_never_pauses() {
        let mut a = BusLockAttack::new(BusLockConfig {
            duty: 1.0,
            ..BusLockConfig::default()
        });
        assert!(ops(&mut a, 20)
            .iter()
            .all(|op| matches!(op, MemOp::Atomic { .. })));
    }

    #[test]
    fn gap_realises_duty_cycle() {
        let cfg = BusLockConfig { duty: 0.8, lock_cycles: 400, buffer_lines: 8 };
        let mut a = BusLockAttack::new(cfg);
        let seq = ops(&mut a, 2000);
        let locked: u64 = seq
            .iter()
            .filter(|op| matches!(op, MemOp::Atomic { .. }))
            .count() as u64
            * cfg.lock_cycles;
        let gaps: u64 = seq
            .iter()
            .filter_map(|op| match op {
                MemOp::Compute { cycles } => Some(*cycles as u64),
                _ => None,
            })
            .sum();
        let duty = locked as f64 / (locked + gaps) as f64;
        assert!((0.75..=0.85).contains(&duty), "realised duty {duty}");
    }

    #[test]
    fn lines_cycle_through_buffer() {
        let mut a = BusLockAttack::new(BusLockConfig {
            buffer_lines: 4,
            ..BusLockConfig::default()
        });
        let lines: Vec<u64> = ops(&mut a, 16)
            .iter()
            .filter_map(|op| match op {
                MemOp::Atomic { line } => Some(*line),
                _ => None,
            })
            .collect();
        assert!(lines.iter().all(|&l| l < 4));
        assert_eq!(&lines[..4], &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn rejects_zero_duty() {
        BusLockAttack::new(BusLockConfig { duty: 0.0, ..BusLockConfig::default() });
    }
}
