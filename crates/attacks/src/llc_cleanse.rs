//! The LLC cleansing attack, with its probe prelude.
//!
//! §2.2 of the paper, step by step:
//!
//! 1. "the attack VM first allocates a memory buffer covering the entire
//!    LLC" — the attacker owns one line per (set, way) pair;
//! 2. "the attack VM accesses some cache lines belonging to each cache
//!    set and figures out the maximum number of cache lines which can be
//!    accessed without causing cache conflicts. If this number is smaller
//!    than the set associativity, it means that other VMs have frequently
//!    occupied some cache lines in this set" — implemented as a
//!    prime-then-probe pass: fill every set with the attacker's `ways`
//!    lines, then re-access them and count self-misses per set;
//! 3. "the attack VM launches the LLC cleansing attack by repeatedly
//!    cleansing these cache lines" — a tight loop that bursts all `ways`
//!    lines of each *target* set back to back (a burst is what defeats
//!    LRU: a sequential stream would only evict the attacker's own stale
//!    lines).
//!
//! The attacker re-probes periodically so the target list tracks a
//! victim whose hot sets move between phases.

use memdos_sim::cache::CacheGeometry;
use memdos_sim::program::{AccessOutcome, MemOp, ProgramCtx, VmProgram};

/// Parameters of the cleansing attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcCleanseConfig {
    /// Number of cache sets.
    pub sets: u64,
    /// Set associativity.
    pub ways: u64,
    /// A set becomes a cleansing target when at least this many of the
    /// attacker's primed lines were evicted between prime and probe.
    pub conflict_threshold: u64,
    /// Cleansing passes between re-probes (0 = probe once, never again).
    pub passes_per_probe: u64,
}

impl LlcCleanseConfig {
    /// Default intensity for a cache of the given geometry.
    pub fn for_geometry(geometry: CacheGeometry) -> Self {
        LlcCleanseConfig {
            sets: geometry.sets as u64,
            ways: geometry.ways as u64,
            conflict_threshold: 1,
            passes_per_probe: 16,
        }
    }
}

/// Internal phase of the attack state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Filling every set with the attacker's own lines.
    Prime { set: u64, way: u64 },
    /// Re-accessing the primed lines, counting self-misses per set.
    Probe { set: u64, way: u64 },
    /// Bursting the lines of target sets.
    Cleanse { target_idx: usize, way: u64, passes: u64 },
}

/// The LLC cleansing attack program.
#[derive(Debug, Clone)]
pub struct LlcCleanseAttack {
    cfg: LlcCleanseConfig,
    phase: Phase,
    /// Self-miss count per set during the current probe pass.
    conflicts: Vec<u64>,
    /// Sets identified as occupied by other VMs.
    targets: Vec<u64>,
    /// The (set, way) whose outcome the next `last_outcome` reports.
    in_flight: Option<(u64, u64)>,
    probes_completed: u64,
}

impl LlcCleanseAttack {
    /// Creates the attack.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`, `ways == 0`, or
    /// `conflict_threshold > ways`.
    pub fn new(cfg: LlcCleanseConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.ways > 0, "geometry must be non-empty");
        assert!(
            cfg.conflict_threshold >= 1 && cfg.conflict_threshold <= cfg.ways,
            "conflict threshold must be in [1, ways]"
        );
        LlcCleanseAttack {
            cfg,
            phase: Phase::Prime { set: 0, way: 0 },
            conflicts: vec![0; cfg.sets as usize],
            targets: Vec::new(),
            in_flight: None,
            probes_completed: 0,
        }
    }

    /// Line address of the attacker's buffer entry for `(set, way)`: the
    /// buffer covers the entire LLC, one line per slot.
    fn line_for(&self, set: u64, way: u64) -> u64 {
        set + way * self.cfg.sets
    }

    /// Sets currently targeted for cleansing (empty until the first probe
    /// completes).
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Completed probe passes.
    pub fn probes_completed(&self) -> u64 {
        self.probes_completed
    }

    /// Records the outcome of the previous probe access, if one was in
    /// flight.
    fn absorb_outcome(&mut self, outcome: Option<AccessOutcome>) {
        if let Some((set, _way)) = self.in_flight.take() {
            if outcome == Some(AccessOutcome::Miss) {
                if let Some(c) = self.conflicts.get_mut(set as usize) {
                    *c += 1;
                }
            }
        }
    }

    /// Finalises a probe pass into a target list.
    fn finish_probe(&mut self) {
        self.targets = self
            .conflicts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.cfg.conflict_threshold)
            .map(|(s, _)| s as u64)
            .collect();
        self.probes_completed += 1;
        self.conflicts.fill(0);
    }
}

impl VmProgram for LlcCleanseAttack {
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
        loop {
            match self.phase {
                Phase::Prime { set, way } => {
                    let line = self.line_for(set, way);
                    let (mut nset, mut nway) = (set, way + 1);
                    if nway == self.cfg.ways {
                        nway = 0;
                        nset += 1;
                    }
                    self.phase = if nset == self.cfg.sets {
                        Phase::Probe { set: 0, way: 0 }
                    } else {
                        Phase::Prime { set: nset, way: nway }
                    };
                    return MemOp::read(line);
                }
                Phase::Probe { set, way } => {
                    // First consume the outcome of the previous probe op.
                    self.absorb_outcome(ctx.last_outcome);
                    let line = self.line_for(set, way);
                    self.in_flight = Some((set, way));
                    let (mut nset, mut nway) = (set, way + 1);
                    if nway == self.cfg.ways {
                        nway = 0;
                        nset += 1;
                    }
                    if nset == self.cfg.sets {
                        // The final in-flight outcome is absorbed on the
                        // first cleansing op; close enough for a 1-op tail.
                        self.phase = Phase::Cleanse { target_idx: 0, way: 0, passes: 0 };
                    } else {
                        self.phase = Phase::Probe { set: nset, way: nway };
                    }
                    return MemOp::read(line);
                }
                Phase::Cleanse { target_idx, way, passes } => {
                    if target_idx == 0 && way == 0 {
                        self.absorb_outcome(ctx.last_outcome);
                        if passes == 0 {
                            self.finish_probe();
                        }
                    }
                    if self.targets.is_empty() {
                        // Nothing occupied: idle briefly, then re-probe.
                        self.phase = Phase::Prime { set: 0, way: 0 };
                        return MemOp::Compute { cycles: 10_000 };
                    }
                    let set = match self.targets.get(target_idx) {
                        Some(&s) => s,
                        // Out-of-range cursor (target list shrank after a
                        // re-probe): restart the probe cycle.
                        None => {
                            self.phase = Phase::Prime { set: 0, way: 0 };
                            return MemOp::Compute { cycles: 10_000 };
                        }
                    };
                    let line = self.line_for(set, way);
                    let (mut nidx, mut nway) = (target_idx, way + 1);
                    if nway == self.cfg.ways {
                        nway = 0;
                        nidx += 1;
                    }
                    if nidx == self.targets.len() {
                        let next_passes = passes + 1;
                        if self.cfg.passes_per_probe > 0
                            && next_passes >= self.cfg.passes_per_probe
                        {
                            self.phase = Phase::Prime { set: 0, way: 0 };
                        } else {
                            self.phase =
                                Phase::Cleanse { target_idx: 0, way: 0, passes: next_passes };
                        }
                    } else {
                        self.phase =
                            Phase::Cleanse { target_idx: nidx, way: nway, passes };
                    }
                    return MemOp::read(line);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "llc-cleanse-attack"
    }
    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_sim::cache::CacheGeometry;
    use memdos_sim::server::{Server, ServerConfig};

    fn tiny_geometry() -> CacheGeometry {
        CacheGeometry { sets: 64, ways: 4 }
    }

    fn tiny_cfg() -> ServerConfig {
        ServerConfig { geometry: tiny_geometry(), ..ServerConfig::default() }
    }

    /// A victim that keeps a small hot working set resident.
    struct HotVictim;

    impl VmProgram for HotVictim {
        fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
            // 32 hot lines in sets 0..32.
            MemOp::read(ctx.rng.next_below(32))
        }
        fn name(&self) -> &str {
            "hot-victim"
        }
    }

    #[test]
    fn probe_identifies_victim_sets() {
        let mut server = Server::new(tiny_cfg());
        server.add_vm("victim", Box::new(HotVictim));
        // Drive the attack manually so its state can be inspected: run it
        // inside the server for enough ticks to complete prime + probe +
        // first cleanse entry.
        let attack = LlcCleanseAttack::new(LlcCleanseConfig::for_geometry(tiny_geometry()));
        server.add_vm("attacker", Box::new(attack.clone()));
        // 64 sets × 4 ways × 2 passes ≈ 512 ops ≈ well under a tick.
        server.run_collect(3);
        // The attack instance inside the server is not observable; rerun
        // the state machine standalone against the same expectations via
        // the victim-misses test below instead. Here, check the pristine
        // instance state.
        assert_eq!(attack.probes_completed(), 0);
        assert!(attack.targets().is_empty());
    }

    #[test]
    fn cleansing_raises_victim_misses() {
        let run = |with_attack: bool| -> u64 {
            let mut server = Server::new(tiny_cfg());
            let victim = server.add_vm("victim", Box::new(HotVictim));
            if with_attack {
                let attack =
                    LlcCleanseAttack::new(LlcCleanseConfig::for_geometry(tiny_geometry()));
                server.add_vm("attacker", Box::new(attack));
            }
            server.run_collect(10);
            (0..10)
                .map(|_| server.tick().sample(victim).unwrap().misses)
                .sum()
        };
        let clean = run(false);
        let attacked = run(true);
        assert!(
            attacked > clean * 5 + 50,
            "cleansing ineffective: {clean} -> {attacked}"
        );
    }

    #[test]
    fn probe_marks_only_contended_sets() {
        // Standalone state-machine walk with a synthetic outcome feed:
        // report misses for sets < 8 during the probe pass, hits
        // elsewhere.
        let cfg = LlcCleanseConfig {
            sets: 16,
            ways: 2,
            conflict_threshold: 1,
            passes_per_probe: 4,
        };
        let mut attack = LlcCleanseAttack::new(cfg);
        let mut rng = memdos_sim::rng::Rng::new(1);
        let mut last: Option<AccessOutcome> = None;
        let mut issued: Vec<(u64, MemOp)> = Vec::new();
        for step in 0..(16 * 2/*prime*/ + 16 * 2/*probe*/ + 1) {
            let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: last, tick: 0 };
            let op = attack.next_op(&mut ctx);
            // Synthesize the outcome: during the probe pass the lines of
            // sets 0..8 were "evicted by the victim".
            last = match op {
                MemOp::Access { line, .. } => {
                    let set = line % 16;
                    let probing = step >= 32; // after the prime pass
                    Some(if probing && set < 8 {
                        AccessOutcome::Miss
                    } else {
                        AccessOutcome::Hit
                    })
                }
                _ => last,
            };
            issued.push((step, op));
        }
        assert_eq!(attack.probes_completed(), 1);
        let targets = attack.targets().to_vec();
        assert_eq!(targets, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn idle_when_nothing_contended() {
        let cfg = LlcCleanseConfig {
            sets: 4,
            ways: 2,
            conflict_threshold: 1,
            passes_per_probe: 2,
        };
        let mut attack = LlcCleanseAttack::new(cfg);
        let mut rng = memdos_sim::rng::Rng::new(1);
        let mut saw_idle = false;
        let mut last = None;
        for _ in 0..40 {
            let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: last, tick: 0 };
            let op = attack.next_op(&mut ctx);
            if let MemOp::Access { .. } = op {
                last = Some(AccessOutcome::Hit); // never any conflict
            }
            if matches!(op, MemOp::Compute { .. }) {
                saw_idle = true;
            }
        }
        assert!(saw_idle, "attacker should idle when no set is contended");
        assert!(attack.targets().is_empty());
    }

    #[test]
    #[should_panic(expected = "conflict threshold")]
    fn rejects_bad_threshold() {
        LlcCleanseAttack::new(LlcCleanseConfig {
            sets: 4,
            ways: 2,
            conflict_threshold: 3,
            passes_per_probe: 1,
        });
    }
}
