//! End-to-end reproduction of the paper's measurement-study observations
//! (§3.3–3.4) at small scale:
//!
//! * **Observation 1** — every application suffers a significant
//!   `AccessNum` decrease under the bus-locking attack and a significant
//!   `MissNum` increase under the LLC-cleansing attack.
//! * **Observation 2** — periodic applications show prolonged periodicity
//!   under both attacks.

use memdos_attacks::schedule::Scheduled;
use memdos_attacks::AttackKind;
use memdos_sim::server::{Server, ServerConfig};
use memdos_stats::period::PeriodDetector;
use memdos_stats::smoothing::MovingAverage;
use memdos_workloads::catalog::Application;

/// Runs the paper's 120-second protocol at small scale: `ticks/2` benign,
/// then the attack goes live. Returns per-tick (AccessNum, MissNum).
fn run(app: Application, attack: AttackKind, ticks: u64, seed: u64) -> Vec<(f64, f64)> {
    let cfg = ServerConfig::default().with_seed(seed);
    let mut server = Server::new(cfg);
    let llc = server.config().geometry.lines() as u64;
    let geometry = server.config().geometry;
    let victim = server.add_vm(app.name(), app.build(llc));
    server.add_vm(
        "attacker",
        Box::new(Scheduled::starting_at(ticks / 2, attack.build(geometry))),
    );
    for i in 0..2u64 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos_workloads::apps::utility::program(i)),
        );
    }
    (0..ticks)
        .map(|_| {
            let r = server.tick();
            let s = r.sample(victim).unwrap();
            (s.accesses as f64, s.misses as f64)
        })
        .collect()
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn bus_locking_drops_accessnum_for_all_applications() {
    for app in [
        Application::KMeans,
        Application::TeraSort,
        Application::Aggregation,
        Application::FaceNet,
    ] {
        let trace = run(app, AttackKind::BusLocking, 2000, 5);
        let before = mean(trace[200..1000].iter().map(|x| x.0));
        let after = mean(trace[1200..2000].iter().map(|x| x.0));
        assert!(
            after < 0.7 * before,
            "{app}: AccessNum {before:.0} -> {after:.0}, no significant drop"
        );
    }
}

#[test]
fn llc_cleansing_raises_missnum_for_all_applications() {
    for app in [
        Application::KMeans,
        Application::Bayes,
        Application::FaceNet,
        Application::Join,
    ] {
        let trace = run(app, AttackKind::LlcCleansing, 2000, 6);
        let before = mean(trace[200..1000].iter().map(|x| x.1));
        let after = mean(trace[1200..2000].iter().map(|x| x.1));
        assert!(
            after > 1.3 * before.max(5.0),
            "{app}: MissNum {before:.0} -> {after:.0}, no significant rise"
        );
    }
}

#[test]
fn attacks_dilate_facenet_period() {
    for attack in AttackKind::ALL {
        // 8000 ticks per stage ≈ 9 batches normally.
        let trace = run(Application::FaceNet, attack, 16_000, 7);
        let access: Vec<f64> = trace.iter().map(|x| x.0).collect();
        let ma_before = MovingAverage::apply(200, 50, &access[..8000]).unwrap();
        let ma_after = MovingAverage::apply(200, 50, &access[8000..]).unwrap();
        let det = PeriodDetector::default();
        let p_before = det
            .detect(&ma_before)
            .unwrap()
            .unwrap_or_else(|| panic!("{attack}: no period before attack"))
            .period;
        let p_after = det
            .detect(&ma_after)
            .unwrap()
            .map(|e| e.period)
            // Under a harsh attack the pattern may degrade beyond
            // detection, which is itself a >20 % deviation for SDS/P.
            .unwrap_or(f64::INFINITY);
        assert!(
            p_after > 1.2 * p_before,
            "{attack}: facenet period {p_before:.1} -> {p_after:.1}, no dilation"
        );
    }
}
