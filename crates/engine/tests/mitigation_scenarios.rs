//! Ground-truth scenario regression suite for the mitigation loop.
//!
//! Each respond scenario carries a labelled attacker and a designed
//! arc; the whole closed loop is a pure function of the seed, so this
//! suite pins not just "an attacker was throttled" but the *exact*
//! recovery latency, false-quarantine cost and applied-action trace of
//! each arc. A drift in any of them means the detect→respond timing
//! changed and somebody should look.
//!
//! The suite also covers the two paths the fleet scenarios cannot
//! reach deterministically: a quarantine notice racing a close in the
//! same batch (skip, never engage), and a seeded fuzz over the raw
//! case FSM asserting it never skips states, never doubles a control
//! and always terminates.

use memdos_engine::config::MitigationPolicy;
use memdos_engine::engine::Engine;
use memdos_engine::mitigation::{
    ActionKind, Case, CaseState, CaseStep, Coordinator, Rung,
};
use memdos_engine::respond::{
    respond_engine_config, respond_scenario, run_respond, RespondReport, RespondScenario,
};
use memdos_stats::rng::{derive_seed, Rng};

const TENANTS: u32 = 6;
const SEED: u64 = 42;

fn run(kind: RespondScenario) -> RespondReport {
    let scenario = respond_scenario(kind, TENANTS, SEED);
    run_respond(&scenario, respond_engine_config(1), None).expect("scenario is valid")
}

fn count_events(report: &RespondReport, event: &str) -> usize {
    let needle = format!(r#""event":"{event}""#);
    report.log.iter().filter(|l| l.contains(&needle)).count()
}

fn has_event_with(report: &RespondReport, event: &str, fields: &[&str]) -> bool {
    let needle = format!(r#""event":"{event}""#);
    report
        .log
        .iter()
        .any(|l| l.contains(&needle) && fields.iter().all(|f| l.contains(f)))
}

/// The applied-action trace as `(round tick, kind)` pairs; every
/// scenario in this suite only ever acts on the labelled attacker, so
/// the tenant is asserted separately.
fn action_arc(report: &RespondReport) -> Vec<(u64, ActionKind)> {
    let attacker = report.attacker.clone().expect("scenario labels an attacker");
    for a in &report.actions {
        assert_eq!(a.tenant, attacker, "every action targets the ground-truth attacker");
        assert!(a.applied, "the generator accepts every action");
    }
    report.actions.iter().map(|a| (a.tick, a.kind)).collect()
}

#[test]
fn true_attacker_is_throttled_and_confirmed_by_victim_recovery() {
    let report = run(RespondScenario::TrueAttacker);
    // One case: engage → confirm → control sticks. Recovery latency is
    // the seq distance from the throttle landing to the victims' EWMA
    // crossing back over the recovery threshold.
    assert_eq!(report.stats.mitigations_engaged, 1);
    assert_eq!(report.stats.mitigations_escalated, 1);
    assert_eq!(report.stats.mitigations_released, 0);
    assert_eq!(report.stats.mitigations_aborted, 0);
    assert_eq!(report.stats.mitigation_skipped, 0);
    assert_eq!(report.stats.recovery_latency_ticks, 70);
    assert_eq!(report.stats.false_quarantine_ticks, 0);
    assert_eq!(report.stats.reopened, 0, "the control sticks; no re-profile");
    assert_eq!(action_arc(&report), vec![(560, ActionKind::Throttle)]);
    assert_eq!(count_events(&report, "quarantined"), 1);
    assert!(has_event_with(
        &report,
        "mitigation_engaged",
        &[r#""rung":"throttle""#, r#""degraded":true"#]
    ));
    assert!(has_event_with(&report, "mitigation_recovered", &[r#""latency":70"#]));
    assert!(has_event_with(
        &report,
        "mitigation_escalated",
        &[r#""reason":"confirmed""#, r#""latency":70"#]
    ));
    assert_eq!(count_events(&report, "mitigation_released"), 0);
}

#[test]
fn benign_phase_change_is_released_and_reprofiled_not_escalated() {
    let report = run(RespondScenario::BenignShift);
    // The collapse looks attacker-shaped, but no victim is degraded at
    // engage time, so the case takes the innocent path: hold briefly,
    // release, bill the hold as false-quarantine cost, and re-profile
    // the tenant on its new level through the close/reopen machinery.
    assert_eq!(report.stats.mitigations_engaged, 1);
    assert_eq!(report.stats.mitigations_released, 1);
    assert_eq!(report.stats.mitigations_escalated, 0);
    assert_eq!(report.stats.mitigations_aborted, 0);
    assert_eq!(report.stats.mitigation_skipped, 0);
    assert_eq!(report.stats.recovery_latency_ticks, 0);
    assert_eq!(report.stats.false_quarantine_ticks, 166);
    assert_eq!(report.stats.reopened, 1, "release re-profiles via close/reopen");
    assert_eq!(
        action_arc(&report),
        vec![(560, ActionKind::Throttle), (656, ActionKind::Release)]
    );
    assert!(has_event_with(
        &report,
        "mitigation_engaged",
        &[r#""rung":"throttle""#, r#""degraded":false"#]
    ));
    assert!(has_event_with(
        &report,
        "mitigation_released",
        &[r#""reason":"verdict""#, r#""cost":166"#]
    ));
    // The re-profile on the shifted level is clean: the one quarantine
    // is the original false alarm, and the reopened generation reaches
    // profile_ready without another alarm.
    assert_eq!(count_events(&report, "quarantined"), 1);
    assert_eq!(count_events(&report, "profile_ready"), TENANTS as usize + 1);
    assert_eq!(count_events(&report, "mitigation_escalated"), 0);
}

#[test]
fn quiet_attacker_that_resumes_re_engages_one_rung_up() {
    let report = run(RespondScenario::QuietResume);
    // First window: benign-looking, released at cost 166. Second
    // window: real victim pressure — rung memory starts the new case
    // at pause, and victim recovery confirms it there.
    assert_eq!(report.stats.mitigations_engaged, 2);
    assert_eq!(report.stats.mitigations_released, 1);
    assert_eq!(report.stats.mitigations_escalated, 1);
    assert_eq!(report.stats.mitigations_aborted, 0);
    assert_eq!(report.stats.mitigation_skipped, 0);
    assert_eq!(report.stats.recovery_latency_ticks, 44);
    assert_eq!(report.stats.false_quarantine_ticks, 166);
    assert_eq!(report.stats.reopened, 1);
    assert_eq!(
        action_arc(&report),
        vec![
            (560, ActionKind::Throttle),
            (656, ActionKind::Release),
            (1_088, ActionKind::Pause),
        ]
    );
    assert!(has_event_with(
        &report,
        "mitigation_engaged",
        &[r#""rung":"throttle""#, r#""degraded":false"#]
    ));
    assert!(
        has_event_with(
            &report,
            "mitigation_engaged",
            &[r#""rung":"pause""#, r#""degraded":true"#]
        ),
        "the second engagement starts one rung up"
    );
    assert!(has_event_with(
        &report,
        "mitigation_escalated",
        &[r#""reason":"confirmed""#, r#""latency":44"#]
    ));
}

#[test]
fn quarantine_racing_a_close_in_the_same_batch_is_skipped_not_engaged() {
    // Raw-lines edge: the alarm that quarantines a tenant and the
    // tenant's explicit close land in the same ingest batch. By the
    // time the mitigation pass runs at the end of the flush the session
    // is already closing, so the notice must be dropped — engaging a
    // control on a departed tenant would throttle whoever reuses the
    // slot next.
    let mut engine = Engine::new(respond_engine_config(1)).unwrap();
    let sample = |access: u64| {
        format!(r#"{{"tenant":"vm-q","access":{access},"miss":100}}"#)
    };
    // Profile (mild deterministic wobble so the band has width), then
    // stable monitoring, then a collapse that alarms, then the close —
    // all well inside one 2 048-line batch.
    for i in 0..40u64 {
        engine.ingest_line(&sample(1_000 + i % 3));
    }
    for i in 0..30u64 {
        engine.ingest_line(&sample(1_000 + i % 3));
    }
    for _ in 0..10 {
        engine.ingest_line(&sample(100));
    }
    engine.ingest_line(r#"{"tenant":"vm-q","ctl":"close"}"#);
    engine.finish();
    let stats = engine.stats();
    assert_eq!(stats.mitigation_skipped, 1);
    assert_eq!(stats.mitigations_engaged, 0);
    assert_eq!(stats.mitigations_aborted, 0);
    let log = engine.log_lines();
    assert!(log.iter().any(|l| l.contains(r#""event":"quarantined""#)));
    assert!(log
        .iter()
        .any(|l| l.contains(r#""event":"mitigation_skipped""#)
            && l.contains(r#""tenant":"vm-q""#)
            && l.contains(r#""reason":"closed""#)));
    assert!(!log.iter().any(|l| l.contains(r#""event":"mitigation_engaged""#)));
}

/// Seeded fuzz over the raw case FSM: random engage rungs, degraded
/// flags and sample spacings. Asserts the transition relation exactly —
/// the FSM never skips `Confirming` (the engage-at-evict shortcut is
/// the one exception), the rung only climbs, terminal states absorb —
/// and that every case terminates in `Released` or `Escalated`.
#[test]
fn fsm_fuzz_never_skips_states_and_always_terminates() {
    for trial in 0..500u64 {
        let mut rng = Rng::new(derive_seed(0x0F5_F022, trial));
        let policy = MitigationPolicy {
            enabled: true,
            confirm_budget: 20 + rng.next_below(100),
            hold_ticks: 5 + rng.next_below(20),
            degraded_below: 0.95,
            max_rung: rng.next_below(3) as u8,
        };
        let engage_rung = Rung::from_index(rng.next_below(u64::from(policy.max_rung) + 1) as u8);
        let engage_degraded = rng.chance(0.5);
        let (mut case, action) = Case::engage("vm-f".into(), engage_rung, 0, engage_degraded);
        if engage_rung == Rung::Evict {
            // The one legal shortcut past Confirming: an engage that is
            // already at the top of the ladder is terminal immediately.
            assert_eq!(action, ActionKind::Evict);
            assert_eq!(case.state(), CaseState::Escalated);
        } else {
            assert_eq!(case.state(), CaseState::Throttled);
        }
        let mut now = 0u64;
        let mut prev_state = case.state();
        let mut prev_rung = case.rung();
        let mut steps = 0u32;
        while !case.state().terminal() {
            steps += 1;
            assert!(steps < 5_000, "trial {trial}: the FSM must terminate");
            now += 1 + rng.next_below(7);
            let step = case.sample(now, rng.chance(0.5), &policy);
            let state = case.state();
            match (prev_state, state) {
                (CaseState::Throttled, CaseState::Confirming) => {
                    assert_eq!(step, CaseStep::Confirming, "trial {trial}")
                }
                (CaseState::Confirming, CaseState::Confirming) => assert!(
                    matches!(
                        step,
                        CaseStep::Hold | CaseStep::Recovered { .. } | CaseStep::Relapsed
                    ),
                    "trial {trial}: {step:?}"
                ),
                (CaseState::Confirming, CaseState::Throttled) => {
                    // A ladder climb re-engages: strictly one rung up,
                    // never straight to eviction through this arm.
                    assert!(matches!(step, CaseStep::Climbed { .. }), "trial {trial}");
                    assert!(case.rung() > prev_rung, "trial {trial}: climb must ascend");
                    assert_ne!(case.rung(), Rung::Evict, "trial {trial}");
                }
                (CaseState::Confirming, CaseState::Released) => {
                    assert!(matches!(step, CaseStep::Released { .. }), "trial {trial}")
                }
                (CaseState::Confirming, CaseState::Escalated) => assert!(
                    matches!(step, CaseStep::Confirmed { .. } | CaseStep::Evicted),
                    "trial {trial}: {step:?}"
                ),
                other => panic!("trial {trial}: illegal transition {other:?} on {step:?}"),
            }
            assert!(case.rung() >= prev_rung, "trial {trial}: the rung never descends");
            assert!(
                case.rung().index() <= policy.max_rung,
                "trial {trial}: the ladder cap holds"
            );
            prev_state = state;
            prev_rung = case.rung();
        }
        // Terminal states absorb every further sample.
        let terminal = case.state();
        for _ in 0..5 {
            now += 1 + rng.next_below(7);
            assert_eq!(case.sample(now, rng.chance(0.5), &policy), CaseStep::Hold);
            assert_eq!(case.state(), terminal);
        }
    }
}

/// Seeded fuzz over the coordinator: random interleavings of engage,
/// session-close and recovery samples across three tenants. Asserts an
/// engaged control is never doubled (`engage` on a resident case is a
/// no-op) and that the per-tenant control stream only ever climbs
/// between releases.
#[test]
fn coordinator_fuzz_never_doubles_a_control() {
    for trial in 0..200u64 {
        let mut rng = Rng::new(derive_seed(0xC00D, trial));
        let policy = MitigationPolicy {
            enabled: true,
            confirm_budget: 20 + rng.next_below(100),
            hold_ticks: 5 + rng.next_below(20),
            degraded_below: 0.95,
            max_rung: rng.next_below(3) as u8,
        };
        let mut coord = Coordinator::new(policy);
        // Per-tenant audit state: the rung of the control currently in
        // force, if any. A control action must strictly out-rank it; a
        // release (or a session close) clears it.
        let mut in_force: [Option<u8>; 3] = [None; 3];
        let audit = |actions: Vec<memdos_engine::mitigation::MitigationAction>,
                     in_force: &mut [Option<u8>; 3],
                     trial: u64| {
            for action in actions {
                let id: usize = action.tenant.strip_prefix("vm-").unwrap().parse().unwrap();
                match action.kind {
                    ActionKind::Throttle | ActionKind::Pause | ActionKind::Evict => {
                        let rung = match action.kind {
                            ActionKind::Throttle => 0u8,
                            ActionKind::Pause => 1,
                            _ => 2,
                        };
                        if let Some(held) = in_force[id] {
                            assert!(
                                rung > held,
                                "trial {trial}: {} re-issued at rung {rung} over {held}",
                                action.tenant
                            );
                        }
                        in_force[id] = Some(rung);
                    }
                    ActionKind::Release => {
                        assert!(
                            in_force[id].is_some(),
                            "trial {trial}: release with no control in force"
                        );
                        in_force[id] = None;
                    }
                }
            }
        };
        let mut now = 0u64;
        for _ in 0..300 {
            now += 1 + rng.next_below(5);
            let id = rng.next_below(3) as u32;
            match rng.next_below(5) {
                0 => {
                    let resident = coord.has_case(id);
                    let engaged = coord.engage(id, &format!("vm-{id}"), now, rng.chance(0.5));
                    assert_eq!(
                        engaged.is_none(),
                        resident,
                        "trial {trial}: engage is a no-op iff a case is resident"
                    );
                }
                1 => {
                    coord.on_session_closed(id);
                    audit(coord.take_actions(), &mut in_force, trial);
                    // An escalated case keeps its control but drops its
                    // bookkeeping on close; either way the tenant slot
                    // is vacated and the next control starts fresh.
                    in_force[id as usize] = None;
                }
                _ => {
                    for update in coord.sample_active(now, rng.chance(0.5)) {
                        let legal = match update.step {
                            CaseStep::Confirming
                            | CaseStep::Recovered { .. }
                            | CaseStep::Relapsed => update.state == CaseState::Confirming,
                            CaseStep::Climbed { rung } => {
                                update.state == CaseState::Throttled && update.rung == rung
                            }
                            CaseStep::Evicted => {
                                update.state == CaseState::Escalated
                                    && update.rung == Rung::Evict
                            }
                            CaseStep::Confirmed { rung, .. } => {
                                update.state == CaseState::Escalated && update.rung == rung
                            }
                            CaseStep::Released { .. } => update.state == CaseState::Released,
                            CaseStep::Hold => false,
                        };
                        assert!(legal, "trial {trial}: {update:?}");
                    }
                }
            }
            audit(coord.take_actions(), &mut in_force, trial);
        }
        // Drain: with victims reporting recovered, every active case
        // must terminate within its hold budget.
        let mut spins = 0;
        while coord.has_active() {
            spins += 1;
            assert!(spins < 200, "trial {trial}: active cases must drain");
            now += 7;
            coord.sample_active(now, false);
            audit(coord.take_actions(), &mut in_force, trial);
        }
    }
}
