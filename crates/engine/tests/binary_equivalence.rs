//! Equivalence suite for the binary wire format (tier-1).
//!
//! The contract this file pins, the same way `parser_equivalence.rs`
//! pins fast-vs-slow JSONL parsing: ingesting the *same record stream*
//! through the JSONL reader and through the binary reader produces
//! **byte-identical** verdict logs — at any worker count and any batch
//! size, including the `engine_stats` trailer. Define frames are
//! zero-width metadata, so the binary stream's samples and closes land
//! on exactly the arrival indices their JSONL twins would.
//!
//! A corrupted binary stream must degrade like a corrupted JSONL one:
//! skipped spans surface as `malformed` events, intact frames survive,
//! nothing panics.

use memdos_engine::engine::Engine;
use memdos_engine::session::SessionConfig;
use memdos_engine::Config;
use memdos_metrics::binary::Encoder;
use memdos_stats::rng::{derive_seed, Rng};

/// One record: a sample or (with `None`) a close.
type Rec = (&'static str, Option<(f64, f64)>);

/// Three tenants through profile → monitoring; vm-b collapses
/// mid-stream (bus-lock-style access drop) and every tenant closes at
/// the end. The profile→monitor transition and the alarm onset both
/// land mid-batch for every batch size used below.
fn scenario() -> Vec<Rec> {
    let mut recs = Vec::new();
    for i in 0..4_000u64 {
        for tenant in ["vm-a", "vm-b", "vm-c"] {
            let attacked = tenant == "vm-b" && i >= 2_500;
            let access = if attacked { 100.0 } else { 1000.0 + (i % 10) as f64 };
            recs.push((tenant, Some((access, 100.0 + (i % 5) as f64))));
        }
    }
    for tenant in ["vm-a", "vm-b", "vm-c"] {
        recs.push((tenant, None));
    }
    recs
}

fn to_jsonl(recs: &[Rec]) -> Vec<u8> {
    let mut out = String::new();
    for (tenant, rec) in recs {
        match rec {
            Some((access, miss)) => out.push_str(&format!(
                "{{\"tenant\":\"{tenant}\",\"access\":{access},\"miss\":{miss}}}\n"
            )),
            None => out.push_str(&format!("{{\"tenant\":\"{tenant}\",\"ctl\":\"close\"}}\n")),
        }
    }
    out.into_bytes()
}

fn to_binary(recs: &[Rec]) -> Vec<u8> {
    let mut enc = Encoder::new();
    let mut out = Vec::new();
    for (tenant, rec) in recs {
        match rec {
            Some((access, miss)) => enc.sample(tenant, *access, *miss, &mut out).unwrap(),
            None => enc.close(tenant, &mut out).unwrap(),
        }
    }
    out
}

fn config(workers: usize, batch: usize) -> Config {
    Config {
        workers,
        batch,
        session: SessionConfig { profile_ticks: 2_000, ..SessionConfig::default() },
        ..Config::default()
    }
}

/// Full run through `ingest_reader` (format negotiation included) plus
/// `finish()`, so the comparison covers the stats trailer too.
fn run_bytes(config: Config, bytes: &[u8]) -> Vec<String> {
    let mut engine = Engine::new(config).unwrap();
    engine.ingest_reader(bytes).unwrap();
    engine.finish();
    engine.log_lines().to_vec()
}

#[test]
fn binary_and_jsonl_logs_are_byte_identical() {
    let recs = scenario();
    let jsonl = to_jsonl(&recs);
    let binary = to_binary(&recs);
    let reference = run_bytes(config(1, 256), &jsonl);
    assert!(
        reference.iter().any(|l| l.contains(r#""to":"alarm""#)),
        "scenario must actually alarm"
    );
    // Worker-count invariance at a fixed batch: the acceptance bar is
    // byte-identical logs at workers 1/2/4 for *both* formats.
    for workers in [1usize, 2, 4] {
        assert_eq!(
            run_bytes(config(workers, 256), &jsonl),
            reference,
            "jsonl workers={workers}"
        );
        assert_eq!(
            run_bytes(config(workers, 256), &binary),
            reference,
            "binary workers={workers}"
        );
    }
    // Across batch sizes only `peak_queued` in the stats trailer may
    // legitimately move, so pin jsonl == binary pairwise per config.
    for (workers, batch) in [(1, 7), (2, 7), (4, 1_024)] {
        assert_eq!(
            run_bytes(config(workers, batch), &jsonl),
            run_bytes(config(workers, batch), &binary),
            "workers={workers} batch={batch}"
        );
    }
}

#[test]
fn quarantine_replays_identically_on_both_formats() {
    let recs = scenario();
    let jsonl = to_jsonl(&recs);
    let binary = to_binary(&recs);
    let cfg = |workers: usize| {
        let mut c = config(workers, 256);
        c.session.quarantine_after = 1;
        c
    };
    let reference = run_bytes(cfg(1), &jsonl);
    assert!(
        reference.iter().any(|l| l.contains(r#""event":"quarantined""#)),
        "scenario must actually quarantine"
    );
    for workers in [1usize, 2, 4] {
        assert_eq!(run_bytes(cfg(workers), &binary), reference, "workers={workers}");
    }
}

#[test]
fn corrupted_binary_degrades_to_malformed_events() {
    let recs = scenario();
    let mut binary = to_binary(&recs);
    // Seeded corruption past the preamble: flips and short deletions.
    let mut rng = Rng::new(derive_seed(0xB1EC, 0));
    for _ in 0..12 {
        let at = 8 + rng.next_below((binary.len() - 8) as u64) as usize;
        if let Some(b) = binary.get_mut(at) {
            *b ^= 1 << rng.next_below(8);
        }
    }
    let at = 8 + rng.next_below((binary.len() - 64) as u64) as usize;
    binary.drain(at..at + 5);
    let mut engine = Engine::new(config(2, 256)).unwrap();
    engine.ingest_reader(&binary[..]).unwrap();
    engine.finish();
    let stats = engine.stats();
    assert!(stats.malformed > 0, "corruption must surface as malformed events");
    assert!(engine
        .log_lines()
        .iter()
        .any(|l| l.contains(r#""event":"malformed""#)));
    // The overwhelming majority of frames are intact: sessions still
    // open, profile, and alarm.
    assert!(engine
        .log_lines()
        .iter()
        .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-b""#)));
}

#[test]
fn convert_style_roundtrip_preserves_the_log() {
    // Binary → (decode) → JSONL rendering, then both through the
    // engine: the converter's output format (LineBuf rendering) parses
    // back to the same records.
    let recs = scenario();
    let binary = to_binary(&recs);
    let jsonl = to_jsonl(&recs);
    assert_eq!(
        run_bytes(config(2, 256), &binary),
        run_bytes(config(2, 256), &jsonl)
    );
}
