//! Equivalence suite for the zero-allocation ingest fast path.
//!
//! `Record::parse` routes clean lines through the borrowed
//! `parse_record_borrowed` parser and everything else through the
//! allocating `JsonObject` slow path. The contract this file pins:
//!
//! * on every input — clean, corrupted, escape-bearing — `Record::parse`
//!   and `Record::parse_slow` return the same accept/reject decision,
//!   the same error class, and the same decoded field values;
//! * when the fast path *commits* (`RawParse::Record` / `Reject`) its
//!   verdict matches the slow path exactly — `Fallback` is its only
//!   escape hatch;
//! * the corpus is seeded (`memdos_stats::rng`), so a failure reproduces
//!   from its case number alone.

use memdos_engine::protocol::Record;
use memdos_metrics::jsonl::{parse_record_borrowed, RawKind, RawParse};
use memdos_stats::rng::{derive_seed, Rng};

/// Asserts every equivalence the fast path promises on one line.
fn assert_equivalent(line: &str) {
    let slow = Record::parse_slow(line);
    let fast = Record::parse(line);
    assert_eq!(fast, slow, "parse vs parse_slow diverged on {line:?}");
    match parse_record_borrowed(line) {
        RawParse::Record(raw) => {
            let record = match &slow {
                Ok(r) => r,
                Err(e) => panic!("fast path accepted {line:?}, slow rejected with {e:?}"),
            };
            assert_eq!(raw.tenant, record.tenant(), "tenant diverged on {line:?}");
            match (&raw.kind, record) {
                (RawKind::Sample { access, miss }, Record::Sample { obs, .. }) => {
                    // Bit-exact: both paths funnel the same text through
                    // `f64::from_str`.
                    assert_eq!(
                        access.to_bits(),
                        obs.access_num.to_bits(),
                        "access diverged on {line:?}"
                    );
                    assert_eq!(
                        miss.to_bits(),
                        obs.miss_num.to_bits(),
                        "miss diverged on {line:?}"
                    );
                }
                (RawKind::Close, Record::Close { .. }) => {}
                (k, r) => panic!("kind diverged on {line:?}: fast {k:?}, slow {r:?}"),
            }
        }
        RawParse::Reject(e) => match &slow {
            Ok(r) => panic!("fast path rejected {line:?} ({e:?}), slow accepted {r:?}"),
            Err(slow_e) => {
                assert_eq!(&e, slow_e, "error class diverged on {line:?}");
            }
        },
        // Deferring to the slow path is always sound; the first
        // assertion above already checked what parse() resolved it to.
        RawParse::Fallback => {}
    }
}

/// Handwritten grammar corners: every accept shape, every reject class,
/// every escape that must force the fallback.
#[test]
fn handwritten_edge_cases_are_equivalent() {
    let lines = [
        // Accepts.
        r#"{"tenant":"vm-0","access":1234,"miss":56}"#,
        r#"{"tenant":"vm-0","ctl":"close"}"#,
        r#" { "tenant" : "vm-1" , "access" : 1e3 , "miss" : 0.5 } "#,
        r#"{"tenant":"vm-0","access":-1.5e-3,"miss":+2.5}"#,
        r#"{"tenant":"vm-0","access":1,"miss":2,"extra":"ignored","n":null,"b":true}"#,
        r#"{"tenant":"a","access":1,"miss":2,"tenant":"b"}"#, // duplicate: first wins
        r#"{"access":9,"tenant":"vm-0","miss":8,"access":1}"#,
        // Rejects, syntactic.
        "",
        "   ",
        "not json",
        "{",
        r#"{"tenant":"vm-0","access":1,"miss":2"#,
        r#"{"tenant":"vm-0","access":1,"miss":2}trailing"#,
        r#"{"tenant":"vm-0",}"#,
        r#"{"tenant":"vm-0" "access":1}"#,
        r#"{"tenant":[1],"access":1,"miss":2}"#,
        r#"{"tenant":"vm-0","access":1..2,"miss":2}"#,
        "{\"tenant\":\"vm\u{1}0\",\"access\":1,\"miss\":2}", // raw control byte
        "{\"tenant\":\"vm\\q\",\"access\":1,\"miss\":2}",    // bad escape
        "{\"tenant\":\"vm\\u00zz\",\"access\":1,\"miss\":2}", // bad \u hex
        // Rejects, semantic.
        "{}",
        r#"{"access":1,"miss":2}"#,
        r#"{"tenant":"","access":1,"miss":2}"#,
        r#"{"tenant":7,"access":1,"miss":2}"#,
        r#"{"tenant":"vm-0","ctl":"open"}"#,
        r#"{"tenant":"vm-0","ctl":7}"#,
        r#"{"tenant":"vm-0","ctl":null}"#,
        r#"{"tenant":"vm-0","miss":2}"#,
        r#"{"tenant":"vm-0","access":1}"#,
        r#"{"tenant":"vm-0","access":"x","miss":2}"#,
        r#"{"tenant":"vm-0","access":1,"miss":true}"#,
        r#"{"tenant":"vm-0","access":1e999,"miss":2}"#, // syntactic number, non-finite value
        // Escapes in protocol strings: fallback territory.
        "{\"tenant\":\"vm\\u002d9\",\"access\":1,\"miss\":2}",
        "{\"tenant\":\"a\\nb\",\"access\":1,\"miss\":2}",
        "{\"\\u0074enant\":\"vm-8\",\"access\":3,\"miss\":4}",
        "{\"tenant\":\"vm-0\",\"ctl\":\"clos\\u0065\"}",
        "{\"tenant\":\"vm-0\",\"ctl\":\"\\u0063lose\"}",
        // Escapes in *ignored* values must not force the fallback result
        // to differ either way.
        "{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2,\"note\":\"a\\tb\"}",
    ];
    for line in lines {
        assert_equivalent(line);
    }
}

/// Seeded clean records through both paths: every case accepted with
/// identical values.
#[test]
fn seeded_clean_corpus_is_equivalent() {
    for case in 0..400u64 {
        let mut rng = Rng::new(derive_seed(0xEA57, case));
        let tenant = format!("vm-{}", rng.next_below(50));
        let line = if rng.next_below(8) == 0 {
            format!(r#"{{"tenant":"{tenant}","ctl":"close"}}"#)
        } else {
            let access = rng.next_below(1_000_000) as f64 / 8.0;
            let miss = rng.next_below(10_000) as f64 / 4.0;
            match rng.next_below(3) {
                0 => format!(r#"{{"tenant":"{tenant}","access":{access},"miss":{miss}}}"#),
                1 => format!(
                    r#" {{ "tenant" : "{tenant}" , "access" : {access} , "miss" : {miss} }}"#
                ),
                _ => format!(
                    r#"{{"host":"n-{}","tenant":"{tenant}","access":{access},"miss":{miss},"up":true}}"#,
                    rng.next_below(9)
                ),
            }
        };
        assert!(Record::parse(&line).is_ok(), "case {case}: clean line rejected {line:?}");
        assert!(
            matches!(parse_record_borrowed(&line), RawParse::Record(_)),
            "case {case}: clean line missed the fast path {line:?}"
        );
        assert_equivalent(&line);
    }
}

/// Seeded fuzz corpus in the `jsonl_fuzz` style: clean records with
/// random in-line byte corruption. Both paths must agree on every
/// mangled line.
#[test]
fn seeded_corrupted_corpus_is_equivalent() {
    for case in 0..400u64 {
        let mut rng = Rng::new(derive_seed(0xFA57, case));
        let base = format!(
            r#"{{"tenant":"vm-{}","access":{},"miss":{}}}"#,
            rng.next_below(10),
            rng.next_below(1_000_000),
            rng.next_below(10_000)
        );
        let mut bytes = base.into_bytes();
        for _ in 0..1 + rng.next_below(6) {
            let pos = rng.next_below(bytes.len() as u64) as usize;
            if let Some(b) = bytes.get_mut(pos) {
                // Printable ASCII keeps the line valid UTF-8 so it can
                // reach the parsers as &str (the Decoder owns the
                // invalid-UTF-8 layer).
                *b = (0x20 + rng.next_below(95)) as u8;
            }
        }
        if let Ok(line) = String::from_utf8(bytes) {
            assert_equivalent(&line);
        }
    }
}

/// Arbitrary printable soup: no structure at all, still no divergence
/// and no panic.
#[test]
fn seeded_soup_never_diverges() {
    for case in 0..200u64 {
        let mut rng = Rng::new(derive_seed(0x50FA, case));
        let len = rng.next_below(120) as usize;
        let line: String = (0..len)
            .map(|_| char::from_u32(0x20 + rng.next_below(95) as u32).unwrap_or(' '))
            .collect();
        assert_equivalent(&line);
    }
}
