//! Eviction edge cases for the memory-ceiling path (Issue 8): evicting
//! a quarantined session must not lose its verdict, evicted tenants
//! reopen with a bumped generation, eviction composes with queue
//! backpressure, and — under seeded churn — slab slot recycling never
//! aliases a live tenant.

use memdos_core::config::{SdsBParams, SdsPParams, SdsParams};
use memdos_engine::engine::Engine;
use memdos_engine::session::SessionConfig;
use memdos_engine::Config;
use memdos_metrics::jsonl::JsonObject;
use memdos_stats::rng::Rng;

/// A config whose sessions move fast: Stage-1 completes after 40
/// samples (EWMA window 20, step 1 → 39-sample minimum history) and a
/// single alarm quarantines.
fn edge_config(max_sessions: usize) -> Config {
    Config {
        workers: 1,
        batch: 8,
        max_sessions,
        session: SessionConfig {
            profile_ticks: 40,
            sds: SdsParams {
                sdsb: SdsBParams { window: 20, step: 1, h_c: 5, ..SdsBParams::default() },
                sdsp: SdsPParams { window: 20, step: 1, ..SdsPParams::default() },
            },
            quarantine_after: 1,
            queue_capacity: 64,
            ..SessionConfig::default()
        },
        ..Config::default()
    }
}

fn sample(tenant: &str, access: f64) -> String {
    format!(r#"{{"tenant":"{tenant}","access":{access},"miss":50}}"#)
}

/// Feeds `n` samples for `tenant` at a flat level.
fn feed(engine: &mut Engine, tenant: &str, n: usize, access: f64) {
    for _ in 0..n {
        engine.ingest_line(&sample(tenant, access));
    }
}

#[test]
fn evicting_a_quarantined_session_preserves_its_verdict() {
    let mut engine = Engine::new(edge_config(2)).unwrap();
    // vm-q profiles on a flat signal, then collapses: one alarm →
    // quarantined.
    feed(&mut engine, "vm-q", 60, 1_000.0);
    feed(&mut engine, "vm-q", 100, 100.0);
    engine.flush();
    assert!(
        engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"quarantined""#) && l.contains(r#""tenant":"vm-q""#)),
        "setup: vm-q must reach quarantine"
    );
    // Two newer tenants push vm-q (the LRU entry) out over the ceiling.
    feed(&mut engine, "vm-b", 4, 1_000.0);
    feed(&mut engine, "vm-c", 4, 1_000.0);
    engine.finish();
    assert_eq!(engine.stats().evicted, 1);
    // The eviction closes vm-q without losing what it knew: the close
    // event carries the alarm count, and the retained snapshot agrees.
    let closed = engine
        .log_lines()
        .iter()
        .find(|l| {
            l.contains(r#""event":"closed""#)
                && l.contains(r#""tenant":"vm-q""#)
                && l.contains(r#""reason":"evicted""#)
        })
        .expect("vm-q must close with reason evicted");
    let obj = JsonObject::parse(closed).expect("closed event parses");
    assert!(obj.get_f64("alarms").unwrap_or(0.0) >= 1.0, "verdict lost: {closed}");
    let snap = engine.snapshot("vm-q").expect("retired tenant stays introspectable");
    assert!(!snap.live);
    assert!(snap.alarms >= 1);
}

#[test]
fn eviction_prefers_a_terminal_session_over_a_less_recent_live_one() {
    let mut engine = Engine::new(edge_config(2)).unwrap();
    // vm-old is a live innocent and the least-recently-seen session;
    // vm-q quarantines *after* it, so by pure LRU vm-q is the safer
    // (most recent) entry. But a quarantined session pins its slot
    // forever — it will never speak again, while vm-old might — so the
    // ceiling must take the terminal session first.
    feed(&mut engine, "vm-old", 4, 1_000.0);
    feed(&mut engine, "vm-q", 60, 1_000.0);
    feed(&mut engine, "vm-q", 100, 100.0);
    engine.flush();
    assert!(
        engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"quarantined""#) && l.contains(r#""tenant":"vm-q""#)),
        "setup: vm-q must reach quarantine"
    );
    feed(&mut engine, "vm-new", 4, 1_000.0); // over the ceiling
    engine.finish();
    assert_eq!(engine.stats().evicted, 1);
    assert!(
        engine.log_lines().iter().any(|l| {
            l.contains(r#""event":"closed""#)
                && l.contains(r#""tenant":"vm-q""#)
                && l.contains(r#""reason":"evicted""#)
        }),
        "the quarantined session is the eviction victim"
    );
    let old = engine.snapshot("vm-old").expect("vm-old snapshot");
    assert!(old.live, "the live innocent keeps its slot despite being older");
}

#[test]
fn evicted_tenant_reopens_with_a_bumped_generation() {
    let mut engine = Engine::new(edge_config(2)).unwrap();
    feed(&mut engine, "vm-a", 4, 1_000.0);
    feed(&mut engine, "vm-b", 4, 1_000.0);
    feed(&mut engine, "vm-c", 4, 1_000.0); // evicts vm-a
    feed(&mut engine, "vm-a", 4, 1_000.0); // reopens as generation 1
    engine.finish();
    assert_eq!(engine.stats().evicted, 2, "reopening vm-a evicts again in turn");
    assert_eq!(engine.stats().reopened, 1);
    let opened_a: Vec<&String> = engine
        .log_lines()
        .iter()
        .filter(|l| l.contains(r#""event":"opened""#) && l.contains(r#""tenant":"vm-a""#))
        .collect();
    assert_eq!(opened_a.len(), 2);
    assert!(opened_a[0].contains(r#""gen":0"#));
    assert!(opened_a[1].contains(r#""gen":1"#));
    let snap = engine.snapshot("vm-a").expect("vm-a snapshot");
    assert_eq!(snap.generation, 1);
}

#[test]
fn eviction_under_backpressure_drains_the_queue_before_the_close() {
    // A large batch holds vm-bp's samples queued; its queue (capacity
    // 64) overflows into a drop burst, and then the eviction lands
    // while the queue is still full.
    let mut config = edge_config(2);
    config.batch = 10_000;
    let mut engine = Engine::new(config).unwrap();
    feed(&mut engine, "vm-bp", 100, 1_000.0); // 64 queued, 36 dropped
    feed(&mut engine, "vm-b", 2, 1_000.0);
    feed(&mut engine, "vm-c", 2, 1_000.0); // evicts vm-bp mid-backpressure
    engine.finish();
    assert_eq!(engine.stats().evicted, 1);
    assert!(engine.stats().drops_backpressure > 0, "setup: backpressure must fire");
    // The queued samples are processed before the close: the closed
    // event accounts for every admitted sample and is vm-bp's last
    // lifecycle event.
    let closed = engine
        .log_lines()
        .iter()
        .find(|l| {
            l.contains(r#""event":"closed""#)
                && l.contains(r#""tenant":"vm-bp""#)
                && l.contains(r#""reason":"evicted""#)
        })
        .expect("vm-bp must close with reason evicted");
    let obj = JsonObject::parse(closed).expect("closed event parses");
    // The Oldest drop policy admits every arrival and displaces queued
    // ones: all 100 count as ingested, the 36 displaced as dropped.
    assert_eq!(obj.get_f64("ingested"), Some(100.0), "admission accounting survives eviction");
    assert_eq!(obj.get_f64("dropped"), Some(36.0), "drop accounting survives eviction");
}

#[test]
fn seeded_churn_fuzz_slab_reuse_never_aliases_live_tenants() {
    // 64 tenants over a 16-slot ceiling with random closes: slots
    // recycle constantly. If a recycled slot ever aliased a live
    // tenant, the per-tenant event streams below would interleave
    // wrongly — a generation would repeat, or a sample event would land
    // between a close and the next open.
    let mut engine = Engine::new(edge_config(16)).unwrap();
    let mut rng = Rng::new(0xA11A5);
    for _ in 0..20_000 {
        let tenant = format!("vm-{:02}", rng.next_below(64));
        if rng.chance(0.05) {
            engine.ingest_line(&format!(r#"{{"tenant":"{tenant}","ctl":"close"}}"#));
        } else {
            engine.ingest_line(&sample(&tenant, 1_000.0));
        }
    }
    engine.finish();
    assert!(engine.open_sessions() <= 16, "ceiling held under churn");
    assert!(engine.stats().evicted > 0, "fuzz must exercise eviction");
    assert!(engine.stats().reopened > 0, "fuzz must exercise reopens");

    // Replay the log per tenant: generations strictly increase by one
    // per open, opens and closes alternate, and nothing but terminal
    // drops appears for a tenant while it is closed.
    let mut open_gen: std::collections::BTreeMap<String, Option<u64>> =
        std::collections::BTreeMap::new();
    let mut last_gen: std::collections::BTreeMap<String, i64> =
        std::collections::BTreeMap::new();
    for line in engine.log_lines() {
        let obj = JsonObject::parse(line).expect("log line parses");
        let Some(event) = obj.get_str("event") else { continue };
        let Some(tenant) = obj.get_str("tenant") else { continue };
        let entry = open_gen.entry(tenant.to_string()).or_default();
        match event {
            "opened" => {
                let generation = obj.get_f64("gen").expect("opened has gen") as u64;
                assert!(entry.is_none(), "{tenant}: opened gen {generation} while open");
                let prev = last_gen.get(tenant).copied().unwrap_or(-1);
                assert_eq!(
                    generation as i64,
                    prev + 1,
                    "{tenant}: generation must bump by exactly one"
                );
                last_gen.insert(tenant.to_string(), generation as i64);
                *entry = Some(generation);
            }
            "closed" => {
                assert!(entry.is_some(), "{tenant}: closed while not open: {line}");
                *entry = None;
            }
            "dropped" => {
                // Terminal drops are the only sample traffic a closed
                // tenant may log.
                if entry.is_none() {
                    assert_eq!(
                        obj.get("terminal").and_then(|v| v.as_bool()),
                        Some(true),
                        "{tenant}: non-terminal event while closed: {line}"
                    );
                }
            }
            _ => {
                assert!(
                    entry.is_some(),
                    "{tenant}: event {event:?} while closed: {line}"
                );
            }
        }
    }
    // Snapshots agree with the replayed lifecycle state.
    for snap in engine.snapshots() {
        let open = open_gen.get(snap.tenant).copied().flatten();
        assert_eq!(
            open.is_some(),
            snap.live,
            "{}: snapshot live flag disagrees with the log",
            snap.tenant
        );
    }
}
