//! Deterministic chaos: seeded fault injection for JSONL ingestion.
//!
//! A [`FaultPlan`] sits between any line source and the engine and
//! injects the failure modes a real telemetry transport exhibits —
//! corrupted bytes, truncated lines fused with their successor,
//! duplicated and reordered deliveries, mid-batch stalls, connection
//! drops that replay an unacknowledged tail, and tenant churn (sessions
//! closing or vanishing mid-stream). Every decision is drawn from a
//! seeded [`memdos_stats::rng::Rng`], never from wall-clock time or OS
//! entropy, so a fault scenario is a pure function of its seed: the
//! soak harness (`memdos-engine soak`) replays the same scenario at
//! several worker counts and asserts byte-identical verdict logs.
//!
//! The plan is push-based so it wraps streaming sources: feed input
//! lines with [`FaultPlan::push_line`] (each returns the lines to
//! deliver now — possibly none, possibly several) and flush buffered
//! state with [`FaultPlan::finish`] at end of stream. [`FaultPlan::apply`]
//! is the one-shot convenience over a full stream.
//!
//! [`Backoff`] is the transport-side counterpart: a deterministic
//! capped-exponential retry schedule the CLI uses to recover TCP
//! sources, kept here (pure, clock-free) so the policy is testable
//! while only the binary touches real sleeps.

use crate::protocol::Record;
use memdos_stats::rng::{derive_seed, Rng};
use std::collections::{BTreeMap, VecDeque};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Overwrite 1–3 characters of the line with junk.
    Corrupt,
    /// Cut the line short; the kept prefix fuses onto the next delivery.
    Truncate,
    /// Deliver the line twice.
    Duplicate,
    /// Swap the line with its successor (adjacent reorder).
    Reorder,
    /// Hold deliveries for a stretch, then release them as one burst.
    Stall,
    /// Drop the connection: re-deliver the recent unacknowledged tail.
    Disconnect,
    /// Tenant churn: inject a `ctl:close`, or mute the tenant so it
    /// vanishes mid-stream (and trips the engine's idle timeout).
    Churn,
}

/// Every fault class, in the stable order used by traces and reports.
pub const FAULT_CLASSES: [FaultClass; 7] = [
    FaultClass::Corrupt,
    FaultClass::Truncate,
    FaultClass::Duplicate,
    FaultClass::Reorder,
    FaultClass::Stall,
    FaultClass::Disconnect,
    FaultClass::Churn,
];

impl FaultClass {
    /// Stable lowercase label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Corrupt => "corrupt",
            FaultClass::Truncate => "truncate",
            FaultClass::Duplicate => "duplicate",
            FaultClass::Reorder => "reorder",
            FaultClass::Stall => "stall",
            FaultClass::Disconnect => "disconnect",
            FaultClass::Churn => "churn",
        }
    }

    /// Position in [`FAULT_CLASSES`].
    fn index(&self) -> usize {
        match self {
            FaultClass::Corrupt => 0,
            FaultClass::Truncate => 1,
            FaultClass::Duplicate => 2,
            FaultClass::Reorder => 3,
            FaultClass::Stall => 4,
            FaultClass::Disconnect => 5,
            FaultClass::Churn => 6,
        }
    }
}

/// Per-class injection rates and shape knobs for a [`FaultPlan`].
///
/// At most one fault is drawn per input line: a single uniform draw is
/// matched against the cumulative class probabilities, so the rates must
/// sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Per-line probability of [`FaultClass::Corrupt`].
    pub corrupt: f64,
    /// Per-line probability of [`FaultClass::Truncate`].
    pub truncate: f64,
    /// Per-line probability of [`FaultClass::Duplicate`].
    pub duplicate: f64,
    /// Per-line probability of [`FaultClass::Reorder`].
    pub reorder: f64,
    /// Per-line probability of [`FaultClass::Stall`].
    pub stall: f64,
    /// Per-line probability of [`FaultClass::Disconnect`].
    pub disconnect: f64,
    /// Per-line probability of [`FaultClass::Churn`].
    pub churn: f64,
    /// Inclusive stall length range, in delivered lines.
    pub stall_len: (u64, u64),
    /// Inclusive mute length range for the churn "vanish" flavour, in
    /// that tenant's suppressed lines.
    pub mute_len: (u64, u64),
    /// Lines of recent output a disconnect re-delivers.
    pub replay_window: usize,
}

impl FaultPlanConfig {
    /// No faults: the plan is an identity transform.
    pub fn none() -> Self {
        FaultPlanConfig {
            corrupt: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            stall: 0.0,
            disconnect: 0.0,
            churn: 0.0,
            stall_len: (8, 64),
            mute_len: (250, 450),
            replay_window: 4,
        }
    }

    /// The soak default: every class active at rates that exercise each
    /// one many times over a few thousand lines while leaving most of
    /// the stream intact.
    pub fn chaos() -> Self {
        FaultPlanConfig {
            corrupt: 0.010,
            truncate: 0.005,
            duplicate: 0.010,
            reorder: 0.010,
            stall: 0.002,
            disconnect: 0.002,
            churn: 0.000_5,
            ..FaultPlanConfig::none()
        }
    }

    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("corrupt", self.corrupt),
            ("truncate", self.truncate),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("stall", self.stall),
            ("disconnect", self.disconnect),
            ("churn", self.churn),
        ];
        let mut sum = 0.0;
        for (name, p) in rates {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} rate {p} is not in [0, 1]"));
            }
            sum += p;
        }
        if sum > 1.0 {
            return Err(format!("fault rates sum to {sum} > 1"));
        }
        if self.stall_len.0 > self.stall_len.1 {
            return Err("stall_len range is inverted".to_string());
        }
        if self.mute_len.0 > self.mute_len.1 {
            return Err("mute_len range is inverted".to_string());
        }
        if self.replay_window == 0 {
            return Err("replay_window must be positive".to_string());
        }
        Ok(())
    }
}

/// The injected-fault record of one plan run: which class fired at which
/// input line, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTrace {
    events: Vec<(u64, FaultClass)>,
    counts: [u64; FAULT_CLASSES.len()],
}

impl FaultTrace {
    fn record(&mut self, line: u64, class: FaultClass) {
        self.events.push((line, class));
        if let Some(c) = self.counts.get_mut(class.index()) {
            *c += 1;
        }
    }

    /// Times `class` fired.
    pub fn count(&self, class: FaultClass) -> u64 {
        self.counts.get(class.index()).copied().unwrap_or(0)
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(input line, class)` event sequence, in injection order.
    pub fn events(&self) -> &[(u64, FaultClass)] {
        &self.events
    }

    /// Classes that never fired.
    pub fn missing_classes(&self) -> Vec<FaultClass> {
        FAULT_CLASSES
            .iter()
            .copied()
            .filter(|c| self.count(*c) == 0)
            .collect()
    }

    /// True when every class fired at least once.
    pub fn all_classes_exercised(&self) -> bool {
        self.missing_classes().is_empty()
    }

    /// FNV-1a hash of the event sequence — two runs injected the same
    /// faults at the same lines iff their fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (line, class) in &self.events {
            for byte in line
                .to_le_bytes()
                .iter()
                .chain(&[class.index() as u8])
            {
                h ^= u64::from(*byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// A seeded fault injector over a line stream. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultPlanConfig,
    rng: Rng,
    line_no: u64,
    /// Line held back by a pending adjacent reorder.
    held: Option<String>,
    /// Truncated prefix awaiting fusion onto the next delivery.
    fuse: Option<String>,
    /// Deliveries buffered by an active stall.
    stalled: Vec<String>,
    stall_left: u64,
    /// Recent deliveries a disconnect re-delivers.
    recent: VecDeque<String>,
    /// Tenants seen so far, in first-appearance order.
    tenants: Vec<String>,
    /// Muted tenants → suppressed lines remaining.
    muted: BTreeMap<String, u64>,
    trace: FaultTrace,
}

impl FaultPlan {
    /// Creates a plan; all randomness derives from `seed`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid `config` knob.
    pub fn new(seed: u64, config: FaultPlanConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(FaultPlan {
            config,
            rng: Rng::new(derive_seed(seed, 0xFA17)),
            line_no: 0,
            held: None,
            fuse: None,
            stalled: Vec::new(),
            stall_left: 0,
            recent: VecDeque::new(),
            tenants: Vec::new(),
            muted: BTreeMap::new(),
            trace: FaultTrace::default(),
        })
    }

    /// The injected-fault record so far.
    pub fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    /// Input lines consumed so far.
    pub fn lines_in(&self) -> u64 {
        self.line_no
    }

    /// Feeds one input line; returns the lines to deliver now, in order
    /// (possibly none — buffered or suppressed — or several).
    pub fn push_line(&mut self, line: &str) -> Vec<String> {
        let idx = self.line_no;
        self.line_no += 1;
        let mut out = Vec::new();
        // Track tenants and apply mutes on the clean line, before any
        // corruption, so churn targets real sessions.
        let tenant = Record::parse(line).ok().map(|r| r.tenant().to_string());
        if let Some(t) = &tenant {
            if !self.tenants.iter().any(|k| k == t) {
                self.tenants.push(t.clone());
            }
            if let Some(left) = self.muted.get_mut(t) {
                *left -= 1;
                if *left == 0 {
                    self.muted.remove(t);
                }
                self.release_held(&mut out);
                return out; // the tenant has vanished: line lost
            }
        }
        match self.draw_fault() {
            None => self.emit(line.to_string(), &mut out),
            Some(FaultClass::Corrupt) => {
                self.trace.record(idx, FaultClass::Corrupt);
                let dirty = self.corrupt(line);
                self.emit(dirty, &mut out);
            }
            Some(FaultClass::Truncate) => {
                // Fuse any pending prefix first so prefixes chain rather
                // than overwrite each other.
                let full = match self.fuse.take() {
                    Some(p) => p + line,
                    None => line.to_string(),
                };
                let chars = full.chars().count();
                if chars < 2 {
                    self.emit(full, &mut out);
                } else {
                    self.trace.record(idx, FaultClass::Truncate);
                    let cut = 1 + self.rng.next_below(chars as u64 - 1) as usize;
                    self.fuse = Some(full.chars().take(cut).collect());
                }
            }
            Some(FaultClass::Duplicate) => {
                self.trace.record(idx, FaultClass::Duplicate);
                self.emit(line.to_string(), &mut out);
                self.emit(line.to_string(), &mut out);
            }
            Some(FaultClass::Reorder) => {
                if self.held.is_none() {
                    self.trace.record(idx, FaultClass::Reorder);
                    self.held = Some(line.to_string());
                    return out; // delivered after the next line
                }
                self.emit(line.to_string(), &mut out);
            }
            Some(FaultClass::Stall) => {
                self.trace.record(idx, FaultClass::Stall);
                let (lo, hi) = self.config.stall_len;
                self.stall_left = self.rng.range_inclusive(lo, hi);
                self.emit(line.to_string(), &mut out);
            }
            Some(FaultClass::Disconnect) => {
                self.trace.record(idx, FaultClass::Disconnect);
                self.emit(line.to_string(), &mut out);
                // Reconnect replays the unacknowledged tail.
                for l in self.recent.clone() {
                    out.push(l);
                }
            }
            Some(FaultClass::Churn) => {
                if let Some(victim) = self.pick_tenant() {
                    self.trace.record(idx, FaultClass::Churn);
                    if self.rng.chance(0.5) {
                        // Close flavour: the tenant reopens on its next
                        // sample (generation bump).
                        let close =
                            Record::Close { tenant: victim }.to_line();
                        self.emit(close, &mut out);
                    } else {
                        // Vanish flavour: the tenant goes silent long
                        // enough to trip the engine's idle timeout.
                        let (lo, hi) = self.config.mute_len;
                        let len = self.rng.range_inclusive(lo, hi);
                        self.muted.insert(victim, len.max(1));
                    }
                }
                self.emit(line.to_string(), &mut out);
            }
        }
        self.release_held(&mut out);
        out
    }

    /// Flushes everything still buffered (end of stream): a held
    /// reordered line, a stalled burst, a dangling truncated prefix.
    pub fn finish(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(h) = self.held.take() {
            self.emit(h, &mut out);
        }
        self.stall_left = 0;
        for l in std::mem::take(&mut self.stalled) {
            self.deliver(l, &mut out);
        }
        if let Some(p) = self.fuse.take() {
            self.deliver(p, &mut out);
        }
        out
    }

    /// One-shot convenience: runs `lines` through a fresh plan and
    /// returns the chaotic stream plus its fault trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid `config` knob.
    pub fn apply(
        seed: u64,
        config: FaultPlanConfig,
        lines: &[String],
    ) -> Result<(Vec<String>, FaultTrace), String> {
        let mut plan = FaultPlan::new(seed, config)?;
        let mut out = Vec::with_capacity(lines.len());
        for line in lines {
            out.extend(plan.push_line(line));
        }
        out.extend(plan.finish());
        Ok((out, plan.trace.clone()))
    }

    /// Draws at most one fault class for the current line.
    fn draw_fault(&mut self) -> Option<FaultClass> {
        let u = self.rng.next_f64();
        let c = self.config;
        let rates = [
            (FaultClass::Corrupt, c.corrupt),
            (FaultClass::Truncate, c.truncate),
            (FaultClass::Duplicate, c.duplicate),
            (FaultClass::Reorder, c.reorder),
            (FaultClass::Stall, c.stall),
            (FaultClass::Disconnect, c.disconnect),
            (FaultClass::Churn, c.churn),
        ];
        let mut acc = 0.0;
        for (class, p) in rates {
            acc += p;
            if u < acc {
                return Some(class);
            }
        }
        None
    }

    /// Routes one line toward the output through the fuse and stall
    /// stages.
    fn emit(&mut self, line: String, out: &mut Vec<String>) {
        let line = match self.fuse.take() {
            Some(prefix) => prefix + &line,
            None => line,
        };
        if self.stall_left > 0 {
            self.stall_left -= 1;
            self.stalled.push(line);
            if self.stall_left == 0 {
                // Burst release, order preserved.
                for l in std::mem::take(&mut self.stalled) {
                    self.deliver(l, out);
                }
            }
            return;
        }
        self.deliver(line, out);
    }

    /// Hands one line to the caller and remembers it for disconnect
    /// replays.
    fn deliver(&mut self, line: String, out: &mut Vec<String>) {
        self.recent.push_back(line.clone());
        while self.recent.len() > self.config.replay_window {
            self.recent.pop_front();
        }
        out.push(line);
    }

    /// Emits the line held by a pending reorder, after the line that
    /// overtook it.
    fn release_held(&mut self, out: &mut Vec<String>) {
        if !out.is_empty() {
            if let Some(h) = self.held.take() {
                self.emit(h, out);
            }
        }
    }

    /// Picks a churn victim among the tenants seen so far.
    fn pick_tenant(&mut self) -> Option<String> {
        if self.tenants.is_empty() {
            return None;
        }
        let i = self.rng.next_below(self.tenants.len() as u64) as usize;
        self.tenants.get(i).cloned()
    }

    /// Overwrites 1–3 characters with JSON-hostile junk.
    fn corrupt(&mut self, line: &str) -> String {
        const JUNK: [char; 8] = ['#', '{', '}', '"', ':', ',', 'Z', '\u{fffd}'];
        let mut chars: Vec<char> = line.chars().collect();
        if chars.is_empty() {
            return line.to_string();
        }
        let hits = 1 + self.rng.next_below(3);
        for _ in 0..hits {
            let pos = self.rng.next_below(chars.len() as u64) as usize;
            let junk = JUNK
                .get(self.rng.next_below(JUNK.len() as u64) as usize)
                .copied()
                .unwrap_or('#');
            if let Some(c) = chars.get_mut(pos) {
                *c = junk;
            }
        }
        chars.into_iter().collect()
    }
}

/// A deterministic capped-exponential retry schedule for flaky
/// transports (TCP bind/accept/read). Pure arithmetic — the caller owns
/// the actual sleeping — so the policy replays identically and is
/// testable without a clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    max_retries: u32,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base_ms`, doubling per attempt, clamped
    /// to `cap_ms`, giving up after `max_retries` attempts.
    pub fn new(base_ms: u64, cap_ms: u64, max_retries: u32) -> Self {
        Backoff { base_ms: base_ms.max(1), cap_ms: cap_ms.max(1), max_retries, attempt: 0 }
    }

    /// The CLI default: 100 ms doubling to a 5 s cap, 8 attempts.
    pub fn transport() -> Self {
        Backoff::new(100, 5_000, 8)
    }

    /// Delay before the next retry, or `None` when the budget is spent.
    pub fn next_delay_ms(&mut self) -> Option<u64> {
        if self.attempt >= self.max_retries {
            return None;
        }
        let exp = self.attempt.min(32);
        self.attempt += 1;
        let delay = self
            .base_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX));
        Some(delay.min(self.cap_ms))
    }

    /// Resets the schedule after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lines(n: u64) -> Vec<String> {
        let mut lines = Vec::new();
        for i in 0..n {
            for t in ["vm-a", "vm-b"] {
                lines.push(format!(r#"{{"tenant":"{t}","access":{i},"miss":1}}"#));
            }
        }
        lines
    }

    #[test]
    fn no_faults_is_identity() {
        let lines = sample_lines(200);
        let (out, trace) = FaultPlan::apply(7, FaultPlanConfig::none(), &lines).unwrap();
        assert_eq!(out, lines);
        assert_eq!(trace.total(), 0);
        assert!(trace.events().is_empty());
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_trace() {
        let lines = sample_lines(2_000);
        let cfg = FaultPlanConfig::chaos();
        let (a1, t1) = FaultPlan::apply(42, cfg, &lines).unwrap();
        let (a2, t2) = FaultPlan::apply(42, cfg, &lines).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        let (_, t3) = FaultPlan::apply(43, cfg, &lines).unwrap();
        assert_ne!(t1.fingerprint(), t3.fingerprint());
    }

    #[test]
    fn chaos_rates_exercise_every_class_on_a_long_stream() {
        let lines = sample_lines(8_000);
        let (_, trace) = FaultPlan::apply(1, FaultPlanConfig::chaos(), &lines).unwrap();
        assert!(
            trace.all_classes_exercised(),
            "missing: {:?}",
            trace.missing_classes()
        );
    }

    #[test]
    fn single_class_plans_have_the_advertised_shape() {
        let lines = sample_lines(500);
        // Duplicate-only: output is longer, every line is valid.
        let cfg = FaultPlanConfig { duplicate: 0.2, ..FaultPlanConfig::none() };
        let (out, trace) = FaultPlan::apply(5, cfg, &lines).unwrap();
        assert!(out.len() > lines.len());
        assert_eq!(
            out.len() as u64,
            lines.len() as u64 + trace.count(FaultClass::Duplicate)
        );
        // Reorder-only: same multiset of lines, same length.
        let cfg = FaultPlanConfig { reorder: 0.2, ..FaultPlanConfig::none() };
        let (out, trace) = FaultPlan::apply(5, cfg, &lines).unwrap();
        assert!(trace.count(FaultClass::Reorder) > 0);
        assert_eq!(out.len(), lines.len());
        let mut sorted_in = lines.clone();
        let mut sorted_out = out.clone();
        sorted_in.sort();
        sorted_out.sort();
        assert_eq!(sorted_in, sorted_out);
        // Stall-only: order fully preserved (a stall is pure timing).
        let cfg = FaultPlanConfig { stall: 0.05, ..FaultPlanConfig::none() };
        let (out, trace) = FaultPlan::apply(5, cfg, &lines).unwrap();
        assert!(trace.count(FaultClass::Stall) > 0);
        assert_eq!(out, lines);
    }

    #[test]
    fn truncate_fuses_prefix_onto_next_delivery() {
        let lines = sample_lines(1);
        let cfg = FaultPlanConfig { truncate: 1.0, ..FaultPlanConfig::none() };
        let mut plan = FaultPlan::new(9, cfg).unwrap();
        let first = lines.first().unwrap();
        assert!(plan.push_line(first).is_empty(), "truncated line is withheld");
        let out = plan.finish();
        assert_eq!(out.len(), 1);
        let fused = out.first().unwrap();
        assert!(first.starts_with(fused.as_str()), "prefix of the original survives");
        assert!(fused.len() < first.len());
    }

    #[test]
    fn churn_injects_closes_for_seen_tenants() {
        let lines = sample_lines(4_000);
        let cfg = FaultPlanConfig { churn: 0.05, ..FaultPlanConfig::none() };
        let (out, trace) = FaultPlan::apply(11, cfg, &lines).unwrap();
        assert!(trace.count(FaultClass::Churn) > 0);
        let closes = out.iter().filter(|l| l.contains(r#""ctl":"close""#)).count();
        assert!(closes > 0, "close flavour fired at least once");
        // Vanish flavour suppresses lines: output shorter than input
        // plus injected closes.
        assert!(out.len() < lines.len() + closes + 1);
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = FaultPlanConfig { corrupt: 1.5, ..FaultPlanConfig::none() };
        assert!(FaultPlan::new(0, cfg).is_err());
        let cfg = FaultPlanConfig { corrupt: 0.6, duplicate: 0.6, ..FaultPlanConfig::none() };
        assert!(FaultPlan::new(0, cfg).is_err());
        let cfg = FaultPlanConfig { stall_len: (9, 3), ..FaultPlanConfig::none() };
        assert!(FaultPlan::new(0, cfg).is_err());
        let cfg = FaultPlanConfig { replay_window: 0, ..FaultPlanConfig::none() };
        assert!(FaultPlan::new(0, cfg).is_err());
    }

    #[test]
    fn backoff_doubles_caps_and_gives_up() {
        let mut b = Backoff::new(100, 1_000, 5);
        let delays: Vec<Option<u64>> = (0..6).map(|_| b.next_delay_ms()).collect();
        assert_eq!(
            delays,
            [Some(100), Some(200), Some(400), Some(800), Some(1_000), None]
        );
        b.reset();
        assert_eq!(b.next_delay_ms(), Some(100));
        assert_eq!(b.attempts(), 1);
    }
}
