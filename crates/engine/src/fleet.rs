//! Fleet-scale replay: the bridge between the [`memdos_sim::fleet`]
//! scenario generator and the engine.
//!
//! A fleet scenario stamps thousands of tenants from the workload
//! catalogue's signal templates ([`fleet_templates`]), schedules them
//! with staggered arrivals, zipf-skewed activity and seeded churn, and
//! renders the result as the engine's JSONL wire format
//! ([`fleet_jsonl`]). [`fleet_engine_config`] sizes the engine for that
//! shape: a short Stage-1 profile (fleet tenants are many and
//! short-lived, not four and long-lived like the demo) and an explicit
//! `max_sessions` memory ceiling so a 50k-tenant stream runs in bounded
//! resident memory, with LRU eviction and generation-bumping reopens
//! doing the recycling.
//!
//! Everything here is deterministic in the scenario seed; the tier-1
//! test `tests/engine_fleet_determinism.rs` pins byte-identical verdict
//! logs across worker counts on exactly this path, evictions included.

use crate::config::Config;
use crate::protocol::Record;
use crate::session::SessionConfig;
use memdos_core::config::{SdsBParams, SdsPParams, SdsParams};
use memdos_core::detector::Observation;
use memdos_sim::fleet::{FleetConfig, FleetEventKind, FleetGenerator, FleetItem, VmTemplate};
use memdos_workloads::catalog::Application;

/// One signal template per catalogue application, in [`Application::ALL`]
/// order — the heterogeneity pool fleet tenants are stamped from.
pub fn fleet_templates() -> Vec<VmTemplate> {
    Application::ALL.iter().map(Application::fleet_template).collect()
}

/// The tenant name a fleet item maps to on the wire:
/// `<app>-<tenant index>`, stable across the tenant's close/reopen
/// cycles so churn exercises the engine's generation machinery.
pub fn tenant_name(item: &FleetItem, templates: &[VmTemplate]) -> String {
    let app = templates
        .get(item.template as usize)
        .map(|t| t.app)
        .unwrap_or("vm");
    format!("{app}-{:05}", item.tenant)
}

/// SDS parameters compact enough for fleet sessions: windows an order
/// of magnitude shorter than the paper's Table 1 values, so Stage-1
/// completes within [`FLEET_PROFILE_TICKS`] samples and a session's
/// working set stays small at 50k tenants.
pub fn fleet_sds_params() -> SdsParams {
    SdsParams {
        sdsb: SdsBParams { window: 60, step: 10, ..SdsBParams::default() },
        sdsp: SdsPParams { window: 60, step: 10, ..SdsPParams::default() },
    }
}

/// Stage-1 length for fleet sessions: the profiler needs
/// `window + 19 * step` raw samples for its minimum EWMA history
/// (60 + 190 = 250 with [`fleet_sds_params`]), rounded up.
pub const FLEET_PROFILE_TICKS: u64 = 256;

/// Engine configuration for fleet replays: `workers` dispatch threads
/// and a `max_sessions` resident ceiling (0 = unbounded). Batch and
/// queue sizes keep `batch <= queue_capacity` so the log stays
/// batch-size-invariant; the idle timeout is off — fleet departures are
/// explicit closes, and an idle sweep over a 50k-tenant tail would only
/// add log noise to the scaling measurement.
pub fn fleet_engine_config(workers: usize, max_sessions: usize) -> Config {
    Config {
        workers,
        batch: 1_024,
        max_sessions,
        session: SessionConfig {
            profile_ticks: FLEET_PROFILE_TICKS,
            sds: fleet_sds_params(),
            ..SessionConfig::default()
        },
        ..Config::default()
    }
}

/// A fleet scenario sized for `tenants`: the timeline shrinks as the
/// fleet grows so total line counts stay tractable (the bench compares
/// throughput per sample, not per scenario), while every size keeps the
/// same arrival/skew/churn shape.
pub fn fleet_scenario(tenants: u32, seed: u64) -> FleetConfig {
    let span_ticks = match tenants {
        0..=2_000 => 2_048,
        2_001..=20_000 => 512,
        _ => 256,
    };
    FleetConfig {
        tenants,
        span_ticks,
        zipf_s: 1.1,
        min_interval: 4,
        max_interval: 64,
        churn: 0.2,
        seed,
        attack: None,
    }
}

/// Renders a fleet scenario as engine wire lines, in timeline order.
///
/// # Errors
///
/// Returns a description of the problem for an invalid `config`.
pub fn fleet_jsonl(config: &FleetConfig) -> Result<Vec<String>, String> {
    let templates = fleet_templates();
    let mut generator = FleetGenerator::new(*config, &templates)?;
    let mut lines = Vec::new();
    generator.drive(&templates, |item| {
        let tenant = tenant_name(&item, &templates);
        let line = match item.kind {
            FleetEventKind::Sample { access, miss } => Record::Sample {
                tenant,
                obs: Observation { access_num: access, miss_num: miss },
            }
            .to_line(),
            FleetEventKind::Close => Record::Close { tenant }.to_line(),
        };
        lines.push(line);
    });
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn fleet_lines_are_deterministic_and_parse() {
        let config = FleetConfig {
            tenants: 32,
            span_ticks: 256,
            seed: 11,
            ..fleet_scenario(32, 11)
        };
        let a = fleet_jsonl(&config).unwrap();
        let b = fleet_jsonl(&config).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for line in &a {
            Record::parse(line).expect("fleet line parses");
        }
        assert!(
            a.iter().any(|l| l.contains(r#""ctl":"close""#)),
            "churn produces explicit closes"
        );
    }

    #[test]
    fn fleet_replay_respects_the_ceiling() {
        let lines = fleet_jsonl(&fleet_scenario(96, 3)).unwrap();
        let mut engine = Engine::new(fleet_engine_config(1, 16)).unwrap();
        for line in &lines {
            engine.ingest_line(line);
        }
        engine.finish();
        assert!(engine.open_sessions() <= 16, "ceiling held");
        assert!(engine.stats().evicted > 0, "96 tenants over a 16 ceiling must evict");
        assert_eq!(engine.malformed(), 0);
    }

    #[test]
    fn scenario_presets_scale_span_down() {
        assert_eq!(fleet_scenario(1_000, 0).span_ticks, 2_048);
        assert_eq!(fleet_scenario(10_000, 0).span_ticks, 512);
        assert_eq!(fleet_scenario(50_000, 0).span_ticks, 256);
        for tenants in [1_000, 10_000, 50_000] {
            fleet_scenario(tenants, 0).validate().unwrap();
        }
        assert!(fleet_engine_config(2, 16_384).validate().is_ok());
    }

    #[test]
    fn templates_cover_the_whole_catalogue() {
        let templates = fleet_templates();
        assert_eq!(templates.len(), Application::ALL.len());
        let item = FleetItem {
            tick: 0,
            tenant: 7,
            template: 9,
            kind: FleetEventKind::Close,
        };
        assert_eq!(tenant_name(&item, &templates), "facenet-00007");
    }
}
