//! The engine's line-delimited JSON wire protocol.
//!
//! Each input line is one flat JSON object (see
//! [`memdos_metrics::jsonl`]) and decodes to one [`Record`]:
//!
//! * a **sample** — `{"tenant":"vm-0","access":1234,"miss":56}` — one
//!   `T_PCM` tick of the tenant's LLC counters, or
//! * a **control** — `{"tenant":"vm-0","ctl":"close"}` — a lifecycle
//!   request.
//!
//! Unknown extra fields are ignored (forward compatibility); missing or
//! mis-typed required fields are an error carrying the reason, so the
//! engine can log and count malformed input without dying.

use memdos_core::detector::Observation;
use memdos_metrics::jsonl::{parse_record_borrowed, JsonObject, RawKind, RawParse, RawRecord};

pub use memdos_metrics::jsonl::RecordError;

/// One decoded input line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// One PCM tick of a tenant.
    Sample {
        /// Tenant id (session key).
        tenant: String,
        /// The tick's LLC statistics.
        obs: Observation,
    },
    /// A request to close the tenant's session.
    Close {
        /// Tenant id (session key).
        tenant: String,
    },
}

impl Record {
    /// The tenant the record addresses.
    pub fn tenant(&self) -> &str {
        match self {
            Record::Sample { tenant, .. } | Record::Close { tenant } => tenant,
        }
    }

    /// Decodes one JSONL line: the zero-allocation fast path first
    /// ([`parse_record_borrowed`]), with the [`JsonObject`] slow path
    /// covering the escape-bearing lines the fast path defers on. Both
    /// paths accept/reject identically (pinned by the engine's
    /// parser-equivalence suite).
    ///
    /// # Errors
    ///
    /// Returns the [`RecordError`] class — syntax errors, a missing
    /// `tenant`, an unknown `ctl` verb, or missing/non-finite counters.
    /// Render a human-readable reason lazily via
    /// [`RecordError::reason`].
    pub fn parse(line: &str) -> Result<Record, RecordError> {
        match parse_record_borrowed(line) {
            RawParse::Record(raw) => Ok(Record::from_raw(raw)),
            RawParse::Reject(e) => Err(e),
            RawParse::Fallback => Record::parse_slow(line),
        }
    }

    /// Decodes one JSONL line through the allocating [`JsonObject`]
    /// parser only — the reference implementation [`Record::parse`]'s
    /// fast path must agree with.
    ///
    /// # Errors
    ///
    /// Returns the [`RecordError`] class of the first problem.
    pub fn parse_slow(line: &str) -> Result<Record, RecordError> {
        let obj = JsonObject::parse(line).map_err(|_| RecordError::Syntax)?;
        Record::from_object(&obj)
    }

    /// Takes ownership of a borrowed fast-path record.
    // lint:allow(hot-propagate) -- owning the tenant key is the cost of leaving the borrowed fast path; the zero-alloc route stays on RawRecord
    fn from_raw(raw: RawRecord<'_>) -> Record {
        match raw.kind {
            RawKind::Sample { access, miss } => Record::Sample {
                tenant: raw.tenant.to_string(),
                obs: Observation { access_num: access, miss_num: miss },
            },
            RawKind::Close => Record::Close { tenant: raw.tenant.to_string() },
        }
    }

    /// Decodes an already-parsed object — the path resynchronised
    /// records take (see [`memdos_metrics::jsonl::resync_line`]), where
    /// the object comes out of a dirty line rather than a clean one.
    ///
    /// # Errors
    ///
    /// Returns the [`RecordError`] class for a missing `tenant`, an
    /// unknown `ctl` verb, or missing/non-finite counters.
    // lint:allow(hot-propagate) -- the resync decode path owns its tenant key; it runs only after a parse fault, not per sample
    pub fn from_object(obj: &JsonObject) -> Result<Record, RecordError> {
        let tenant = obj
            .get_str("tenant")
            .ok_or(RecordError::MissingTenant)?
            .to_string();
        if tenant.is_empty() {
            return Err(RecordError::EmptyTenant);
        }
        if let Some(ctl) = obj.get("ctl") {
            return match ctl.as_str() {
                Some("close") => Ok(Record::Close { tenant }),
                Some(_) => Err(RecordError::UnknownCtl),
                None => Err(RecordError::CtlNotString),
            };
        }
        let access = obj.get_f64("access").ok_or(RecordError::MissingAccess)?;
        let miss = obj.get_f64("miss").ok_or(RecordError::MissingMiss)?;
        if !access.is_finite() || !miss.is_finite() {
            return Err(RecordError::NonFinite);
        }
        Ok(Record::Sample { tenant, obs: Observation { access_num: access, miss_num: miss } })
    }

    /// Encodes the record as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut obj = JsonObject::new();
        match self {
            Record::Sample { tenant, obs } => {
                obj.push_str("tenant", tenant)
                    .push_num("access", obs.access_num)
                    .push_num("miss", obs.miss_num);
            }
            Record::Close { tenant } => {
                obj.push_str("tenant", tenant).push_str("ctl", "close");
            }
        }
        obj.to_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrips() {
        let r = Record::Sample {
            tenant: "vm-0".to_string(),
            obs: Observation { access_num: 1234.0, miss_num: 56.5 },
        };
        let line = r.to_line();
        assert_eq!(Record::parse(&line).unwrap(), r);
    }

    #[test]
    fn close_roundtrips() {
        let r = Record::Close { tenant: "vm-1".to_string() };
        assert_eq!(r.to_line(), r#"{"tenant":"vm-1","ctl":"close"}"#);
        assert_eq!(Record::parse(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn extra_fields_are_ignored() {
        let r = Record::parse(r#"{"tenant":"vm-0","access":1,"miss":2,"host":"node-7"}"#)
            .unwrap();
        assert_eq!(r.tenant(), "vm-0");
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(Record::parse("not json").is_err());
        assert!(Record::parse(r#"{"access":1,"miss":2}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"","access":1,"miss":2}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","access":1}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","ctl":"open"}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","ctl":7}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","access":"x","miss":2}"#).is_err());
    }

    #[test]
    fn fast_and_slow_paths_agree() {
        let lines = [
            r#"{"tenant":"vm-0","access":1234,"miss":56}"#,
            r#"{"tenant":"vm-1","ctl":"close"}"#,
            r#" { "tenant" : "vm-2" , "access" : 1e3 , "miss" : 0.5 } "#,
            "not json",
            r#"{"access":1,"miss":2}"#,
            r#"{"tenant":"","access":1,"miss":2}"#,
            r#"{"tenant":"vm-0","ctl":"open"}"#,
            r#"{"tenant":"vm-0","access":1e999,"miss":2}"#,
            // Escape-bearing lines take the slow path inside parse().
            "{\"tenant\":\"vm\\u002d9\",\"access\":1,\"miss\":2}",
            "{\"\\u0074enant\":\"vm-8\",\"access\":3,\"miss\":4}",
        ];
        for line in lines {
            assert_eq!(Record::parse(line), Record::parse_slow(line), "line {line:?}");
        }
        // The escaped tenant decodes through the fallback.
        let r = Record::parse("{\"tenant\":\"vm\\u002d9\",\"access\":1,\"miss\":2}").unwrap();
        assert_eq!(r.tenant(), "vm-9");
    }

    #[test]
    fn error_classes_render_lazily() {
        let err = Record::parse(r#"{"tenant":"vm-0","ctl":"open"}"#).unwrap_err();
        assert_eq!(err, RecordError::UnknownCtl);
        assert_eq!(err.reason(), "unknown control verb");
        assert_eq!(err.to_string(), err.reason());
    }
}
