//! The engine's line-delimited JSON wire protocol.
//!
//! Each input line is one flat JSON object (see
//! [`memdos_metrics::jsonl`]) and decodes to one [`Record`]:
//!
//! * a **sample** — `{"tenant":"vm-0","access":1234,"miss":56}` — one
//!   `T_PCM` tick of the tenant's LLC counters, or
//! * a **control** — `{"tenant":"vm-0","ctl":"close"}` — a lifecycle
//!   request.
//!
//! Unknown extra fields are ignored (forward compatibility); missing or
//! mis-typed required fields are an error carrying the reason, so the
//! engine can log and count malformed input without dying.

use memdos_core::detector::Observation;
use memdos_metrics::jsonl::JsonObject;

/// One decoded input line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// One PCM tick of a tenant.
    Sample {
        /// Tenant id (session key).
        tenant: String,
        /// The tick's LLC statistics.
        obs: Observation,
    },
    /// A request to close the tenant's session.
    Close {
        /// Tenant id (session key).
        tenant: String,
    },
}

impl Record {
    /// The tenant the record addresses.
    pub fn tenant(&self) -> &str {
        match self {
            Record::Sample { tenant, .. } | Record::Close { tenant } => tenant,
        }
    }

    /// Decodes one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for syntax errors, a missing
    /// `tenant`, an unknown `ctl` verb, or missing/non-finite counters.
    pub fn parse(line: &str) -> Result<Record, String> {
        let obj = JsonObject::parse(line)?;
        Record::from_object(&obj)
    }

    /// Decodes an already-parsed object — the path resynchronised
    /// records take (see [`memdos_metrics::jsonl::resync_line`]), where
    /// the object comes out of a dirty line rather than a clean one.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for a missing `tenant`, an
    /// unknown `ctl` verb, or missing/non-finite counters.
    pub fn from_object(obj: &JsonObject) -> Result<Record, String> {
        let tenant = obj
            .get_str("tenant")
            .ok_or_else(|| "missing string field \"tenant\"".to_string())?
            .to_string();
        if tenant.is_empty() {
            return Err("field \"tenant\" must be non-empty".to_string());
        }
        if let Some(ctl) = obj.get("ctl") {
            return match ctl.as_str() {
                Some("close") => Ok(Record::Close { tenant }),
                Some(other) => Err(format!("unknown control verb {other:?}")),
                None => Err("field \"ctl\" must be a string".to_string()),
            };
        }
        let access = obj
            .get_f64("access")
            .ok_or_else(|| "missing numeric field \"access\"".to_string())?;
        let miss = obj
            .get_f64("miss")
            .ok_or_else(|| "missing numeric field \"miss\"".to_string())?;
        if !access.is_finite() || !miss.is_finite() {
            return Err("counter fields must be finite".to_string());
        }
        Ok(Record::Sample { tenant, obs: Observation { access_num: access, miss_num: miss } })
    }

    /// Encodes the record as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut obj = JsonObject::new();
        match self {
            Record::Sample { tenant, obs } => {
                obj.push_str("tenant", tenant)
                    .push_num("access", obs.access_num)
                    .push_num("miss", obs.miss_num);
            }
            Record::Close { tenant } => {
                obj.push_str("tenant", tenant).push_str("ctl", "close");
            }
        }
        obj.to_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrips() {
        let r = Record::Sample {
            tenant: "vm-0".to_string(),
            obs: Observation { access_num: 1234.0, miss_num: 56.5 },
        };
        let line = r.to_line();
        assert_eq!(Record::parse(&line).unwrap(), r);
    }

    #[test]
    fn close_roundtrips() {
        let r = Record::Close { tenant: "vm-1".to_string() };
        assert_eq!(r.to_line(), r#"{"tenant":"vm-1","ctl":"close"}"#);
        assert_eq!(Record::parse(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn extra_fields_are_ignored() {
        let r = Record::parse(r#"{"tenant":"vm-0","access":1,"miss":2,"host":"node-7"}"#)
            .unwrap();
        assert_eq!(r.tenant(), "vm-0");
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(Record::parse("not json").is_err());
        assert!(Record::parse(r#"{"access":1,"miss":2}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"","access":1,"miss":2}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","access":1}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","ctl":"open"}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","ctl":7}"#).is_err());
        assert!(Record::parse(r#"{"tenant":"vm-0","access":"x","miss":2}"#).is_err());
    }
}
