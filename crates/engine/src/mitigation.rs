//! Quarantine-driven mitigation: the response state machine that closes
//! the detect→respond loop (after Zhang et al.'s execution-throttling
//! mitigation; see DESIGN.md §11).
//!
//! When a session reaches `Quarantined` the engine engages a control on
//! that tenant — the suspected attacker — and then *confirms the
//! diagnosis from victim counters*: if co-located tenants were degraded
//! at engage time and their access counters recover while the control
//! holds, the attack is confirmed and the control sticks
//! ([`CaseState::Escalated`]); if the victims were never degraded, or
//! the control runs out of budget without helping, the tenant is
//! released as a false quarantine and deterministically re-profiled
//! through the generation-bumping close/reopen machinery.
//!
//! The per-case FSM:
//!
//! ```text
//!   engage ──► Throttled ──first sample──► Confirming
//!                                             │
//!               victims recover + hold        ├──► Escalated  (confirmed; control sticks)
//!               budget out, ladder climbs     ├──► Throttled  (re-engaged one rung up)
//!               climb reaches Evict           ├──► Escalated  (session evicted)
//!               innocent hold / budget out    └──► Released   (false quarantine, re-profile)
//! ```
//!
//! The ladder is capped ([`MitigationPolicy::max_rung`]):
//! throttle → pause → evict. Rung memory persists per tenant across a
//! release, so a tenant that is quarantined again after a release
//! re-engages one rung up — repeat offenders escalate.
//!
//! Everything here is engine-side bookkeeping over per-flush state that
//! is itself identical at any worker count, so mitigation decisions and
//! their `mitigation_*` log events stay byte-identical too. No clocks,
//! no maps with nondeterministic iteration order.

use crate::config::MitigationPolicy;
use std::collections::BTreeMap;

/// Rung of the capped escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Execution-throttle the tenant (reduced duty, keeps running).
    Throttle,
    /// Deschedule the tenant entirely.
    Pause,
    /// Evict the tenant's session from the engine (and the VM from the
    /// host, driver permitting).
    Evict,
}

impl Rung {
    /// Stable label used in `mitigation_*` log events.
    pub fn label(self) -> &'static str {
        match self {
            Rung::Throttle => "throttle",
            Rung::Pause => "pause",
            Rung::Evict => "evict",
        }
    }

    /// The next rung up, if any.
    pub fn next(self) -> Option<Rung> {
        match self {
            Rung::Throttle => Some(Rung::Pause),
            Rung::Pause => Some(Rung::Evict),
            Rung::Evict => None,
        }
    }

    /// Ladder index (0 throttle, 1 pause, 2 evict).
    pub fn index(self) -> u8 {
        match self {
            Rung::Throttle => 0,
            Rung::Pause => 1,
            Rung::Evict => 2,
        }
    }

    /// Rung for a ladder index, saturating at [`Rung::Evict`].
    pub fn from_index(i: u8) -> Rung {
        match i {
            0 => Rung::Throttle,
            1 => Rung::Pause,
            _ => Rung::Evict,
        }
    }
}

/// Lifecycle state of one mitigation case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseState {
    /// Control engaged; waiting for the first recovery sample.
    Throttled,
    /// Watching victim counters against the confirm budget.
    Confirming,
    /// Terminal: false quarantine — the tenant was released and
    /// re-profiles from scratch.
    Released,
    /// Terminal: the attack was confirmed (or the ladder topped out at
    /// eviction); the control sticks.
    Escalated,
}

impl CaseState {
    /// Stable label used in `mitigation_*` log events.
    pub fn label(self) -> &'static str {
        match self {
            CaseState::Throttled => "throttled",
            CaseState::Confirming => "confirming",
            CaseState::Released => "released",
            CaseState::Escalated => "escalated",
        }
    }

    /// Whether the case can change no further.
    pub fn terminal(self) -> bool {
        matches!(self, CaseState::Released | CaseState::Escalated)
    }
}

/// What the driver should do to a tenant's VM — the feedback edge
/// toward `sim::fleet::FleetGenerator::set_throttle` /
/// `sim::hypervisor::Hypervisor::throttle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Execution-throttle the tenant.
    Throttle,
    /// Deschedule the tenant.
    Pause,
    /// Remove the tenant from the host.
    Evict,
    /// Lift whatever control is in place.
    Release,
}

impl ActionKind {
    /// Stable label (log events and the `respond` action trace).
    pub fn label(self) -> &'static str {
        match self {
            ActionKind::Throttle => "throttle",
            ActionKind::Pause => "pause",
            ActionKind::Evict => "evict",
            ActionKind::Release => "release",
        }
    }

    fn for_rung(rung: Rung) -> ActionKind {
        match rung {
            Rung::Throttle => ActionKind::Throttle,
            Rung::Pause => ActionKind::Pause,
            Rung::Evict => ActionKind::Evict,
        }
    }
}

/// One control action for the enclosing driver, in decision order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MitigationAction {
    /// Tenant name the action applies to.
    pub tenant: String,
    /// What to do.
    pub kind: ActionKind,
}

/// What one recovery sample did to a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStep {
    /// No state change.
    Hold,
    /// First sample after engage: the case starts confirming.
    Confirming,
    /// Victim recovery first observed; `latency` is seq-ticks since the
    /// current rung engaged.
    Recovered {
        /// Seq-ticks from engage to the first recovered sample.
        latency: u64,
    },
    /// Victims degraded again before recovery stuck.
    Relapsed,
    /// The confirm budget ran out with victims still degraded; the case
    /// re-engaged one rung up (never [`Rung::Evict`] — that terminal
    /// climb reports [`CaseStep::Evicted`]).
    Climbed {
        /// The rung now engaged.
        rung: Rung,
    },
    /// Terminal: the ladder climbed to eviction.
    Evicted,
    /// Terminal: victim recovery stuck — attack confirmed, the control
    /// at `rung` sticks.
    Confirmed {
        /// The rung left engaged.
        rung: Rung,
        /// Seq-ticks from the final rung's engage to recovery.
        latency: u64,
    },
    /// Terminal: false quarantine; `cost` is seq-ticks the tenant spent
    /// under a control it did not deserve.
    Released {
        /// Seq-ticks from first engage to release.
        cost: u64,
    },
}

/// One mitigation case: a tenant under an engaged control.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    tenant: String,
    state: CaseState,
    rung: Rung,
    /// Seq at which the *current* rung engaged.
    engaged_at: u64,
    /// Seq at which the first rung engaged (false-quarantine cost base).
    first_engaged_at: u64,
    /// Were victims degraded when the control engaged? Decides the
    /// innocent (release) vs guilty (confirm) path.
    degraded_at_engage: bool,
    /// First seq at which victims were observed recovered, if recovery
    /// is currently sticking.
    recovered_at: Option<u64>,
}

impl Case {
    /// Opens a case at `rung`. Returns the case and the control action
    /// to apply. A case opened at [`Rung::Evict`] is terminal
    /// immediately (the one legal shortcut past `Confirming`).
    pub fn engage(tenant: String, rung: Rung, now: u64, degraded: bool) -> (Case, ActionKind) {
        let state = if rung == Rung::Evict {
            CaseState::Escalated
        } else {
            CaseState::Throttled
        };
        (
            Case {
                tenant,
                state,
                rung,
                engaged_at: now,
                first_engaged_at: now,
                degraded_at_engage: degraded,
                recovered_at: None,
            },
            ActionKind::for_rung(rung),
        )
    }

    /// Tenant under this case.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Current FSM state.
    pub fn state(&self) -> CaseState {
        self.state
    }

    /// Currently engaged rung.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// Advances the case by one recovery sample: `now` is the current
    /// seq (strictly increasing across calls), `degraded` whether any
    /// victim counter sits below the recovery threshold. Terminal cases
    /// hold forever.
    pub fn sample(&mut self, now: u64, degraded: bool, policy: &MitigationPolicy) -> CaseStep {
        match self.state {
            CaseState::Released | CaseState::Escalated => CaseStep::Hold,
            CaseState::Throttled => {
                // The engage sample itself never decides anything: the
                // FSM always passes through Confirming.
                self.state = CaseState::Confirming;
                CaseStep::Confirming
            }
            CaseState::Confirming => {
                if !self.degraded_at_engage {
                    // Innocent path: nobody was hurting when we engaged,
                    // so the quarantine mistrusted a benign trace change.
                    // Hold briefly (the verdict could still develop),
                    // then release.
                    if now.saturating_sub(self.engaged_at) >= policy.hold_ticks {
                        self.state = CaseState::Released;
                        CaseStep::Released { cost: now - self.first_engaged_at }
                    } else {
                        CaseStep::Hold
                    }
                } else if !degraded {
                    match self.recovered_at {
                        None => {
                            self.recovered_at = Some(now);
                            CaseStep::Recovered { latency: now - self.engaged_at }
                        }
                        Some(at) if now.saturating_sub(at) >= policy.hold_ticks => {
                            self.state = CaseState::Escalated;
                            CaseStep::Confirmed {
                                rung: self.rung,
                                latency: at - self.engaged_at,
                            }
                        }
                        Some(_) => CaseStep::Hold,
                    }
                } else if self.recovered_at.take().is_some() {
                    CaseStep::Relapsed
                } else if now.saturating_sub(self.engaged_at) >= policy.confirm_budget {
                    // The engaged control is not helping. Climb the
                    // ladder if it has a rung left under the cap,
                    // otherwise concede the degradation has another
                    // cause and release.
                    match self.rung.next().filter(|r| r.index() <= policy.max_rung) {
                        Some(Rung::Evict) => {
                            self.rung = Rung::Evict;
                            self.state = CaseState::Escalated;
                            CaseStep::Evicted
                        }
                        Some(next) => {
                            self.rung = next;
                            self.engaged_at = now;
                            self.state = CaseState::Throttled;
                            CaseStep::Climbed { rung: next }
                        }
                        None => {
                            self.state = CaseState::Released;
                            CaseStep::Released { cost: now - self.first_engaged_at }
                        }
                    }
                } else {
                    CaseStep::Hold
                }
            }
        }
    }
}

/// Mitigation status surfaced on a
/// [`crate::session::SessionSnapshot`]: the labels of the resident
/// case's state and rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationStatus {
    /// Case state label (`"throttled"`, `"confirming"`, `"released"`,
    /// `"escalated"`).
    pub state: &'static str,
    /// Engaged rung label (`"throttle"`, `"pause"`, `"evict"`).
    pub rung: &'static str,
}

/// Outcome of [`Coordinator::engage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engaged {
    /// Rung the case opened at.
    pub rung: Rung,
    /// Whether victims were degraded at engage time.
    pub degraded: bool,
    /// Whether the case opened terminally (rung was already
    /// [`Rung::Evict`]).
    pub terminal: bool,
}

/// One case transition surfaced to the engine for logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseUpdate {
    /// Tenant slot id of the case.
    pub id: u32,
    /// Tenant name.
    pub tenant: String,
    /// What happened.
    pub step: CaseStep,
    /// State after the step.
    pub state: CaseState,
    /// Rung after the step.
    pub rung: Rung,
}

/// Per-engine mitigation coordinator: active cases, per-tenant rung
/// memory, and the pending action queue for the enclosing driver.
#[derive(Debug, Default)]
pub struct Coordinator {
    policy: MitigationPolicy,
    /// Cases by tenant slot id (slot ids are stable per tenant name, so
    /// this doubles as per-tenant identity). Terminal `Escalated` cases
    /// stay resident — their control sticks; `Released` cases are
    /// removed, leaving only rung memory.
    cases: BTreeMap<u32, Case>,
    /// Ladder index the *next* engagement of each tenant starts at;
    /// bumped on every release so repeat offenders escalate.
    rungs: BTreeMap<u32, u8>,
    /// Actions for the driver, in decision order.
    actions: Vec<MitigationAction>,
}

impl Coordinator {
    /// A coordinator enforcing `policy`.
    pub fn new(policy: MitigationPolicy) -> Coordinator {
        Coordinator { policy, ..Coordinator::default() }
    }

    /// Whether the policy is live at all.
    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    /// Whether any case still needs recovery samples.
    pub fn has_active(&self) -> bool {
        self.cases.values().any(|c| !c.state.terminal())
    }

    /// Whether `id` has a resident case (active or escalated).
    pub fn has_case(&self, id: u32) -> bool {
        self.cases.contains_key(&id)
    }

    /// Status of `id`'s resident case, for snapshots.
    pub fn case_status(&self, id: u32) -> Option<MitigationStatus> {
        self.cases
            .get(&id)
            .map(|c| MitigationStatus { state: c.state.label(), rung: c.rung.label() })
    }

    /// Opens a case for `id` at its remembered rung (capped by policy).
    /// Returns `None` — and queues nothing — if a case is already
    /// resident: an engaged control is never doubled up.
    // lint:allow(hot-propagate) -- a case opens once per quarantine transition, never per sample; the tenant name is its one allocation
    pub fn engage(&mut self, id: u32, tenant: &str, now: u64, degraded: bool) -> Option<Engaged> {
        if self.cases.contains_key(&id) {
            return None;
        }
        let rung_index = self.rungs.get(&id).copied().unwrap_or(0).min(self.policy.max_rung);
        let rung = Rung::from_index(rung_index);
        let (case, action) = Case::engage(tenant.to_string(), rung, now, degraded);
        let terminal = case.state.terminal();
        self.cases.insert(id, case);
        self.actions.push(MitigationAction { tenant: tenant.to_string(), kind: action });
        Some(Engaged { rung, degraded, terminal })
    }

    /// Feeds one recovery sample to every active case, in tenant-slot
    /// order. Queues the control actions each transition implies and
    /// returns the non-`Hold` transitions for logging.
    pub fn sample_active(&mut self, now: u64, degraded: bool) -> Vec<CaseUpdate> {
        let mut updates = Vec::new();
        let mut released = Vec::new();
        for (&id, case) in self.cases.iter_mut() {
            if case.state.terminal() {
                continue;
            }
            let step = case.sample(now, degraded, &self.policy);
            match step {
                CaseStep::Hold => continue,
                CaseStep::Climbed { rung } => {
                    self.actions.push(MitigationAction {
                        tenant: case.tenant.clone(),
                        kind: ActionKind::for_rung(rung),
                    });
                }
                CaseStep::Evicted => {
                    self.actions.push(MitigationAction {
                        tenant: case.tenant.clone(),
                        kind: ActionKind::Evict,
                    });
                }
                CaseStep::Released { .. } => {
                    self.actions.push(MitigationAction {
                        tenant: case.tenant.clone(),
                        kind: ActionKind::Release,
                    });
                    released.push(id);
                }
                CaseStep::Confirming
                | CaseStep::Recovered { .. }
                | CaseStep::Relapsed
                | CaseStep::Confirmed { .. } => {}
            }
            updates.push(CaseUpdate {
                id,
                tenant: case.tenant.clone(),
                step,
                state: case.state,
                rung: case.rung,
            });
        }
        for id in released {
            self.close_released(id);
        }
        updates
    }

    /// A released case leaves only rung memory behind, bumped one rung
    /// (capped) so the tenant's next engagement escalates.
    fn close_released(&mut self, id: u32) {
        self.cases.remove(&id);
        let entry = self.rungs.entry(id).or_insert(0);
        *entry = entry.saturating_add(1).min(self.policy.max_rung);
    }

    /// The engine saw `id`'s session close underneath a case (explicit
    /// close, idle, or ceiling eviction). An *active* case aborts with a
    /// release action so the driver lifts the control — the diagnosis
    /// never completed, so rung memory is not bumped. An `Escalated`
    /// case keeps its control (the attacker does not get a free pass
    /// for departing) and only drops the bookkeeping.
    /// Returns whether an active case was aborted.
    pub fn on_session_closed(&mut self, id: u32) -> Option<Case> {
        let case = self.cases.get(&id)?;
        if case.state.terminal() {
            return self.cases.remove(&id);
        }
        let case = self.cases.remove(&id)?;
        self.actions.push(MitigationAction {
            tenant: case.tenant.clone(),
            kind: ActionKind::Release,
        });
        Some(case)
    }

    /// Drains the queued control actions, in decision order.
    pub fn take_actions(&mut self) -> Vec<MitigationAction> {
        std::mem::take(&mut self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> MitigationPolicy {
        MitigationPolicy {
            enabled: true,
            confirm_budget: 100,
            hold_ticks: 20,
            degraded_below: 0.95,
            max_rung: 2,
        }
    }

    #[test]
    fn rung_ladder_is_total_and_capped() {
        assert_eq!(Rung::Throttle.next(), Some(Rung::Pause));
        assert_eq!(Rung::Pause.next(), Some(Rung::Evict));
        assert_eq!(Rung::Evict.next(), None);
        for i in 0..=4u8 {
            assert_eq!(Rung::from_index(i).index(), i.min(2));
        }
    }

    #[test]
    fn confirmed_attack_escalates_and_control_sticks() {
        let (mut case, action) = Case::engage("vm-a".into(), Rung::Throttle, 10, true);
        assert_eq!(action, ActionKind::Throttle);
        assert_eq!(case.state(), CaseState::Throttled);
        assert_eq!(case.sample(12, true, &policy()), CaseStep::Confirming);
        assert_eq!(case.sample(14, true, &policy()), CaseStep::Hold);
        assert_eq!(case.sample(30, false, &policy()), CaseStep::Recovered { latency: 20 });
        assert_eq!(case.sample(40, false, &policy()), CaseStep::Hold);
        assert_eq!(
            case.sample(51, false, &policy()),
            CaseStep::Confirmed { rung: Rung::Throttle, latency: 20 }
        );
        assert_eq!(case.state(), CaseState::Escalated);
        assert_eq!(case.sample(60, true, &policy()), CaseStep::Hold, "terminal absorbs");
    }

    #[test]
    fn innocent_engage_releases_after_hold() {
        let (mut case, _) = Case::engage("vm-b".into(), Rung::Throttle, 0, false);
        assert_eq!(case.sample(1, false, &policy()), CaseStep::Confirming);
        assert_eq!(case.sample(10, true, &policy()), CaseStep::Hold, "innocent path ignores later degradation");
        assert_eq!(case.sample(21, false, &policy()), CaseStep::Released { cost: 21 });
        assert_eq!(case.state(), CaseState::Released);
    }

    #[test]
    fn relapse_resets_the_recovery_clock() {
        let (mut case, _) = Case::engage("vm-c".into(), Rung::Throttle, 0, true);
        case.sample(1, true, &policy());
        assert_eq!(case.sample(5, false, &policy()), CaseStep::Recovered { latency: 5 });
        assert_eq!(case.sample(10, true, &policy()), CaseStep::Relapsed);
        assert_eq!(case.sample(15, false, &policy()), CaseStep::Recovered { latency: 15 });
        assert_eq!(
            case.sample(36, false, &policy()),
            CaseStep::Confirmed { rung: Rung::Throttle, latency: 15 }
        );
    }

    #[test]
    fn budget_exhaustion_climbs_then_evicts() {
        let (mut case, _) = Case::engage("vm-d".into(), Rung::Throttle, 0, true);
        case.sample(1, true, &policy());
        assert_eq!(case.sample(100, true, &policy()), CaseStep::Climbed { rung: Rung::Pause });
        assert_eq!(case.state(), CaseState::Throttled, "climb re-engages");
        assert_eq!(case.sample(101, true, &policy()), CaseStep::Confirming);
        assert_eq!(case.sample(200, true, &policy()), CaseStep::Evicted);
        assert_eq!(case.state(), CaseState::Escalated);
    }

    #[test]
    fn max_rung_caps_the_climb_into_a_release() {
        let capped = MitigationPolicy { max_rung: 0, ..policy() };
        let (mut case, _) = Case::engage("vm-e".into(), Rung::Throttle, 0, true);
        case.sample(1, true, &capped);
        assert_eq!(case.sample(100, true, &capped), CaseStep::Released { cost: 100 });
    }

    #[test]
    fn coordinator_never_doubles_up_and_remembers_rungs() {
        let mut coord = Coordinator::new(policy());
        assert!(coord.engage(7, "vm-a", 0, false).is_some());
        assert!(coord.engage(7, "vm-a", 5, false).is_none(), "no double engage");
        assert_eq!(coord.take_actions().len(), 1);
        // Release via the innocent path, then re-engage: one rung up.
        let mut updates = Vec::new();
        for now in [1u64, 25] {
            updates.extend(coord.sample_active(now, false));
        }
        assert!(matches!(updates.last().unwrap().step, CaseStep::Released { .. }));
        assert!(!coord.has_case(7));
        let second = coord.engage(7, "vm-a", 40, false).unwrap();
        assert_eq!(second.rung, Rung::Pause, "repeat offender escalates");
        let actions = coord.take_actions();
        assert_eq!(actions.last().unwrap().kind, ActionKind::Pause);
    }

    #[test]
    fn closing_a_session_aborts_an_active_case_with_a_release() {
        let mut coord = Coordinator::new(policy());
        coord.engage(3, "vm-x", 0, true);
        coord.take_actions();
        let aborted = coord.on_session_closed(3).expect("case aborts");
        assert!(!aborted.state().terminal());
        let actions = coord.take_actions();
        assert_eq!(actions, vec![MitigationAction { tenant: "vm-x".into(), kind: ActionKind::Release }]);
        // Rung memory was NOT bumped: next engage starts at throttle.
        assert_eq!(coord.engage(3, "vm-x", 10, true).unwrap().rung, Rung::Throttle);
    }

    #[test]
    fn escalated_case_keeps_its_control_when_the_session_closes() {
        // Rung memory at the top of the ladder: the engage itself is
        // terminal (evict), and a later session close releases nothing.
        let mut coord = Coordinator::new(policy());
        coord.rungs.insert(1, 2);
        let engaged = coord.engage(1, "vm-z", 0, true).unwrap();
        assert!(engaged.terminal);
        assert_eq!(coord.take_actions()[0].kind, ActionKind::Evict);
        coord.on_session_closed(1);
        assert!(coord.take_actions().is_empty(), "no release for an escalated case");
    }
}
