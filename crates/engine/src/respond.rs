//! The closed-loop respond driver: detection that changes the workload
//! it is detecting.
//!
//! A seeded [`memdos_sim::fleet`] scenario with a ground-truth labelled
//! attacker ([`memdos_sim::fleet::FleetAttack`]) feeds the engine as
//! JSONL wire lines; at every round boundary ([`RESPOND_ROUND_TICKS`]
//! timeline ticks) the driver flushes, drains the engine's queued
//! [`MitigationAction`]s and applies them back to the generator's
//! per-tenant throttle levels. A throttled attacker exerts less victim
//! pressure, the victims' counters recover, and the mitigation loop
//! confirms (or refutes) its own diagnosis from that recovery — the
//! full detect → throttle → confirm → release/escalate cycle of the
//! paper's §6 mitigation discussion, closed over one deterministic
//! timeline.
//!
//! Everything is a pure function of `(scenario config, engine config,
//! chaos seed)`: the generator is seeded, flush boundaries are decided
//! by line counts and round ticks, and mitigation decisions are made at
//! flush boundaries, so the verdict log, the stats and the applied
//! action trace are byte-identical at any worker count
//! (`tests/engine_mitigation_determinism.rs` pins this).

use crate::chaos::{FaultPlan, FaultPlanConfig};
use crate::config::{Config, MitigationPolicy};
use crate::engine::{Engine, EngineStats};
use crate::fleet::tenant_name;
use crate::mitigation::{ActionKind, MitigationAction};
use crate::protocol::Record;
use crate::session::SessionConfig;
use memdos_core::config::{SdsBParams, SdsPParams, SdsParams};
use memdos_core::detector::Observation;
use memdos_sim::fleet::{
    AttackWindow, FleetAttack, FleetConfig, FleetEventKind, FleetGenerator, FleetItem,
    ThrottleLevel, VmTemplate,
};

/// Timeline ticks per respond round: the driver flushes the engine and
/// applies queued mitigation actions every time the scenario crosses a
/// multiple of this. Small enough that a control lands within a few
/// victim samples of the decision, large enough that the loop is not
/// flushing per line.
pub const RESPOND_ROUND_TICKS: u64 = 16;

/// The template respond tenants are stamped from: a flat trace with
/// mild jitter, so the only structure in the scenario is what the
/// scripted attack injects and detection margins are analysable
/// (attacker collapse ≫ boundary ≫ victim degradation ≫ jitter).
pub fn respond_templates() -> Vec<VmTemplate> {
    vec![VmTemplate {
        app: "flat",
        base_access: 1_000.0,
        amp_access: 0.0,
        base_miss: 100.0,
        amp_miss: 0.0,
        period_ticks: 0,
        jitter: 0.04,
    }]
}

/// The ground-truth scenario shapes the respond suite exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespondScenario {
    /// A real attack: the attacker's trace collapses *and* victims
    /// degrade. Expected arc: quarantine → throttle → victim recovery →
    /// confirmed → control sticks.
    TrueAttacker,
    /// A benign trace change: the attacker-shaped collapse happens but
    /// no victim is degraded. Expected arc: quarantine → throttle →
    /// innocent hold → released, and the tenant re-profiles on its new
    /// level without further alarms.
    BenignShift,
    /// The attacker goes quiet mid-case (benign-looking first window),
    /// is released, then resumes with real victim pressure. Expected
    /// arc: the second engagement starts one rung up (rung memory) and
    /// escalates.
    QuietResume,
}

impl RespondScenario {
    /// Every scenario shape, in fixed order.
    pub const ALL: [RespondScenario; 3] = [
        RespondScenario::TrueAttacker,
        RespondScenario::BenignShift,
        RespondScenario::QuietResume,
    ];

    /// Stable CLI / report label.
    pub fn label(self) -> &'static str {
        match self {
            RespondScenario::TrueAttacker => "true-attacker",
            RespondScenario::BenignShift => "benign-shift",
            RespondScenario::QuietResume => "quiet-resume",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<RespondScenario> {
        RespondScenario::ALL.iter().copied().find(|k| k.label() == s)
    }
}

/// A fleet scenario for `kind` with `tenants` tenants (one labelled
/// attacker, the rest victims): uniform sampling cadence, no churn, and
/// attack windows placed after every tenant has finished profiling.
pub fn respond_scenario(kind: RespondScenario, tenants: u32, seed: u64) -> FleetConfig {
    let attack = match kind {
        // Victim pressure for the whole window; the loop must confirm.
        RespondScenario::TrueAttacker => FleetAttack {
            attacker: 1,
            collapse: 0.9,
            first: AttackWindow { from: 480, until: 1_600, severity: 0.12 },
            second: None,
        },
        // Same attacker-shaped collapse, zero victim impact, held to
        // the end of the timeline so the release re-profiles on a
        // stable (shifted) level.
        RespondScenario::BenignShift => FleetAttack {
            attacker: 1,
            collapse: 0.9,
            first: AttackWindow { from: 480, until: 1_600, severity: 0.0 },
            second: None,
        },
        // A short benign-looking window (released while quarantined,
        // clean re-profile after it ends), then a real attack.
        RespondScenario::QuietResume => FleetAttack {
            attacker: 1,
            collapse: 0.9,
            first: AttackWindow { from: 480, until: 600, severity: 0.0 },
            second: Some(AttackWindow { from: 1_040, until: 1_600, severity: 0.12 }),
        },
    };
    FleetConfig {
        tenants: tenants.max(2),
        span_ticks: 1_600,
        zipf_s: 1.1,
        min_interval: 4,
        max_interval: 4,
        churn: 0.0,
        seed,
        attack: Some(attack),
    }
}

/// Engine configuration for the respond loop: a short profile, a wide
/// Chebyshev band (the 90 % attacker collapse violates it instantly,
/// the ~12 % victim degradation never does), immediate quarantine on
/// alarm, and the mitigation policy enabled with budgets in seq ticks
/// sized to the scenario's line rate (~1.5 lines per timeline tick).
pub fn respond_engine_config(workers: usize) -> Config {
    Config {
        workers,
        batch: 2_048,
        session: SessionConfig {
            profile_ticks: 40,
            sds: SdsParams {
                sdsb: SdsBParams { window: 20, step: 1, k: 100.0, h_c: 4, ..SdsBParams::default() },
                sdsp: SdsPParams { window: 20, step: 1, ..SdsPParams::default() },
            },
            quarantine_after: 1,
            queue_capacity: 4_096,
            ..SessionConfig::default()
        },
        mitigation: MitigationPolicy {
            enabled: true,
            confirm_budget: 400,
            hold_ticks: 160,
            degraded_below: 0.93,
            max_rung: 2,
        },
        ..Config::default()
    }
}

/// One mitigation action as the driver applied it to the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedAction {
    /// Timeline tick of the round boundary the action landed at.
    pub tick: u64,
    /// Tenant the action addressed.
    pub tenant: String,
    /// What the engine asked for.
    pub kind: ActionKind,
    /// Whether the generator accepted it (an unknown tenant is a wire
    /// name the driver could not map back to a tenant index).
    pub applied: bool,
}

/// Everything one closed-loop run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RespondReport {
    /// The engine's verdict log, `mitigation_*` events included.
    pub log: Vec<String>,
    /// Final engine counters.
    pub stats: EngineStats,
    /// The applied-action trace, in decision order.
    pub actions: Vec<AppliedAction>,
    /// Wire lines fed to the engine (post-chaos when a fault plan ran).
    pub lines_fed: u64,
    /// Ground-truth attacker's wire name, if the scenario labels one.
    pub attacker: Option<String>,
}

/// Maps a wire tenant name (`<app>-<NNNNN>`) back to its fleet index.
fn tenant_index(name: &str) -> Option<u32> {
    name.rsplit('-').next()?.parse().ok()
}

/// The throttle level a mitigation action asks the workload for.
fn level_for(kind: ActionKind) -> ThrottleLevel {
    match kind {
        ActionKind::Throttle => ThrottleLevel::Throttled,
        ActionKind::Pause | ActionKind::Evict => ThrottleLevel::Paused,
        ActionKind::Release => ThrottleLevel::Run,
    }
}

/// Drains the engine's queued actions into the generator's throttle
/// levels and the applied-action trace.
fn apply_actions(
    actions: Vec<MitigationAction>,
    gen: &mut FleetGenerator,
    tick: u64,
    trace: &mut Vec<AppliedAction>,
) {
    for action in actions {
        let applied = match tenant_index(&action.tenant) {
            Some(idx) => gen.set_throttle(idx, level_for(action.kind)),
            None => false,
        };
        trace.push(AppliedAction { tick, tenant: action.tenant, kind: action.kind, applied });
    }
}

/// Runs one closed-loop scenario to completion.
///
/// `chaos_seed` optionally routes every wire line through a seeded
/// [`FaultPlan`] (the full chaos class mix) before the engine sees it —
/// the respond-loop smoke the soak suite runs in CI.
///
/// # Errors
///
/// Returns a description of the problem for an invalid scenario or
/// engine configuration.
pub fn run_respond(
    scenario: &FleetConfig,
    config: Config,
    chaos_seed: Option<u64>,
) -> Result<RespondReport, String> {
    let templates = respond_templates();
    let mut gen = FleetGenerator::new(*scenario, &templates)?;
    let mut engine = Engine::new(config).map_err(|e| e.to_string())?;
    let mut chaos = match chaos_seed {
        Some(seed) => Some(FaultPlan::new(seed, FaultPlanConfig::chaos())?),
        None => None,
    };
    let mut trace = Vec::new();
    let mut lines_fed = 0u64;
    let mut next_round = RESPOND_ROUND_TICKS;
    let attacker = gen.attacker().map(|idx| {
        let item = FleetItem {
            tick: 0,
            tenant: idx,
            template: gen.template_of(idx).unwrap_or(0),
            kind: FleetEventKind::Close,
        };
        tenant_name(&item, &templates)
    });
    while let Some(item) = gen.next_item(&templates) {
        if item.tick >= next_round {
            engine.flush();
            apply_actions(engine.take_mitigation_actions(), &mut gen, item.tick, &mut trace);
            next_round = (item.tick / RESPOND_ROUND_TICKS + 1) * RESPOND_ROUND_TICKS;
        }
        let tenant = tenant_name(&item, &templates);
        let line = match item.kind {
            FleetEventKind::Sample { access, miss } => Record::Sample {
                tenant,
                obs: Observation { access_num: access, miss_num: miss },
            }
            .to_line(),
            FleetEventKind::Close => Record::Close { tenant }.to_line(),
        };
        match chaos.as_mut() {
            Some(plan) => {
                for out in plan.push_line(&line) {
                    engine.ingest_line(&out);
                    lines_fed += 1;
                }
            }
            None => {
                engine.ingest_line(&line);
                lines_fed += 1;
            }
        }
    }
    if let Some(plan) = chaos.as_mut() {
        for out in plan.finish() {
            engine.ingest_line(&out);
            lines_fed += 1;
        }
    }
    engine.finish();
    let span = gen.config().span_ticks;
    apply_actions(engine.take_mitigation_actions(), &mut gen, span, &mut trace);
    Ok(RespondReport {
        log: engine.log_lines().to_vec(),
        stats: engine.stats(),
        actions: trace,
        lines_fed,
        attacker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_presets_validate_and_label_the_attacker() {
        for kind in RespondScenario::ALL {
            let config = respond_scenario(kind, 6, 42);
            config.validate().unwrap();
            assert_eq!(config.attack.unwrap().attacker, 1);
            assert_eq!(RespondScenario::parse(kind.label()), Some(kind));
        }
        assert_eq!(RespondScenario::parse("nope"), None);
        respond_engine_config(2).validate().unwrap();
    }

    #[test]
    fn wire_names_map_back_to_tenant_indices() {
        assert_eq!(tenant_index("flat-00001"), Some(1));
        assert_eq!(tenant_index("facenet-00042"), Some(42));
        assert_eq!(tenant_index("garbage"), None);
    }

    #[test]
    fn true_attacker_run_throttles_the_labelled_attacker() {
        let scenario = respond_scenario(RespondScenario::TrueAttacker, 6, 42);
        let report = run_respond(&scenario, respond_engine_config(1), None).unwrap();
        let attacker = report.attacker.clone().unwrap();
        let engaged = report
            .actions
            .iter()
            .find(|a| a.kind == ActionKind::Throttle)
            .expect("the loop throttles someone");
        assert_eq!(engaged.tenant, attacker, "and that someone is the ground-truth attacker");
        assert!(engaged.applied);
        assert!(report.stats.mitigations_engaged >= 1);
        assert!(
            report.stats.mitigations_escalated >= 1,
            "victim recovery confirms the attack: {:?}",
            report.stats
        );
        assert_eq!(report.stats.mitigations_released, 0, "no false quarantine here");
        assert!(report.log.iter().any(|l| l.contains("mitigation_engaged")));
        assert!(report
            .log
            .iter()
            .any(|l| l.contains("mitigation_escalated") && l.contains("confirmed")));
    }
}
