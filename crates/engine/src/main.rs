//! The `memdos-engine` CLI.
//!
//! ```text
//! memdos-engine demo [seed]       # simulate 4 tenants and replay them
//! memdos-engine gen-demo [seed]   # print the demo JSONL stream
//! memdos-engine replay [path]     # replay a JSONL file (or stdin)
//! memdos-engine serve <addr>      # ingest JSONL over TCP
//! memdos-engine soak [--seeds N] [--base-seed S]   # chaos soak
//! memdos-engine fleet [tenants] [seed]             # fleet-scale replay
//! memdos-engine respond [scenario] [tenants] [seed] [--chaos S]  # closed loop
//! ```
//!
//! Configuration comes from the environment: `MEMDOS_THREADS` (worker
//! count) and the `MEMDOS_ENGINE_*` knobs (see the README and
//! [`Config::from_env`]), resolved **once** here in `main` — the
//! library layer only ever sees the explicit [`Config`] value. The
//! verdict event log goes to stdout; diagnostics go to stderr.
//!
//! `serve` accepts one connection at a time and ingests it to EOF — the
//! parallelism budget goes to tenant dispatch inside the engine, not to
//! connection handling. Accept failures retry on the deterministic
//! capped [`Backoff`] schedule instead of dying or spinning.
//!
//! `soak` replays N seeded chaos scenarios (fault injection over the
//! demo stream) and exits non-zero unless every scenario's verdict log
//! is byte-identical across worker counts 1/2/4, memory stays bounded,
//! and every fault class fired. The JSONL report goes to stdout.
//!
//! `respond` runs one closed-loop mitigation scenario: a seeded fleet
//! with a ground-truth attacker feeds the engine, and the engine's
//! mitigation actions throttle the generator back. The verdict log
//! (`mitigation_*` events included) goes to stdout; the applied-action
//! trace and the mitigation counters go to stderr. `--chaos S` routes
//! the wire through a seeded fault plan first.

use memdos_engine::chaos::Backoff;
use memdos_engine::demo::{demo_engine_config, demo_jsonl, LAYOUT, TENANTS};
use memdos_engine::engine::Engine;
use memdos_engine::fleet::{fleet_engine_config, fleet_jsonl, fleet_scenario};
use memdos_engine::respond::{respond_engine_config, respond_scenario, run_respond, RespondScenario};
use memdos_engine::soak::{run_soak, SoakConfig};
use memdos_engine::Config;
use std::io::{BufReader, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let threads = memdos_runner::threads_config();
    if let Some(diag) = &threads.diagnostic {
        eprintln!("memdos-engine: {diag}");
    }
    match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(args.get(1)),
        Some("gen-demo") => cmd_gen_demo(args.get(1)),
        Some("replay") => cmd_replay(args.get(1)),
        Some("serve") => cmd_serve(args.get(1)),
        Some("soak") => cmd_soak(args.get(1..).unwrap_or(&[])),
        Some("fleet") => cmd_fleet(args.get(1), args.get(2)),
        Some("respond") => cmd_respond(args.get(1..).unwrap_or(&[])),
        Some("convert") => cmd_convert(args.get(1..).unwrap_or(&[])),
        Some(other) => {
            eprintln!("memdos-engine: unknown command {other:?}");
            usage();
            2
        }
        None => {
            usage();
            2
        }
    }
}

fn usage() {
    eprintln!(
        "usage: memdos-engine <demo [seed] | gen-demo [seed] | replay [path] | serve <addr> \
         | soak [--seeds N] [--base-seed S] | fleet [tenants] [seed] \
         | respond [true-attacker|benign-shift|quiet-resume] [tenants] [seed] [--chaos S] \
         | convert <jsonl2bin|bin2jsonl> [in|-] [out|-]>"
    );
}

fn parse_seed(arg: Option<&String>) -> Result<u64, String> {
    match arg {
        None => Ok(0xD05),
        Some(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("seed {s:?} is not a non-negative integer")),
    }
}

/// Builds the engine from the environment, preferring the demo's
/// profile/SDS settings for the demo commands.
fn engine_from_env(demo_defaults: bool) -> Result<Engine, String> {
    let mut config = Config::from_env()?;
    if demo_defaults {
        let demo = demo_engine_config(config.workers);
        config.session.profile_ticks = demo.session.profile_ticks;
        config.session.sds = demo.session.sds;
    }
    Engine::new(config).map_err(|e| e.to_string())
}

/// Prints log lines the engine produced since `printed`, returning the
/// new high-water mark.
fn print_new_log(engine: &Engine, printed: usize) -> usize {
    let out = std::io::stdout();
    let mut out = out.lock();
    for line in engine.log_lines().iter().skip(printed) {
        if writeln!(out, "{line}").is_err() {
            break;
        }
    }
    engine.log_lines().len()
}

fn cmd_demo(seed: Option<&String>) -> i32 {
    let seed = match parse_seed(seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let mut engine = match engine_from_env(true) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let workers = engine.config().workers;
    eprintln!(
        "memdos-engine: simulating {} tenants (seed {seed}, {workers} workers)",
        TENANTS.len()
    );
    let lines = demo_jsonl(seed, &LAYOUT, workers);
    for line in &lines {
        engine.ingest_line(line);
    }
    // finish() rather than flush(): the run is over, so drain and emit
    // the `engine_stats` trailer (which carries the `MEMDOS_ENGINE_PROF`
    // stage counters when enabled).
    engine.finish();
    print_new_log(&engine, 0);
    eprintln!(
        "memdos-engine: {} input lines, {} log events, {} sessions",
        lines.len(),
        engine.log_lines().len(),
        engine.session_count()
    );
    for snap in engine.snapshots() {
        eprintln!(
            "memdos-engine:   {}: {} ({} alarms, {} ingested, {} dropped)",
            snap.tenant,
            snap.state.label(),
            snap.alarms,
            snap.ingested,
            snap.dropped
        );
    }
    0
}

fn cmd_fleet(tenants: Option<&String>, seed: Option<&String>) -> i32 {
    let tenants = match tenants {
        None => 10_000u32,
        Some(s) => match s.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("memdos-engine: tenants {s:?} is not a positive integer");
                return 2;
            }
        },
    };
    let seed = match parse_seed(seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    // Environment knobs still apply (MEMDOS_THREADS, ceiling override);
    // the fleet profile/SDS settings replace the Table 1 defaults.
    let env = match Config::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let ceiling = if env.max_sessions > 0 { env.max_sessions } else { 16_384 };
    let config = Config { workers: env.workers, prof: env.prof, ..fleet_engine_config(env.workers, ceiling) };
    let scenario = fleet_scenario(tenants, seed);
    eprintln!(
        "memdos-engine: fleet: {tenants} tenants over {} ticks (seed {seed}, {} workers, \
         ceiling {ceiling})",
        scenario.span_ticks, config.workers
    );
    let lines = match fleet_jsonl(&scenario) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("memdos-engine: fleet: {e}");
            return 2;
        }
    };
    let mut engine = match Engine::new(config) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    for line in &lines {
        engine.ingest_line(line);
    }
    engine.finish();
    print_new_log(&engine, 0);
    let stats = engine.stats();
    eprintln!(
        "memdos-engine: fleet: {} input lines, {} log events, {} sessions opened, \
         {} open at end, {} evicted, {} reopened, ~{} KiB resident",
        lines.len(),
        engine.log_lines().len(),
        engine.session_count(),
        engine.open_sessions(),
        stats.evicted,
        stats.reopened,
        engine.resident_bytes() / 1024
    );
    0
}

fn cmd_respond(args: &[String]) -> i32 {
    let mut scenario = RespondScenario::TrueAttacker;
    let mut tenants = 6u32;
    let mut seed = 42u64;
    let mut chaos: Option<u64> = None;
    let mut positional = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--chaos" {
            match it.next().and_then(|v| v.trim().parse::<u64>().ok()) {
                Some(s) => chaos = Some(s),
                None => {
                    eprintln!("memdos-engine: --chaos requires a non-negative integer seed");
                    return 2;
                }
            }
            continue;
        }
        match positional {
            0 => match RespondScenario::parse(arg) {
                Some(kind) => scenario = kind,
                None => {
                    eprintln!(
                        "memdos-engine: unknown respond scenario {arg:?} \
                         (true-attacker | benign-shift | quiet-resume)"
                    );
                    return 2;
                }
            },
            1 => match arg.trim().parse::<u32>() {
                Ok(n) if n >= 2 => tenants = n,
                _ => {
                    eprintln!("memdos-engine: tenants {arg:?} must be an integer >= 2");
                    return 2;
                }
            },
            2 => match arg.trim().parse::<u64>() {
                Ok(s) => seed = s,
                Err(_) => {
                    eprintln!("memdos-engine: seed {arg:?} is not a non-negative integer");
                    return 2;
                }
            },
            _ => {
                eprintln!("memdos-engine: unexpected respond argument {arg:?}");
                return 2;
            }
        }
        positional += 1;
    }
    // Environment knobs still apply (worker count, the stage profiler);
    // the scenario profile/SDS settings replace the Table 1 defaults.
    let env = match Config::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let workers = env.workers;
    eprintln!(
        "memdos-engine: respond: scenario {} ({tenants} tenants, seed {seed}, {workers} \
         workers{})",
        scenario.label(),
        match chaos {
            Some(s) => format!(", chaos seed {s}"),
            None => String::new(),
        }
    );
    let fleet = respond_scenario(scenario, tenants, seed);
    let config = Config { prof: env.prof, ..respond_engine_config(workers) };
    let report = match run_respond(&fleet, config, chaos) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("memdos-engine: respond: {e}");
            return 2;
        }
    };
    {
        let out = std::io::stdout();
        let mut out = out.lock();
        for line in &report.log {
            if writeln!(out, "{line}").is_err() {
                return 1;
            }
        }
    }
    if let Some(attacker) = &report.attacker {
        eprintln!("memdos-engine: respond: ground-truth attacker {attacker}");
    }
    for action in &report.actions {
        eprintln!(
            "memdos-engine: respond:   tick {:>5}: {} {}{}",
            action.tick,
            action.kind.label(),
            action.tenant,
            if action.applied { "" } else { " (not applied)" }
        );
    }
    let stats = report.stats;
    eprintln!(
        "memdos-engine: respond: {} lines fed, {} log events; engaged {}, released {}, \
         escalated {}, aborted {}, skipped {}; recovery latency {} ticks, false-quarantine \
         cost {} ticks",
        report.lines_fed,
        report.log.len(),
        stats.mitigations_engaged,
        stats.mitigations_released,
        stats.mitigations_escalated,
        stats.mitigations_aborted,
        stats.mitigation_skipped,
        stats.recovery_latency_ticks,
        stats.false_quarantine_ticks
    );
    0
}

/// Re-encodes a record stream between the JSONL and binary wire
/// formats (`jsonl2bin` / `bin2jsonl`). Input and output default to
/// stdin/stdout; `-` selects them explicitly. Spans neither decoder
/// accepts are skipped with a count on stderr — a converted stream
/// carries exactly the records of the source, so replaying either
/// through the engine produces the same verdict log (pinned by the
/// binary equivalence suite).
fn cmd_convert(args: &[String]) -> i32 {
    let direction = match args.first().map(String::as_str) {
        Some(d @ ("jsonl2bin" | "bin2jsonl")) => d,
        _ => {
            eprintln!("memdos-engine: convert requires a direction: jsonl2bin | bin2jsonl");
            return 2;
        }
    };
    let reader: Box<dyn std::io::BufRead> = match args.get(1).map(String::as_str) {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(p) => match std::fs::File::open(p) {
            Ok(f) => Box::new(BufReader::new(f)),
            Err(e) => {
                eprintln!("memdos-engine: convert: {p}: {e}");
                return 1;
            }
        },
    };
    let writer: Box<dyn Write> = match args.get(2).map(String::as_str) {
        None | Some("-") => Box::new(std::io::stdout().lock()),
        Some(p) => match std::fs::File::create(p) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("memdos-engine: convert: {p}: {e}");
                return 1;
            }
        },
    };
    let result = match direction {
        "jsonl2bin" => convert_jsonl2bin(reader, writer),
        _ => convert_bin2jsonl(reader, writer),
    };
    match result {
        Ok((records, skipped)) => {
            eprintln!(
                "memdos-engine: convert: {direction}: {records} records, {skipped} spans skipped"
            );
            0
        }
        Err(e) => {
            eprintln!("memdos-engine: convert: {e}");
            1
        }
    }
}

/// The `jsonl2bin` arm: decode lines, re-encode frames. The encoder
/// interns tenant names to dense wire ids and emits each tenant's
/// define frame before its first record.
fn convert_jsonl2bin(
    mut reader: Box<dyn std::io::BufRead>,
    mut writer: Box<dyn Write>,
) -> Result<(u64, u64), String> {
    use memdos_engine::protocol::Record;
    use memdos_metrics::binary::Encoder;
    use memdos_metrics::jsonl::{Decoder, Frame};
    let mut dec = Decoder::new();
    let mut enc = Encoder::new();
    let mut out: Vec<u8> = Vec::new();
    let mut records = 0u64;
    let mut skipped = 0u64;
    let mut encode = |frame: Frame, out: &mut Vec<u8>| -> Result<(), String> {
        let obj = match frame {
            Frame::Object(obj) => obj,
            Frame::Skipped { .. } => {
                skipped += 1;
                return Ok(());
            }
        };
        let record = match Record::from_object(&obj) {
            Ok(r) => r,
            Err(_) => {
                skipped += 1;
                return Ok(());
            }
        };
        match record {
            Record::Sample { tenant, obs } => enc
                .sample(&tenant, obs.access_num, obs.miss_num, out)
                .map_err(|e| e.to_string())?,
            Record::Close { tenant } => enc.close(&tenant, out).map_err(|e| e.to_string())?,
        }
        records += 1;
        Ok(())
    };
    loop {
        let len = {
            let chunk = reader.fill_buf().map_err(|e| e.to_string())?;
            if chunk.is_empty() {
                break;
            }
            dec.push_bytes(chunk);
            chunk.len()
        };
        reader.consume(len);
        for frame in dec.drain() {
            encode(frame, &mut out)?;
        }
        if out.len() >= 64 * 1024 {
            writer.write_all(&out).map_err(|e| e.to_string())?;
            out.clear();
        }
    }
    for frame in dec.finish() {
        encode(frame, &mut out)?;
    }
    writer.write_all(&out).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    Ok((records, skipped))
}

/// The `bin2jsonl` arm: decode frames, render protocol lines. Define
/// frames populate the local wire directory and emit nothing — they
/// have no JSONL twin.
fn convert_bin2jsonl(
    mut reader: Box<dyn std::io::BufRead>,
    mut writer: Box<dyn Write>,
) -> Result<(u64, u64), String> {
    use memdos_metrics::binary::{BinDecoder, BinFrame, MAGIC};
    use memdos_metrics::jsonl::LineBuf;
    let mut dec = BinDecoder::new();
    let mut names: Vec<Option<String>> = Vec::new();
    let mut line = LineBuf::new();
    let mut records = 0u64;
    let mut skipped = 0u64;
    // The decoder leaves the preamble to the caller (the engine's
    // reader sniffs it the same way); anything else at the front goes
    // through frame resync like any other corruption.
    let mut preamble = 0usize;
    let mut render = |frame: BinFrame, writer: &mut Box<dyn Write>| -> Result<(), String> {
        match frame {
            BinFrame::Define { tenant, name } => {
                let slot = tenant as usize;
                if names.len() <= slot {
                    names.resize_with(slot + 1, || None);
                }
                if let Some(e) = names.get_mut(slot) {
                    *e = Some(name);
                }
            }
            BinFrame::Sample { tenant, access, miss } => {
                match names.get(tenant as usize).and_then(Option::as_ref) {
                    Some(name) => {
                        line.begin()
                            .field_str("tenant", name)
                            .field_num("access", access)
                            .field_num("miss", miss);
                        writeln!(writer, "{}", line.end()).map_err(|e| e.to_string())?;
                        records += 1;
                    }
                    None => skipped += 1,
                }
            }
            BinFrame::Close { tenant } => {
                match names.get(tenant as usize).and_then(Option::as_ref) {
                    Some(name) => {
                        line.begin().field_str("tenant", name).field_str("ctl", "close");
                        writeln!(writer, "{}", line.end()).map_err(|e| e.to_string())?;
                        records += 1;
                    }
                    None => skipped += 1,
                }
            }
            BinFrame::Skipped { .. } => skipped += 1,
        }
        Ok(())
    };
    loop {
        let len = {
            let chunk = reader.fill_buf().map_err(|e| e.to_string())?;
            if chunk.is_empty() {
                break;
            }
            let mut body = chunk;
            while preamble < MAGIC.len() {
                match (body.first(), MAGIC.get(preamble)) {
                    (Some(b), Some(m)) if b == m => {
                        preamble += 1;
                        body = body.get(1..).unwrap_or(&[]);
                    }
                    _ => {
                        preamble = MAGIC.len();
                    }
                }
            }
            dec.push_bytes(body);
            chunk.len()
        };
        reader.consume(len);
        for frame in dec.drain() {
            render(frame, &mut writer)?;
        }
    }
    for frame in dec.finish() {
        render(frame, &mut writer)?;
    }
    writer.flush().map_err(|e| e.to_string())?;
    Ok((records, skipped))
}

fn cmd_gen_demo(seed: Option<&String>) -> i32 {
    let seed = match parse_seed(seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let workers = memdos_runner::threads();
    let out = std::io::stdout();
    let mut out = out.lock();
    for line in demo_jsonl(seed, &LAYOUT, workers) {
        if writeln!(out, "{line}").is_err() {
            return 1;
        }
    }
    0
}

fn cmd_replay(path: Option<&String>) -> i32 {
    let mut engine = match engine_from_env(false) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let consumed = match path {
        Some(p) => std::fs::File::open(p)
            .map_err(|e| format!("{p}: {e}"))
            .and_then(|f| {
                engine.ingest_reader(BufReader::new(f)).map_err(|e| format!("{p}: {e}"))
            }),
        None => {
            let stdin = std::io::stdin();
            let locked = stdin.lock();
            engine.ingest_reader(locked).map_err(|e| format!("stdin: {e}"))
        }
    };
    let consumed = match consumed {
        Ok(n) => n,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 1;
        }
    };
    // The replay is complete: emit the `engine_stats` trailer too (and
    // the `MEMDOS_ENGINE_PROF` stage counters when enabled).
    engine.finish();
    print_new_log(&engine, 0);
    eprintln!(
        "memdos-engine: replayed {consumed} lines into {} sessions ({} malformed)",
        engine.session_count(),
        engine.malformed()
    );
    0
}

fn cmd_soak(args: &[String]) -> i32 {
    let mut config = SoakConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |v: Option<&String>, flag: &str| -> Result<u64, String> {
            v.ok_or_else(|| format!("{flag} requires a value"))?
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("{flag} value is not a non-negative integer"))
        };
        match arg.as_str() {
            "--seeds" => match value(it.next(), "--seeds") {
                Ok(n) => config.seeds = n,
                Err(e) => {
                    eprintln!("memdos-engine: {e}");
                    return 2;
                }
            },
            "--base-seed" => match value(it.next(), "--base-seed") {
                Ok(n) => config.base_seed = n,
                Err(e) => {
                    eprintln!("memdos-engine: {e}");
                    return 2;
                }
            },
            other => {
                eprintln!("memdos-engine: unknown soak option {other:?}");
                return 2;
            }
        }
    }
    eprintln!(
        "memdos-engine: soak: {} seeded chaos scenarios (base seed {}), workers 1/2/4",
        config.seeds, config.base_seed
    );
    let report = run_soak(&config, |scenario| {
        eprintln!(
            "memdos-engine: soak: scenario {} seed {}: {} faults, {} log lines, \
             identical={} bounded={}",
            scenario.index,
            scenario.seed,
            scenario.trace.total(),
            scenario.log_lines,
            scenario.identical,
            scenario.bounded
        );
        println!("{}", scenario.to_line());
    });
    match report {
        Ok(report) => {
            println!("{}", report.summary_line());
            if report.passed() {
                eprintln!("memdos-engine: soak: PASS");
                0
            } else {
                eprintln!(
                    "memdos-engine: soak: FAIL (identical={} bounded={} missing={:?})",
                    report.all_identical(),
                    report.all_bounded(),
                    report.missing_classes()
                );
                1
            }
        }
        Err(e) => {
            eprintln!("memdos-engine: soak: {e}");
            2
        }
    }
}

fn cmd_serve(addr: Option<&String>) -> i32 {
    let Some(addr) = addr else {
        eprintln!("memdos-engine: serve requires an address (e.g. 127.0.0.1:7700)");
        return 2;
    };
    let mut engine = match engine_from_env(false) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    // Bind retries on the deterministic capped schedule (the address is
    // often still in TIME_WAIT after a restart), as do accept failures;
    // a successful operation resets the budget.
    let mut backoff = Backoff::transport();
    let listener = loop {
        match std::net::TcpListener::bind(addr) {
            Ok(l) => break l,
            Err(e) => match backoff.next_delay_ms() {
                Some(delay_ms) => {
                    eprintln!("memdos-engine: bind {addr}: {e} (retrying in {delay_ms} ms)");
                    // The binary owns real sleeps; the schedule itself is
                    // pure and tested in chaos::Backoff.
                    // lint:allow(thread) -- transport retry sleep in the CLI
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
                None => {
                    eprintln!("memdos-engine: bind {addr}: {e} (retry budget spent)");
                    return 1;
                }
            },
        }
    };
    backoff.reset();
    eprintln!("memdos-engine: listening on {addr} (one connection at a time)");
    let mut printed = 0;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                backoff.reset();
                // The resynchronising reader path: corrupted bytes and
                // invalid UTF-8 are logged and skipped, never fatal; an
                // I/O error mid-connection keeps everything ingested
                // before it.
                let consumed = match engine.ingest_reader(BufReader::new(stream)) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("memdos-engine: {peer}: {e}");
                        engine.flush();
                        0
                    }
                };
                printed = print_new_log(&engine, printed);
                eprintln!("memdos-engine: {peer}: {consumed} lines");
            }
            Err(e) => match backoff.next_delay_ms() {
                Some(delay_ms) => {
                    eprintln!("memdos-engine: accept: {e} (retrying in {delay_ms} ms)");
                    // lint:allow(thread) -- transport retry sleep in the CLI
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
                None => {
                    eprintln!("memdos-engine: accept: {e} (retry budget spent)");
                    return 1;
                }
            },
        }
    }
}
