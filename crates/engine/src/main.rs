//! The `memdos-engine` CLI.
//!
//! ```text
//! memdos-engine demo [seed]       # simulate 4 tenants and replay them
//! memdos-engine gen-demo [seed]   # print the demo JSONL stream
//! memdos-engine replay [path]     # replay a JSONL file (or stdin)
//! memdos-engine serve <addr>      # ingest JSONL over TCP
//! ```
//!
//! Configuration comes from the environment: `MEMDOS_THREADS` (worker
//! count) and the `MEMDOS_ENGINE_*` knobs (see the README and
//! [`EngineConfig::from_env`]). The verdict event log goes to stdout;
//! diagnostics go to stderr.
//!
//! `serve` accepts one connection at a time and ingests it to EOF — the
//! parallelism budget goes to tenant dispatch inside the engine, not to
//! connection handling.

use memdos_engine::demo::{demo_engine_config, demo_jsonl, LAYOUT, TENANTS};
use memdos_engine::engine::{Engine, EngineConfig};
use std::io::{BufRead, BufReader, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let threads = memdos_runner::threads_config();
    if let Some(diag) = &threads.diagnostic {
        eprintln!("memdos-engine: {diag}");
    }
    match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(args.get(1)),
        Some("gen-demo") => cmd_gen_demo(args.get(1)),
        Some("replay") => cmd_replay(args.get(1)),
        Some("serve") => cmd_serve(args.get(1)),
        Some(other) => {
            eprintln!("memdos-engine: unknown command {other:?}");
            usage();
            2
        }
        None => {
            usage();
            2
        }
    }
}

fn usage() {
    eprintln!(
        "usage: memdos-engine <demo [seed] | gen-demo [seed] | replay [path] | serve <addr>>"
    );
}

fn parse_seed(arg: Option<&String>) -> Result<u64, String> {
    match arg {
        None => Ok(0xD05),
        Some(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("seed {s:?} is not a non-negative integer")),
    }
}

/// Builds the engine from the environment, preferring the demo's
/// profile/SDS settings for the demo commands.
fn engine_from_env(demo_defaults: bool) -> Result<Engine, String> {
    let mut config = EngineConfig::from_env()?;
    if demo_defaults {
        let demo = demo_engine_config(config.workers);
        config.session.profile_ticks = demo.session.profile_ticks;
        config.session.sds = demo.session.sds;
    }
    Engine::new(config).map_err(|e| e.to_string())
}

/// Prints log lines the engine produced since `printed`, returning the
/// new high-water mark.
fn print_new_log(engine: &Engine, printed: usize) -> usize {
    let out = std::io::stdout();
    let mut out = out.lock();
    for line in engine.log_lines().iter().skip(printed) {
        if writeln!(out, "{line}").is_err() {
            break;
        }
    }
    engine.log_lines().len()
}

fn cmd_demo(seed: Option<&String>) -> i32 {
    let seed = match parse_seed(seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let mut engine = match engine_from_env(true) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let workers = engine.config().workers;
    eprintln!(
        "memdos-engine: simulating {} tenants (seed {seed}, {workers} workers)",
        TENANTS.len()
    );
    let lines = demo_jsonl(seed, &LAYOUT, workers);
    for line in &lines {
        engine.ingest_line(line);
    }
    engine.flush();
    print_new_log(&engine, 0);
    eprintln!(
        "memdos-engine: {} input lines, {} log events, {} sessions",
        lines.len(),
        engine.log_lines().len(),
        engine.session_count()
    );
    for session in engine.sessions() {
        eprintln!(
            "memdos-engine:   {}: {} ({} alarms, {} ingested, {} dropped)",
            session.tenant(),
            session.state().label(),
            session.alarms(),
            session.ingested(),
            session.dropped()
        );
    }
    0
}

fn cmd_gen_demo(seed: Option<&String>) -> i32 {
    let seed = match parse_seed(seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let workers = memdos_runner::threads();
    let out = std::io::stdout();
    let mut out = out.lock();
    for line in demo_jsonl(seed, &LAYOUT, workers) {
        if writeln!(out, "{line}").is_err() {
            return 1;
        }
    }
    0
}

fn cmd_replay(path: Option<&String>) -> i32 {
    let mut engine = match engine_from_env(false) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let consumed = match path {
        Some(p) => std::fs::File::open(p)
            .map_err(|e| format!("{p}: {e}"))
            .and_then(|f| {
                engine.ingest_reader(BufReader::new(f)).map_err(|e| format!("{p}: {e}"))
            }),
        None => {
            let stdin = std::io::stdin();
            let locked = stdin.lock();
            engine.ingest_reader(locked).map_err(|e| format!("stdin: {e}"))
        }
    };
    let consumed = match consumed {
        Ok(n) => n,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 1;
        }
    };
    print_new_log(&engine, 0);
    eprintln!(
        "memdos-engine: replayed {consumed} lines into {} sessions ({} malformed)",
        engine.session_count(),
        engine.malformed()
    );
    0
}

fn cmd_serve(addr: Option<&String>) -> i32 {
    let Some(addr) = addr else {
        eprintln!("memdos-engine: serve requires an address (e.g. 127.0.0.1:7700)");
        return 2;
    };
    let mut engine = match engine_from_env(false) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("memdos-engine: {e}");
            return 2;
        }
    };
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("memdos-engine: bind {addr}: {e}");
            return 1;
        }
    };
    eprintln!("memdos-engine: listening on {addr} (one connection at a time)");
    let mut printed = 0;
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "<unknown>".to_string());
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let mut consumed = 0u64;
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => break,
                        Ok(_) => {
                            let trimmed = line.trim();
                            if !trimmed.is_empty() {
                                engine.ingest_line(trimmed);
                                consumed += 1;
                            }
                        }
                        Err(e) => {
                            eprintln!("memdos-engine: {peer}: {e}");
                            break;
                        }
                    }
                }
                engine.flush();
                printed = print_new_log(&engine, printed);
                eprintln!("memdos-engine: {peer}: {consumed} lines");
            }
            Err(e) => eprintln!("memdos-engine: accept: {e}"),
        }
    }
    0
}
