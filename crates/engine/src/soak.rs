//! The chaos soak harness behind `memdos-engine soak`.
//!
//! One soak **scenario** is a pure function of its seed: generate the
//! four-tenant demo stream (compact [`SOAK_LAYOUT`]), run it through a
//! seeded [`FaultPlan`], then replay the chaotic stream into the engine
//! once per worker count in [`WORKER_SWEEP`]. Per scenario the harness
//! checks the engine's core resilience invariants:
//!
//! * **no panic** — the scenario completing is the assertion; nothing
//!   in the pipeline may unwind on corrupted input;
//! * **determinism** — the verdict log is byte-identical at every
//!   worker count (what `MEMDOS_THREADS` controls in the CLI);
//! * **bounded memory** — the queued-item high-water mark stays under
//!   `sessions × (queue capacity + slack)`, so no fault class can grow
//!   a buffer without bound;
//! * **coverage** — across the soak every fault class fired at least
//!   once, so a passing run actually exercised the recovery paths.
//!
//! The report is JSONL (one line per scenario plus a summary), flat
//! like the verdict log, so the same tooling consumes both.

use crate::chaos::{FaultPlan, FaultPlanConfig, FaultTrace, FAULT_CLASSES};
use crate::demo::{demo_jsonl, soak_engine_config, DemoLayout, SOAK_LAYOUT};
use crate::config::Config;
use crate::engine::{Engine, EngineStats};
use memdos_metrics::jsonl::JsonObject;
use memdos_stats::rng::derive_seed;

/// Worker counts every scenario is replayed at.
pub const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Close-queue slack allowed above the sample-queue capacity in the
/// bounded-memory check (control items bypass the sample drop policy).
const QUEUE_SLACK: usize = 8;

/// Soak run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakConfig {
    /// Number of seeded scenarios to replay.
    pub seeds: u64,
    /// Base seed; scenario `i` derives from `(base_seed, i)`.
    pub base_seed: u64,
    /// Fault rates applied to every scenario.
    pub faults: FaultPlanConfig,
    /// Stream shape per tenant.
    pub layout: DemoLayout,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seeds: 8,
            base_seed: 0xD05,
            faults: FaultPlanConfig::chaos(),
            layout: SOAK_LAYOUT,
        }
    }
}

impl SoakConfig {
    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.seeds == 0 {
            return Err("seeds must be positive".to_string());
        }
        self.faults.validate()
    }
}

/// The outcome of one seeded scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario index (0-based).
    pub index: u64,
    /// Derived scenario seed.
    pub seed: u64,
    /// Faults injected, by class and line.
    pub trace: FaultTrace,
    /// Clean stream length, in lines.
    pub input_lines: usize,
    /// Chaotic stream length, in lines (duplicates/replays add,
    /// truncation/muting removes).
    pub delivered_lines: usize,
    /// Verdict-log length of the reference (1-worker) run.
    pub log_lines: usize,
    /// Logs byte-identical across the whole [`WORKER_SWEEP`].
    pub identical: bool,
    /// Queued-item high-water mark stayed under the capacity bound.
    pub bounded: bool,
    /// Engine counters of the reference run.
    pub stats: EngineStats,
    /// Sessions opened by the reference run (incarnations count).
    pub sessions: usize,
}

impl ScenarioReport {
    /// Scenario invariants all held.
    pub fn passed(&self) -> bool {
        self.identical && self.bounded
    }

    /// The scenario's JSONL report line.
    pub fn to_line(&self) -> String {
        let mut o = JsonObject::new();
        o.push_str("event", "soak_scenario")
            .push_num("index", self.index as f64)
            .push_num("seed", self.seed as f64)
            .push_num("faults", self.trace.total() as f64);
        for class in FAULT_CLASSES {
            o.push_num(class.label(), self.trace.count(class) as f64);
        }
        o.push_num("input_lines", self.input_lines as f64)
            .push_num("delivered_lines", self.delivered_lines as f64)
            .push_num("log_lines", self.log_lines as f64)
            .push_bool("identical", self.identical)
            .push_bool("bounded", self.bounded)
            .push_num("sessions", self.sessions as f64)
            .push_num("malformed", self.stats.malformed as f64)
            .push_num("resynced", self.stats.resynced as f64)
            .push_num("drops_backpressure", self.stats.drops_backpressure as f64)
            .push_num("drops_terminal", self.stats.drops_terminal as f64)
            .push_num("recoveries", self.stats.recoveries as f64)
            .push_num("idle_closed", self.stats.idle_closed as f64)
            .push_num("reopened", self.stats.reopened as f64)
            .push_num("peak_queued", self.stats.peak_queued as f64);
        o.to_line()
    }
}

/// The outcome of a whole soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Per-scenario outcomes, in seed order.
    pub scenarios: Vec<ScenarioReport>,
}

impl SoakReport {
    /// Every scenario's log was worker-invariant.
    pub fn all_identical(&self) -> bool {
        self.scenarios.iter().all(|s| s.identical)
    }

    /// Every scenario respected the memory bound.
    pub fn all_bounded(&self) -> bool {
        self.scenarios.iter().all(|s| s.bounded)
    }

    /// Fault classes that never fired across the whole soak.
    pub fn missing_classes(&self) -> Vec<&'static str> {
        FAULT_CLASSES
            .iter()
            .filter(|c| self.scenarios.iter().all(|s| s.trace.count(**c) == 0))
            .map(|c| c.label())
            .collect()
    }

    /// The soak passed: every invariant held and every class fired.
    pub fn passed(&self) -> bool {
        self.all_identical() && self.all_bounded() && self.missing_classes().is_empty()
    }

    /// The summary JSONL line.
    pub fn summary_line(&self) -> String {
        let mut o = JsonObject::new();
        o.push_str("event", "soak_summary")
            .push_num("seeds", self.scenarios.len() as f64)
            .push_num(
                "faults",
                self.scenarios.iter().map(|s| s.trace.total()).sum::<u64>() as f64,
            )
            .push_bool("identical", self.all_identical())
            .push_bool("bounded", self.all_bounded())
            .push_num("classes_missing", self.missing_classes().len() as f64)
            .push_bool("pass", self.passed());
        o.to_line()
    }
}

/// Engine configuration for a soak scenario: the demo detector settings
/// sized to `layout`, with the recovery machinery deliberately stressed
/// — a queue smaller than the flush batch (every batch overflows and
/// recovers), a live idle timeout (muted tenants must close), and a
/// one-alarm quarantine budget (attacked tenants go terminal).
pub fn scenario_engine_config(workers: usize, layout: &DemoLayout) -> Config {
    let mut cfg = soak_engine_config(workers);
    cfg.session.profile_ticks = layout.profile_ticks;
    cfg.batch = 1_024;
    cfg.session.queue_capacity = 200;
    cfg.session.idle_timeout = 600;
    cfg.session.quarantine_after = 1;
    cfg
}

/// Replays `lines` into a fresh engine and returns its log and
/// counters.
fn run_engine(
    config: Config,
    lines: &[String],
) -> Result<(Vec<String>, EngineStats, usize), String> {
    let mut engine = Engine::new(config).map_err(|e| e.to_string())?;
    for line in lines {
        engine.ingest_line(line);
    }
    engine.finish();
    Ok((engine.log_lines().to_vec(), engine.stats(), engine.session_count()))
}

/// Runs one seeded scenario: generate, perturb, replay across the
/// worker sweep, check invariants.
///
/// # Errors
///
/// Returns a description of a configuration problem (fault rates,
/// engine config); invariant *violations* are reported, not errors.
pub fn run_scenario(config: &SoakConfig, index: u64) -> Result<ScenarioReport, String> {
    let seed = derive_seed(config.base_seed, index);
    let stream = demo_jsonl(derive_seed(seed, 1), &config.layout, memdos_runner::threads());
    let (chaotic, trace) = FaultPlan::apply(derive_seed(seed, 2), config.faults, &stream)?;
    let mut reference: Option<(Vec<String>, EngineStats, usize)> = None;
    let mut identical = true;
    let mut bounded = true;
    for workers in WORKER_SWEEP {
        let cfg = scenario_engine_config(workers, &config.layout);
        let (log, stats, sessions) = run_engine(cfg, &chaotic)?;
        let bound =
            (sessions as u64) * (cfg.session.queue_capacity + QUEUE_SLACK) as u64;
        if stats.peak_queued > bound {
            bounded = false;
        }
        match &reference {
            None => reference = Some((log, stats, sessions)),
            Some((ref_log, _, _)) => {
                if &log != ref_log {
                    identical = false;
                }
            }
        }
    }
    let (log, stats, sessions) =
        reference.ok_or_else(|| "empty worker sweep".to_string())?;
    Ok(ScenarioReport {
        index,
        seed,
        trace,
        input_lines: stream.len(),
        delivered_lines: chaotic.len(),
        log_lines: log.len(),
        identical,
        bounded,
        stats,
        sessions,
    })
}

/// Runs the whole soak, invoking `on_scenario` as each scenario
/// completes (progress reporting).
///
/// # Errors
///
/// Returns a description of the first configuration problem.
pub fn run_soak(
    config: &SoakConfig,
    mut on_scenario: impl FnMut(&ScenarioReport),
) -> Result<SoakReport, String> {
    config.validate()?;
    let mut scenarios = Vec::with_capacity(config.seeds as usize);
    for index in 0..config.seeds {
        let report = run_scenario(config, index)?;
        on_scenario(&report);
        scenarios.push(report);
    }
    Ok(SoakReport { scenarios })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soak_scenario_holds_all_invariants() {
        let config = SoakConfig {
            seeds: 1,
            base_seed: 99,
            layout: DemoLayout {
                profile_ticks: 400,
                benign_ticks: 100,
                attack_ticks: 100,
                tail_ticks: 50,
            },
            ..SoakConfig::default()
        };
        let report = run_soak(&config, |_| {}).unwrap();
        assert_eq!(report.scenarios.len(), 1);
        let s = report.scenarios.first().unwrap();
        assert!(s.identical, "log must be worker-invariant under chaos");
        assert!(s.bounded, "peak_queued {} exceeded bound", s.stats.peak_queued);
        assert!(s.trace.total() > 0, "chaos rates must fire on 2600 lines");
        assert!(s.log_lines > 0);
        // Report lines are valid flat JSONL.
        let obj = JsonObject::parse(&s.to_line()).expect("scenario line parses");
        assert_eq!(obj.get_str("event"), Some("soak_scenario"));
        let obj = JsonObject::parse(&report.summary_line()).expect("summary parses");
        assert_eq!(obj.get_str("event"), Some("soak_summary"));
    }

    #[test]
    fn rejects_invalid_config() {
        let config = SoakConfig { seeds: 0, ..SoakConfig::default() };
        assert!(run_soak(&config, |_| {}).is_err());
        let config = SoakConfig {
            faults: FaultPlanConfig { corrupt: 2.0, ..FaultPlanConfig::none() },
            ..SoakConfig::default()
        };
        assert!(run_soak(&config, |_| {}).is_err());
    }
}
