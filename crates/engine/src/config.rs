//! The unified engine configuration surface.
//!
//! Every knob the engine honours lives in one [`Config`] struct:
//! construct it in code (struct literal or the builder methods), or
//! resolve the `MEMDOS_ENGINE_*` environment once at process startup
//! with [`Config::from_env`]. [`crate::engine::Engine::new`] takes a
//! `Config` and nothing else — the engine itself never reads the
//! environment, so a library embedder (or a test replaying the same
//! stream at several worker counts) passes explicit values instead of
//! mutating process-global state.
//!
//! | env var | field |
//! |---|---|
//! | `MEMDOS_THREADS` | [`Config::workers`] |
//! | `MEMDOS_ENGINE_BATCH` | [`Config::batch`] |
//! | `MEMDOS_ENGINE_MAX_SESSIONS` | [`Config::max_sessions`] |
//! | `MEMDOS_ENGINE_DROP_LOG` | [`Config::drop_log_every`] |
//! | `MEMDOS_ENGINE_PROF` | [`Config::prof`] |
//! | `MEMDOS_ENGINE_PROFILE_TICKS` | [`Config::session`]`.profile_ticks` |
//! | `MEMDOS_ENGINE_QUEUE` | [`Config::session`]`.queue_capacity` |
//! | `MEMDOS_ENGINE_QUARANTINE` | [`Config::session`]`.quarantine_after` |
//! | `MEMDOS_ENGINE_IDLE` | [`Config::session`]`.idle_timeout` |
//! | `MEMDOS_ENGINE_DROP` | [`Config::session`]`.drop_policy` |
//! | `MEMDOS_ENGINE_KSTEST` | [`Config::session`]`.kstest` |
//! | `MEMDOS_ENGINE_MITIGATION` | [`Config::mitigation`]`.enabled` |
//! | `MEMDOS_ENGINE_CONFIRM_BUDGET` | [`Config::mitigation`]`.confirm_budget` |
//! | `MEMDOS_ENGINE_HOLD_TICKS` | [`Config::mitigation`]`.hold_ticks` |
//! | `MEMDOS_ENGINE_DEGRADED_BELOW` | [`Config::mitigation`]`.degraded_below` |
//! | `MEMDOS_ENGINE_MAX_RUNG` | [`Config::mitigation`]`.max_rung` |

use crate::session::SessionConfig;
use memdos_core::CoreError;

/// Policy of the quarantine-driven response loop
/// ([`crate::mitigation`]). Disabled by default: with `enabled = false`
/// the engine never scans for victims, never engages a control, and the
/// fleet-scale hot path pays nothing.
///
/// Budgets are measured in *seq ticks* — ingest arrival indices — so
/// every decision point is a pure function of the input stream and the
/// mitigation event log stays byte-identical at any worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPolicy {
    /// Master switch for the response loop.
    pub enabled: bool,
    /// Seq ticks an engaged control may take to show victim recovery
    /// before the case climbs the escalation ladder.
    pub confirm_budget: u64,
    /// Seq ticks a verdict must hold before it becomes terminal: an
    /// innocent case releases after this hold, and victim recovery must
    /// stick this long before the attack counts as confirmed.
    pub hold_ticks: u64,
    /// Victim recovery ratio (monitoring EWMA over profile baseline)
    /// below which a victim counts as degraded, in `(0, 1]`.
    pub degraded_below: f64,
    /// Highest escalation rung the ladder may reach: 0 throttle,
    /// 1 pause, 2 evict.
    pub max_rung: u8,
}

impl Default for MitigationPolicy {
    fn default() -> Self {
        MitigationPolicy {
            enabled: false,
            confirm_budget: 400,
            hold_ticks: 160,
            degraded_below: 0.95,
            max_rung: 2,
        }
    }
}

impl MitigationPolicy {
    /// An enabled policy with the default budgets.
    pub fn enabled() -> Self {
        MitigationPolicy { enabled: true, ..MitigationPolicy::default() }
    }

    /// Validates the policy — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.confirm_budget == 0 {
            return Err(CoreError::InvalidParameter {
                name: "mitigation.confirm_budget",
                reason: "must be positive",
            });
        }
        if !(self.degraded_below > 0.0 && self.degraded_below <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "mitigation.degraded_below",
                reason: "must be within (0, 1]",
            });
        }
        if self.max_rung > 2 {
            return Err(CoreError::InvalidParameter {
                name: "mitigation.max_rung",
                reason: "must be 0 (throttle), 1 (pause) or 2 (evict)",
            });
        }
        Ok(())
    }
}

/// Engine configuration. All knobs flow through this struct; see the
/// module docs for the environment-variable mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Worker threads for session dispatch (>= 1). The log is identical
    /// at any value; this only sets the parallelism.
    pub workers: usize,
    /// Input lines between flushes (>= 1). Keep at or below the session
    /// queue capacity to rule out backpressure drops from batching alone
    /// (see the engine module docs on determinism).
    pub batch: usize,
    /// Memory ceiling: maximum concurrently open (non-closing) sessions;
    /// `0` disables the ceiling. When an open would exceed it, the
    /// least-recently-seen open session is evicted — closed with reason
    /// `evicted` and reclaimed at the next flush; an evicted tenant that
    /// speaks again reopens as a new generation, exactly like any other
    /// closed tenant.
    pub max_sessions: usize,
    /// Drop-burst coalescing interval (>= 1): inside one backpressure
    /// burst, a `dropped` event is logged for the first loss and then
    /// every `drop_log_every`-th, so a sustained overload degrades the
    /// log gracefully instead of flooding it one event per lost sample.
    /// The totals stay exact in the event payloads and in
    /// [`crate::engine::EngineStats`].
    pub drop_log_every: u64,
    /// Decode clean lines through the borrowed zero-allocation parser
    /// (`true`, the default). `false` forces every line through the
    /// allocating slow path; the log is identical either way — this
    /// switch exists so equivalence tests can prove it.
    pub fast_parse: bool,
    /// Collect per-stage ns counters (decode/dispatch/step/merge/write)
    /// and emit them in the final `engine_stats` line. Off by default:
    /// the counters are wall-clock measurements, so enabling them makes
    /// the stats line (and only the stats line) non-reproducible.
    pub prof: bool,
    /// Configuration applied to every session the engine opens.
    pub session: SessionConfig,
    /// Quarantine-driven response policy (off by default).
    pub mitigation: MitigationPolicy,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 1,
            batch: 256,
            max_sessions: 0,
            drop_log_every: 64,
            fast_parse: true,
            prof: false,
            session: SessionConfig::default(),
            mitigation: MitigationPolicy::default(),
        }
    }
}

impl Config {
    /// Sets the worker count (builder style).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the flush batch size (builder style).
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the open-session memory ceiling (builder style); `0`
    /// disables it.
    #[must_use]
    pub fn max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Sets the drop-burst coalescing interval (builder style).
    #[must_use]
    pub fn drop_log_every(mut self, every: u64) -> Self {
        self.drop_log_every = every;
        self
    }

    /// Enables or disables the zero-allocation parse path (builder
    /// style).
    #[must_use]
    pub fn fast_parse(mut self, fast_parse: bool) -> Self {
        self.fast_parse = fast_parse;
        self
    }

    /// Enables or disables the per-stage profiler (builder style).
    #[must_use]
    pub fn prof(mut self, prof: bool) -> Self {
        self.prof = prof;
        self
    }

    /// Sets the per-session configuration (builder style).
    #[must_use]
    pub fn session(mut self, session: SessionConfig) -> Self {
        self.session = session;
        self
    }

    /// Sets the mitigation policy (builder style).
    #[must_use]
    pub fn mitigation(mut self, mitigation: MitigationPolicy) -> Self {
        self.mitigation = mitigation;
        self
    }

    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidParameter {
                name: "workers",
                reason: "must be positive",
            });
        }
        if self.batch == 0 {
            return Err(CoreError::InvalidParameter {
                name: "batch",
                reason: "must be positive",
            });
        }
        if self.drop_log_every == 0 {
            return Err(CoreError::InvalidParameter {
                name: "drop_log_every",
                reason: "must be positive",
            });
        }
        self.mitigation.validate()?;
        self.session.validate()
    }

    /// Builds a configuration from the `MEMDOS_ENGINE_*` environment
    /// variables (see the module docs for the mapping), with
    /// `MEMDOS_THREADS` supplying the worker count. Unset variables take
    /// their defaults; set-but-invalid ones are an error — the engine is
    /// a long-running service, so a typo must fail loudly at startup
    /// rather than be silently ignored. Call this once, at process
    /// startup (the CLI does so in `main`); everything downstream takes
    /// the resolved `Config` by value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid
    /// variable, in the same diagnostic style as the `MEMDOS_THREADS`
    /// parse (`NAME=value is not a ...`).
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = Config {
            workers: memdos_runner::threads(),
            ..Config::default()
        };
        cfg.batch = env_usize("MEMDOS_ENGINE_BATCH", cfg.batch)?;
        cfg.max_sessions = env_usize("MEMDOS_ENGINE_MAX_SESSIONS", cfg.max_sessions)?;
        cfg.session.profile_ticks =
            env_u64("MEMDOS_ENGINE_PROFILE_TICKS", cfg.session.profile_ticks)?;
        cfg.session.queue_capacity =
            env_usize("MEMDOS_ENGINE_QUEUE", cfg.session.queue_capacity)?;
        cfg.session.quarantine_after =
            env_u64("MEMDOS_ENGINE_QUARANTINE", cfg.session.quarantine_after)?;
        cfg.session.idle_timeout = env_u64("MEMDOS_ENGINE_IDLE", cfg.session.idle_timeout)?;
        cfg.drop_log_every = env_u64("MEMDOS_ENGINE_DROP_LOG", cfg.drop_log_every)?;
        cfg.prof = env_bool("MEMDOS_ENGINE_PROF", cfg.prof)?;
        cfg.mitigation.enabled = env_bool("MEMDOS_ENGINE_MITIGATION", cfg.mitigation.enabled)?;
        cfg.mitigation.confirm_budget =
            env_u64("MEMDOS_ENGINE_CONFIRM_BUDGET", cfg.mitigation.confirm_budget)?;
        cfg.mitigation.hold_ticks = env_u64("MEMDOS_ENGINE_HOLD_TICKS", cfg.mitigation.hold_ticks)?;
        cfg.mitigation.degraded_below =
            env_f64("MEMDOS_ENGINE_DEGRADED_BELOW", cfg.mitigation.degraded_below)?;
        cfg.mitigation.max_rung =
            env_u64("MEMDOS_ENGINE_MAX_RUNG", cfg.mitigation.max_rung as u64)? as u8;
        if let Ok(v) = std::env::var("MEMDOS_ENGINE_DROP") {
            cfg.session.drop_policy = crate::session::DropPolicy::parse(&v)
                .map_err(|e| format!("MEMDOS_ENGINE_DROP: {e}"))?;
        }
        if let Ok(v) = std::env::var("MEMDOS_ENGINE_KSTEST") {
            cfg.session.kstest = match v.trim() {
                "1" | "true" | "on" => Some(memdos_core::config::KsTestParams::default()),
                "0" | "false" | "off" => None,
                other => {
                    return Err(format!(
                        "MEMDOS_ENGINE_KSTEST={other:?} is not a boolean \
                         (use 1/0, true/false or on/off)"
                    ))
                }
            };
        }
        cfg.validate().map_err(|e| e.to_string())?;
        Ok(cfg)
    }
}

fn env_u64(name: &str, default: u64) -> Result<u64, String> {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("{name}={v:?} is not a non-negative integer")),
        Err(_) => Ok(default),
    }
}

fn env_usize(name: &str, default: usize) -> Result<usize, String> {
    env_u64(name, default as u64).map(|n| n as usize)
}

fn env_f64(name: &str, default: f64) -> Result<f64, String> {
    match std::env::var(name) {
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(x),
            _ => Err(format!("{name}={v:?} is not a finite number")),
        },
        Err(_) => Ok(default),
    }
}

fn env_bool(name: &str, default: bool) -> Result<bool, String> {
    match std::env::var(name) {
        Ok(v) => match v.trim() {
            "1" | "true" | "on" => Ok(true),
            "0" | "false" | "off" => Ok(false),
            other => Err(format!(
                "{name}={other:?} is not a boolean (use 1/0, true/false or on/off)"
            )),
        },
        Err(_) => Ok(default),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_chain() {
        let cfg = Config::default()
            .workers(4)
            .batch(512)
            .max_sessions(1_000)
            .drop_log_every(16)
            .fast_parse(false)
            .prof(true);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.batch, 512);
        assert_eq!(cfg.max_sessions, 1_000);
        assert_eq!(cfg.drop_log_every, 16);
        assert!(!cfg.fast_parse);
        assert!(cfg.prof);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_knobs() {
        assert!(Config::default().workers(0).validate().is_err());
        assert!(Config::default().batch(0).validate().is_err());
        assert!(Config::default().drop_log_every(0).validate().is_err());
        // A zero ceiling means "no ceiling", not "no sessions".
        assert!(Config::default().max_sessions(0).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_mitigation_policy() {
        let with = |p: MitigationPolicy| Config::default().mitigation(p);
        assert!(with(MitigationPolicy::enabled()).validate().is_ok());
        assert!(with(MitigationPolicy { confirm_budget: 0, ..MitigationPolicy::enabled() })
            .validate()
            .is_err());
        assert!(with(MitigationPolicy { degraded_below: 0.0, ..MitigationPolicy::enabled() })
            .validate()
            .is_err());
        assert!(with(MitigationPolicy { degraded_below: 1.5, ..MitigationPolicy::enabled() })
            .validate()
            .is_err());
        assert!(with(MitigationPolicy { max_rung: 3, ..MitigationPolicy::enabled() })
            .validate()
            .is_err());
    }
}
