//! Owner-checked slab storage for fleet-scale session slots.
//!
//! The engine keeps every live [`crate::session::Session`] in one
//! contiguous `Vec` of slots so that opening a tenant after a closure
//! reuses memory instead of growing the heap forever. Slots are
//! addressed by a dense `u32` index and stamped with the owning
//! tenant's interned id: because indices are recycled (LIFO free list,
//! so reuse is deterministic and cache-warm), a stale index held
//! elsewhere could otherwise alias a slot that now belongs to a
//! different tenant. Every accessor therefore takes the expected owner
//! and returns `None` on mismatch — a stale handle degrades to a miss,
//! never to another tenant's session. The churn fuzz in
//! `crates/engine/tests/fleet_eviction.rs` leans on this guard.
//!
//! The slab also tracks a per-slot `dirty` flag so the engine can keep
//! a duplicate-free list of sessions that queued work since the last
//! flush without scanning all 50k slots (see `engine::flush`).

/// A slot store with owner-stamped entries and a LIFO free list.
///
/// `O(1)` insert/lookup/remove; iteration order over live entries is
/// slot order (ascending index), which is deterministic because both
/// allocation and recycling are.
#[derive(Debug)]
pub(crate) struct Slab<T> {
    slots: Vec<Option<Entry<T>>>,
    /// Recycled slot indices, popped LIFO so reuse order is a pure
    /// function of the release order.
    free: Vec<u32>,
    /// Number of live entries (slots holding `Some`, plus slots lent
    /// out via [`Slab::lend`] and not yet restored or released).
    live: usize,
}

#[derive(Debug)]
struct Entry<T> {
    owner: u32,
    dirty: bool,
    value: T,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Total slot capacity (live + free), i.e. the high-water mark of
    /// concurrent entries.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `value` for `owner` and returns its slot index, reusing
    /// a freed slot when one exists.
    pub(crate) fn insert(&mut self, owner: u32, value: T) -> u32 {
        self.live += 1;
        let entry = Entry {
            owner,
            dirty: false,
            value,
        };
        if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                *slot = Some(entry);
                return idx;
            }
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Some(entry));
        idx
    }

    /// Borrows the entry at `idx` if it is live and owned by `owner`.
    pub(crate) fn get(&self, idx: u32, owner: u32) -> Option<&T> {
        match self.slots.get(idx as usize) {
            Some(Some(e)) if e.owner == owner => Some(&e.value),
            _ => None,
        }
    }

    /// Mutably borrows the entry at `idx` if it is live and owned by
    /// `owner`.
    pub(crate) fn get_mut(&mut self, idx: u32, owner: u32) -> Option<&mut T> {
        match self.slots.get_mut(idx as usize) {
            Some(Some(e)) if e.owner == owner => Some(&mut e.value),
            _ => None,
        }
    }

    /// Marks the entry dirty; returns `true` if it was clean (so the
    /// caller appends it to its dirty list exactly once per flush
    /// interval).
    pub(crate) fn mark_dirty(&mut self, idx: u32) -> bool {
        match self.slots.get_mut(idx as usize) {
            Some(Some(e)) if !e.dirty => {
                e.dirty = true;
                true
            }
            _ => false,
        }
    }

    /// Moves the entry's value out for flush processing, leaving the
    /// slot allocated but empty, and clears the dirty flag. The caller
    /// must either [`Slab::restore`] the value or [`Slab::release`] the
    /// slot before the next insert/lookup cycle; while lent, lookups on
    /// this index miss.
    pub(crate) fn lend(&mut self, idx: u32) -> Option<(u32, T)> {
        match self.slots.get_mut(idx as usize) {
            Some(slot @ Some(_)) => slot.take().map(|e| (e.owner, e.value)),
            _ => None,
        }
    }

    /// Returns a lent value to its slot (clean).
    pub(crate) fn restore(&mut self, idx: u32, owner: u32, value: T) {
        if let Some(slot) = self.slots.get_mut(idx as usize) {
            *slot = Some(Entry {
                owner,
                dirty: false,
                value,
            });
        }
    }

    /// Frees a slot whose value was lent out and will not return,
    /// making the index available for reuse.
    pub(crate) fn release(&mut self, idx: u32) {
        if let Some(slot) = self.slots.get_mut(idx as usize) {
            if slot.is_none() {
                self.free.push(idx);
                self.live = self.live.saturating_sub(1);
            }
        }
    }

    /// Iterates live entries in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (i as u32, &e.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<String> = Slab::new();
        let a = slab.insert(0, "a".to_string());
        let b = slab.insert(1, "b".to_string());
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a, 0).map(String::as_str), Some("a"));
        assert_eq!(slab.get(b, 1).map(String::as_str), Some("b"));
        let (owner, v) = slab.lend(a).unwrap();
        assert_eq!((owner, v.as_str()), (0, "a"));
        assert!(slab.get(a, 0).is_none(), "lent slot must miss");
        slab.release(a);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn freed_slots_reuse_lifo() {
        let mut slab: Slab<u64> = Slab::new();
        let a = slab.insert(0, 10);
        let b = slab.insert(1, 11);
        slab.lend(a);
        slab.release(a);
        slab.lend(b);
        slab.release(b);
        // LIFO: b's slot (freed last) is handed out first.
        assert_eq!(slab.insert(2, 12), b);
        assert_eq!(slab.insert(3, 13), a);
        assert_eq!(slab.capacity(), 2, "no growth while free slots exist");
    }

    #[test]
    fn stale_index_never_aliases_new_owner() {
        let mut slab: Slab<u64> = Slab::new();
        let idx = slab.insert(7, 70);
        slab.lend(idx);
        slab.release(idx);
        let reused = slab.insert(9, 90);
        assert_eq!(idx, reused);
        // The old owner's handle misses; the new owner's hits.
        assert!(slab.get(idx, 7).is_none());
        assert_eq!(slab.get(idx, 9), Some(&90));
        assert!(slab.get_mut(idx, 7).is_none());
    }

    #[test]
    fn dirty_flag_dedupes_and_resets_on_lend() {
        let mut slab: Slab<u64> = Slab::new();
        let idx = slab.insert(0, 1);
        assert!(slab.mark_dirty(idx), "first mark reports clean->dirty");
        assert!(!slab.mark_dirty(idx), "second mark is a no-op");
        let (owner, v) = slab.lend(idx).unwrap();
        slab.restore(idx, owner, v);
        assert!(slab.mark_dirty(idx), "restore clears the flag");
    }

    #[test]
    fn iter_walks_slot_order_and_skips_holes() {
        let mut slab: Slab<u64> = Slab::new();
        let a = slab.insert(0, 10);
        let _b = slab.insert(1, 11);
        let _c = slab.insert(2, 12);
        slab.lend(a);
        slab.release(a);
        let got: Vec<(u32, u64)> = slab.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(got, vec![(1, 11), (2, 12)]);
    }
}
