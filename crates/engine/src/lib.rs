//! # memdos-engine
//!
//! A long-running, multi-tenant streaming detection engine on top of the
//! paper's detectors — the deployment shape of §6: one engine per cloud
//! host, one session per monitored VM, verdicts as an event stream.
//!
//! * [`protocol`] — the JSONL wire format: one flat object per line,
//!   either a PCM sample (`{"tenant":"vm-0","access":1234,"miss":56}`)
//!   or a control record (`{"tenant":"vm-0","ctl":"close"}`).
//! * [`session`] — per-tenant lifecycle
//!   (`Profiling → Monitoring → Quarantined/Closed`), the detector stack
//!   behind the uniform [`memdos_core::detector::Detector`] /
//!   [`memdos_core::detector::FromProfile`] surface, and bounded queues
//!   with an explicit backpressure drop policy.
//! * [`config`] — the one [`Config`] struct every knob arrives
//!   through: builder methods for programmatic use, a single
//!   [`Config::from_env`] for the CLI (resolved once in `main`, never
//!   scattered through the engine).
//! * [`engine`] — the slab-backed session registry (dense slots keyed
//!   by the interned tenant id, an explicit `max_sessions` memory
//!   ceiling with LRU-idle eviction), batched dispatch onto the
//!   [`memdos_runner`] worker pool (sharded by tenant: per-tenant order
//!   preserved, tenants parallel), and the deterministic `(seq, sub)`
//!   hierarchically-merged event log. Replaying the same input yields a
//!   byte-identical log at any worker count and batch size — including
//!   across evictions.
//! * [`demo`] — the four-tenant demo stream (two periodic victims, two
//!   non-periodic, bus-locking and LLC-cleansing attack windows), which
//!   doubles as the fixture for the replay-determinism tier-1 test.
//! * [`chaos`] — seeded fault injection ([`chaos::FaultPlan`]) over any
//!   line source: byte corruption, truncation, duplication, reordering,
//!   stalls, disconnect replays and tenant churn, all drawn from
//!   [`memdos_stats::rng`] so a scenario is a pure function of its
//!   seed; plus the deterministic [`chaos::Backoff`] retry schedule the
//!   CLI uses for TCP recovery.
//! * [`soak`] — the chaos soak harness: N seeded scenarios over the
//!   demo stream, each replayed at several worker counts, asserting no
//!   panic, bounded memory, byte-identical logs and full fault-class
//!   coverage.
//! * [`mitigation`] — the quarantine-driven response state machine
//!   (`Throttled → Confirming → Released | Escalated`): a capped
//!   throttle→pause→evict escalation ladder with per-tenant rung
//!   memory, confirmed from *victim* counter recovery, emitting
//!   `mitigation_*` events under the same determinism contract as the
//!   verdict log.
//! * [`respond`] — the closed-loop driver: a seeded
//!   [`memdos_sim::fleet`] scenario with a ground-truth attacker feeds
//!   the engine, and the engine's mitigation actions feed back into
//!   the generator's throttle levels — detection changes the workload
//!   it is detecting.
//!
//! The `memdos-engine` binary wraps this as a CLI: `demo`, `gen-demo`,
//! `replay` (file or stdin), `serve` (TCP), `soak` and `respond`.
//!
//! ## Example
//!
//! ```rust
//! use memdos_engine::engine::Engine;
//! use memdos_engine::session::SessionConfig;
//! use memdos_engine::Config;
//!
//! let mut engine = Engine::new(
//!     Config::default()
//!         .session(SessionConfig { profile_ticks: 2_000, ..SessionConfig::default() }),
//! )
//! .unwrap();
//! for i in 0..2_100u64 {
//!     engine.ingest_line(&format!(
//!         r#"{{"tenant":"vm-0","access":{},"miss":40}}"#,
//!         1000 + i % 7
//!     ));
//! }
//! engine.flush();
//! assert!(engine.log_lines().iter().any(|l| l.contains("profile_ready")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod demo;
pub mod engine;
pub mod fleet;
pub mod mitigation;
pub mod protocol;
pub mod respond;
pub mod session;
mod slab;
pub mod soak;

pub use config::Config;
