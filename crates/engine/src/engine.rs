//! The multi-tenant engine: session registry, batched dispatch, and the
//! deterministic event log.
//!
//! Ingestion is single-threaded: each input line receives a global
//! arrival index (`seq`) and is routed to its tenant's [`Session`] queue.
//! Every `batch` lines the engine **flushes**: sessions are sharded
//! across the persistent [`memdos_runner::ShardPool`] workers (per-tenant
//! order preserved, tenants processed in parallel), each drains its queue
//! sequentially into a recycled event buffer, and the produced events
//! are merge-sorted by `(seq, sub)` into the log.
//!
//! ## Ingest fast path
//!
//! Clean lines decode through the borrowed
//! [`parse_record_borrowed`](jsonl::parse_record_borrowed) parser —
//! tenant names stay `&str` slices of the input line and route through
//! the intern table ([`TenantId`]) without touching the heap. Lines the
//! fast path cannot represent (escape sequences in protocol strings)
//! fall back to the allocating [`JsonObject`] parser; lines it rejects
//! go through [`jsonl::resync_line`] recovery, exactly as the slow path
//! always did. `EngineConfig::fast_parse` turns the fast path off so
//! equivalence tests can pin that both routes produce byte-identical
//! logs.
//!
//! ## Determinism guarantee
//!
//! Replaying the same input produces a **byte-identical** event log at
//! any worker count:
//!
//! * `seq` is assigned at single-threaded ingest, never by a worker;
//! * a session's events depend only on the sample sequence it received
//!   (queues drain fully at each flush, so flush boundaries do not change
//!   what any session observes, only when it observes it);
//! * backpressure drops are decided at ingest time, before any worker
//!   runs;
//! * `(seq, sub)` keys are unique across all events, so the merge-sort
//!   has exactly one order.
//!
//! The log is also identical across **batch sizes** as long as no
//! session queue overflows (i.e. `batch <= queue_capacity`, or the input
//! spreads across tenants): flushing is the only thing that drains
//! queues, so a larger batch holds samples longer and can trip the drop
//! policy earlier — backpressure is timing, and timing is what `batch`
//! configures. `tests/engine_replay_determinism.rs` (tier-1) pins the
//! worker-count guarantee on the demo stream.

use crate::protocol::Record;
use crate::session::{CloseReason, Offered, Session, SessionConfig, SessionEvent, SessionState};
use memdos_core::detector::Observation;
use memdos_core::CoreError;
use memdos_metrics::jsonl::{self, Decoder, Frame, JsonObject, LineBuf, RawKind, RawParse, Segment};
use memdos_runner::ShardPool;
use std::collections::BTreeMap;
use std::io::BufRead;

/// Sub-index that sorts an ingest-side event (malformed line, dropped
/// sample) after any session-side events of the same arrival index.
const SUB_INGEST: u32 = u32::MAX;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for session dispatch (>= 1). The log is identical
    /// at any value; this only sets the parallelism.
    pub workers: usize,
    /// Input lines between flushes (>= 1). Keep at or below the session
    /// queue capacity to rule out backpressure drops from batching alone
    /// (see the module docs on determinism).
    pub batch: usize,
    /// Drop-burst coalescing interval (>= 1): inside one backpressure
    /// burst, a `dropped` event is logged for the first loss and then
    /// every `drop_log_every`-th, so a sustained overload degrades the
    /// log gracefully instead of flooding it one event per lost sample.
    /// The totals stay exact in the event payloads and in
    /// [`EngineStats`].
    pub drop_log_every: u64,
    /// Decode clean lines through the borrowed zero-allocation parser
    /// (`true`, the default). `false` forces every line through the
    /// allocating [`JsonObject`] slow path; the log is identical either
    /// way — this switch exists so equivalence tests can prove it.
    pub fast_parse: bool,
    /// Collect per-stage ns counters (decode/dispatch/step/merge/write)
    /// and emit them in the final `engine_stats` line. Off by default:
    /// the counters are wall-clock measurements, so enabling them makes
    /// the stats line (and only the stats line) non-reproducible.
    pub prof: bool,
    /// Configuration applied to every session the engine opens.
    pub session: SessionConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            batch: 256,
            drop_log_every: 64,
            fast_parse: true,
            prof: false,
            session: SessionConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidParameter {
                name: "workers",
                reason: "must be positive",
            });
        }
        if self.batch == 0 {
            return Err(CoreError::InvalidParameter {
                name: "batch",
                reason: "must be positive",
            });
        }
        if self.drop_log_every == 0 {
            return Err(CoreError::InvalidParameter {
                name: "drop_log_every",
                reason: "must be positive",
            });
        }
        self.session.validate()
    }

    /// Builds a configuration from the `MEMDOS_ENGINE_*` environment
    /// variables (see the README), with `MEMDOS_THREADS` supplying the
    /// worker count. Unset variables take their defaults; set-but-invalid
    /// ones are an error — the engine is a long-running service, so a
    /// typo must fail loudly at startup rather than be silently ignored.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid
    /// variable.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = EngineConfig {
            workers: memdos_runner::threads(),
            ..EngineConfig::default()
        };
        cfg.batch = env_usize("MEMDOS_ENGINE_BATCH", cfg.batch)?;
        cfg.session.profile_ticks =
            env_u64("MEMDOS_ENGINE_PROFILE_TICKS", cfg.session.profile_ticks)?;
        cfg.session.queue_capacity =
            env_usize("MEMDOS_ENGINE_QUEUE", cfg.session.queue_capacity)?;
        cfg.session.quarantine_after =
            env_u64("MEMDOS_ENGINE_QUARANTINE", cfg.session.quarantine_after)?;
        cfg.session.idle_timeout = env_u64("MEMDOS_ENGINE_IDLE", cfg.session.idle_timeout)?;
        cfg.drop_log_every = env_u64("MEMDOS_ENGINE_DROP_LOG", cfg.drop_log_every)?;
        cfg.prof = env_bool("MEMDOS_ENGINE_PROF", cfg.prof)?;
        if let Ok(v) = std::env::var("MEMDOS_ENGINE_DROP") {
            cfg.session.drop_policy = crate::session::DropPolicy::parse(&v)
                .map_err(|e| format!("MEMDOS_ENGINE_DROP: {e}"))?;
        }
        if let Ok(v) = std::env::var("MEMDOS_ENGINE_KSTEST") {
            cfg.session.kstest = match v.trim() {
                "1" | "true" | "on" => {
                    Some(memdos_core::config::KsTestParams::default())
                }
                "0" | "false" | "off" => None,
                other => {
                    return Err(format!(
                        "MEMDOS_ENGINE_KSTEST={other:?} is not a boolean \
                         (use 1/0, true/false or on/off)"
                    ))
                }
            };
        }
        cfg.validate().map_err(|e| e.to_string())?;
        Ok(cfg)
    }
}

fn env_u64(name: &str, default: u64) -> Result<u64, String> {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("{name}={v:?} is not a non-negative integer")),
        Err(_) => Ok(default),
    }
}

fn env_usize(name: &str, default: usize) -> Result<usize, String> {
    env_u64(name, default as u64).map(|n| n as usize)
}

fn env_bool(name: &str, default: bool) -> Result<bool, String> {
    match std::env::var(name) {
        Ok(v) => match v.trim() {
            "1" | "true" | "on" => Ok(true),
            "0" | "false" | "off" => Ok(false),
            other => Err(format!(
                "{name}={other:?} is not a boolean (use 1/0, true/false or on/off)"
            )),
        },
        Err(_) => Ok(default),
    }
}

/// Engine-level recovery and degradation counters, surfaced in the
/// `engine_stats` log line written by [`Engine::finish`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Input spans that failed to decode into a record.
    pub malformed: u64,
    /// Records recovered by resynchronisation from dirty lines.
    pub resynced: u64,
    /// Samples lost to queue backpressure.
    pub drops_backpressure: u64,
    /// Samples lost to a quarantined or closed session.
    pub drops_terminal: u64,
    /// Drop bursts that ended with the queue admitting samples again.
    pub recoveries: u64,
    /// Sessions closed by the idle timeout.
    pub idle_closed: u64,
    /// Sessions reopened after a close (tenant churn).
    pub reopened: u64,
    /// High-water mark of total queued items observed at a flush.
    pub peak_queued: u64,
}

/// Per-stage wall-clock counters for the ingest path, collected only
/// when `MEMDOS_ENGINE_PROF=1` (`EngineConfig::prof`). Disabled, the
/// probes cost two predictable branches per line and never read a
/// clock, so the counters cannot perturb what they measure. The clock
/// is [`memdos_runner::monotonic_ns`] — wall time is harness territory,
/// and these numbers only ever surface as diagnostics in the final
/// `engine_stats` line, never in an event the determinism contract
/// covers.
#[derive(Debug, Default, Clone, Copy)]
struct StageProf {
    enabled: bool,
    /// Line → record decoding (fast parse, fallback and resync).
    decode_ns: u64,
    /// Record → session routing (intern lookup, offer, drop policy).
    dispatch_ns: u64,
    /// Session queue draining (detector stepping) across the pool.
    step_ns: u64,
    /// The `(seq, sub)` merge-sort of the flush's events.
    merge_ns: u64,
    /// Event rendering and log append.
    write_ns: u64,
}

impl StageProf {
    fn new(enabled: bool) -> Self {
        StageProf { enabled, ..StageProf::default() }
    }

    /// Stamp the start of a stage (0 when disabled).
    fn start(&self) -> u64 {
        if self.enabled {
            memdos_runner::monotonic_ns()
        } else {
            0
        }
    }

    /// Elapsed ns since a [`StageProf::start`] stamp (0 when disabled).
    fn lap(&self, t0: u64) -> u64 {
        if self.enabled {
            memdos_runner::monotonic_ns().saturating_sub(t0)
        } else {
            0
        }
    }
}

/// Interned tenant identity: a dense index into the engine's tenant
/// slot table. Routing a record costs one name lookup to obtain the id;
/// everything after (slot access, session lookup, reopen and idle
/// bookkeeping) keys on this `Copy` value, never on the `String`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// The dense table index this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-tenant routing state kept at the ingest side, so reopen and idle
/// decisions never depend on flush timing (which would break the
/// worker-count determinism guarantee).
#[derive(Debug)]
struct TenantSlot {
    /// Index into `Engine::sessions` of the current incarnation.
    session: usize,
    /// Arrival index of the tenant's most recent record.
    last_seen: u64,
    /// The engine has routed a close (ctl or idle) to this incarnation.
    closed_at_ingest: bool,
    /// Incarnation counter (0 = first session).
    generation: u32,
}

/// The multi-tenant streaming detection engine.
pub struct Engine {
    config: EngineConfig,
    /// Sessions in creation order; [`ShardPool::run_sharded`] restores
    /// this order after every flush, so slot entries stay valid. Closed
    /// incarnations stay in place (append-only) so their final events
    /// drain normally.
    sessions: Vec<Session>,
    /// Tenant-name intern table: name → dense [`TenantId`]. Consulted
    /// once per record; every later step keys on the `Copy` id.
    ids: BTreeMap<String, TenantId>,
    /// Routing state per interned tenant, indexed by [`TenantId`].
    slots: Vec<TenantSlot>,
    /// Events produced at ingest time (malformed lines, drops), merged
    /// with session events at the next flush.
    ingest_events: Vec<SessionEvent>,
    /// Persistent dispatch pool, spawned lazily at the first flush that
    /// can use more than one worker.
    pool: Option<ShardPool<Session, SessionEvent>>,
    /// `config.workers` clamped to the machine's available parallelism:
    /// oversubscribing a CPU-bound pool adds channel latency without
    /// adding concurrency (on a 1-core host a requested 4-worker pool
    /// ran ~40 % *slower* than inline). The log is byte-identical at
    /// any width, so the clamp is unobservable in output.
    effective_workers: usize,
    /// Recycled flush-event buffer (capacity survives across flushes).
    events_buf: Vec<SessionEvent>,
    /// Recycled log-line writer.
    render: LineBuf,
    prof: StageProf,
    next_seq: u64,
    pending: usize,
    log: Vec<String>,
    stats: EngineStats,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("sessions", &self.sessions.len())
            .field("next_seq", &self.next_seq)
            .field("log_lines", &self.log.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with no sessions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid `config`.
    pub fn new(config: EngineConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Engine {
            config,
            sessions: Vec::new(),
            ids: BTreeMap::new(),
            slots: Vec::new(),
            ingest_events: Vec::new(),
            pool: None,
            effective_workers: config.workers.min(memdos_runner::cores()),
            events_buf: Vec::new(),
            render: LineBuf::new(),
            prof: StageProf::new(config.prof),
            next_seq: 0,
            pending: 0,
            log: Vec::new(),
            stats: EngineStats::default(),
        })
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of sessions ever opened (reopened tenants count once per
    /// incarnation).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Input spans that failed to decode so far.
    pub fn malformed(&self) -> u64 {
        self.stats.malformed
    }

    /// Recovery/degradation counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Read-only view of the sessions, in creation order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The event log emitted so far, one JSONL line per entry. Call
    /// [`Engine::flush`] first to include everything ingested.
    pub fn log_lines(&self) -> &[String] {
        &self.log
    }

    /// Allocates the next arrival index for an input span (counts toward
    /// the flush batch).
    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        seq
    }

    /// Allocates an arrival index for an engine-originated event (idle
    /// close, stats line) without counting it toward the batch.
    fn alloc_seq_quiet(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Ingests one input line, flushing when the batch fills.
    ///
    /// Clean lines take the borrowed zero-allocation parse; lines it
    /// cannot represent (escapes in protocol strings) fall back to the
    /// [`JsonObject`] parser. A line neither accepts is resynchronised:
    /// every embedded valid record is recovered (each under its own
    /// arrival index, in line order) and the corrupted spans are logged
    /// as `malformed` events — one bad byte never costs more than its
    /// own span.
    // hot-path
    pub fn ingest_line(&mut self, line: &str) {
        if self.config.fast_parse {
            let t0 = self.prof.start();
            let parsed = jsonl::parse_record_borrowed(line);
            let d = self.prof.lap(t0);
            self.prof.decode_ns += d;
            match parsed {
                RawParse::Record(raw) => {
                    let seq = self.alloc_seq();
                    let t1 = self.prof.start();
                    match raw.kind {
                        RawKind::Sample { access, miss } => self.route_sample(
                            seq,
                            raw.tenant,
                            Observation { access_num: access, miss_num: miss },
                        ),
                        RawKind::Close => self.route_close(seq, raw.tenant),
                    }
                    let d = self.prof.lap(t1);
                    self.prof.dispatch_ns += d;
                }
                // The fast path only rejects what the slow path rejects
                // for the same reason (pinned by the equivalence suite),
                // so resync directly — re-parsing would fail again.
                // lint:allow(hot-propagate) -- resync recovers from corrupt input; the fault path may allocate
                RawParse::Reject(_) => self.ingest_resync(line),
                // lint:allow(hot-propagate) -- the slow parse is the announced fallback; its diagnostics may allocate
                RawParse::Fallback => match Record::parse_slow(line) {
                    Ok(record) => {
                        let seq = self.alloc_seq();
                        self.ingest_record(seq, record);
                    }
                    Err(_) => self.ingest_resync(line),
                },
            }
        } else {
            match Record::parse(line) {
                Ok(record) => {
                    let seq = self.alloc_seq();
                    self.ingest_record(seq, record);
                }
                Err(_) => self.ingest_resync(line),
            }
        }
        if self.pending >= self.config.batch {
            self.flush();
        }
    }

    /// Recovers what it can from a line no parser accepted whole: each
    /// embedded valid record re-enters the normal path under its own
    /// arrival index and each corrupted span becomes a `malformed`
    /// event.
    fn ingest_resync(&mut self, line: &str) {
        for segment in jsonl::resync_line(line) {
            let seq = self.alloc_seq();
            match segment {
                Segment::Object(obj) => match Record::from_object(&obj) {
                    Ok(record) => {
                        self.stats.resynced += 1;
                        self.ingest_record(seq, record);
                    }
                    Err(e) => self.push_malformed(seq, e.reason(), None),
                },
                Segment::Skipped { bytes, reason } => {
                    self.push_malformed(seq, &reason, Some(bytes));
                }
            }
        }
    }

    /// Ingests every byte of `reader` through the resynchronising
    /// [`Decoder`] (draining the engine at EOF) and returns the number of
    /// physical lines consumed. Invalid UTF-8, oversized lines and
    /// corrupted records are logged and skipped, never fatal.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader; input ingested before the
    /// error remains processed.
    pub fn ingest_reader<R: BufRead>(&mut self, mut reader: R) -> std::io::Result<u64> {
        let mut dec = Decoder::new();
        loop {
            let len = {
                let chunk = reader.fill_buf()?;
                if chunk.is_empty() {
                    break;
                }
                dec.push_bytes(chunk);
                chunk.len()
            };
            reader.consume(len);
            for frame in dec.drain() {
                self.ingest_frame(frame);
            }
        }
        for frame in dec.finish() {
            self.ingest_frame(frame);
        }
        self.stats.resynced += dec.resynced();
        self.flush();
        Ok(dec.lines())
    }

    /// Routes one decoded frame (from [`Decoder`]) into the engine.
    fn ingest_frame(&mut self, frame: Frame) {
        let seq = self.alloc_seq();
        match frame {
            Frame::Object(obj) => match Record::from_object(&obj) {
                Ok(record) => self.ingest_record(seq, record),
                Err(e) => self.push_malformed(seq, e.reason(), None),
            },
            Frame::Skipped { bytes, reason } => {
                self.push_malformed(seq, &reason, Some(bytes));
            }
        }
        if self.pending >= self.config.batch {
            self.flush();
        }
    }

    /// Routes one decoded (owned) record — the slow/resync path. The
    /// fast path routes its borrowed fields through the same
    /// [`Engine::route_sample`]/[`Engine::route_close`], so both paths
    /// share one behaviour.
    fn ingest_record(&mut self, seq: u64, record: Record) {
        match record {
            Record::Sample { tenant, obs } => self.route_sample(seq, &tenant, obs),
            Record::Close { tenant } => self.route_close(seq, &tenant),
        }
    }

    /// Routes one sample to its tenant's session, handling drops,
    /// recoveries and reopen-after-close. `tenant` may borrow from the
    /// input line — nothing is cloned unless a session opens.
    // hot-path
    fn route_sample(&mut self, seq: u64, tenant: &str, obs: Observation) {
        let Some(i) = self.sample_session(seq, tenant) else {
            return;
        };
        let Some(session) = self.sessions.get_mut(i) else {
            return;
        };
        match session.offer(seq, obs) {
            Offered::Admitted => {}
            Offered::Recovered { burst } => {
                self.stats.recoveries += 1;
                let payload = match self.sessions.get(i) {
                    Some(s) => s.recovered_event(burst),
                    None => return,
                };
                self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload });
            }
            Offered::Dropped { terminal, burst, total: _ } => {
                if terminal {
                    self.stats.drops_terminal += 1;
                } else {
                    self.stats.drops_backpressure += 1;
                }
                // Coalesce bursts: log the first loss, then every
                // `drop_log_every`-th, so overload cannot flood
                // the log (graceful degradation). Exact totals
                // ride along in each event and in the stats.
                if burst == 1 || burst % self.config.drop_log_every == 0 {
                    let payload = match self.sessions.get(i) {
                        Some(s) => s.drop_event(terminal, burst),
                        None => return,
                    };
                    self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload });
                }
            }
        }
    }

    /// Routes one close request to its tenant's session (opening one
    /// first for an unknown tenant, so the lifecycle stays visible).
    // hot-path
    fn route_close(&mut self, seq: u64, tenant: &str) {
        if let Some(i) = self.close_session(seq, tenant) {
            if let Some(session) = self.sessions.get_mut(i) {
                session.offer_close(seq, CloseReason::Ctl);
            }
        }
    }

    /// Resolves `tenant` to its interned id without allocating.
    // hot-path
    fn tenant_id(&self, tenant: &str) -> Option<TenantId> {
        self.ids.get(tenant).copied()
    }

    /// Looks up (or opens, or reopens after churn) the session a sample
    /// for `tenant` should land in, returning its index.
    // hot-path
    fn sample_session(&mut self, seq: u64, tenant: &str) -> Option<usize> {
        enum Plan {
            Use(usize),
            Open,
            Reopen(u32),
        }
        let plan = match self.tenant_id(tenant) {
            Some(id) => match self.slots.get_mut(id.index()) {
                Some(slot) => {
                    slot.last_seen = seq;
                    if slot.closed_at_ingest {
                        Plan::Reopen(slot.generation.saturating_add(1))
                    } else {
                        Plan::Use(slot.session)
                    }
                }
                None => Plan::Open,
            },
            None => Plan::Open,
        };
        match plan {
            Plan::Use(i) => Some(i),
            Plan::Open => self.open_session(seq, tenant, 0),
            Plan::Reopen(generation) => {
                // Tenant churn: a closed tenant is speaking again. The
                // old incarnation stays in `sessions` (its final events
                // drain normally); samples route to a fresh session.
                let i = self.open_session(seq, tenant, generation)?;
                self.stats.reopened += 1;
                Some(i)
            }
        }
    }

    /// Opens incarnation `generation` of `tenant` and points the tenant
    /// slot at it, interning the name on first contact. The only
    /// per-tenant allocations in the whole routing path live here.
    // lint:allow(hot-propagate) -- session open is once per tenant incarnation; interning the key and the failure event may allocate
    fn open_session(&mut self, seq: u64, tenant: &str, generation: u32) -> Option<usize> {
        match Session::open_generation(tenant, self.config.session, generation) {
            Ok(session) => {
                let i = self.sessions.len();
                self.sessions.push(session);
                let slot =
                    TenantSlot { session: i, last_seen: seq, closed_at_ingest: false, generation };
                match self.tenant_id(tenant) {
                    Some(id) => {
                        if let Some(s) = self.slots.get_mut(id.index()) {
                            *s = slot;
                        }
                    }
                    None => {
                        let id = TenantId(self.slots.len() as u32);
                        self.slots.push(slot);
                        self.ids.insert(tenant.to_string(), id);
                    }
                }
                Some(i)
            }
            Err(e) => {
                // Unreachable when `config` validated, but a session that
                // cannot open must be visible, not a panic.
                let mut o = JsonObject::new();
                o.push_str("event", "open_failed")
                    .push_str("tenant", tenant)
                    .push_str("reason", e.to_string());
                self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload: o });
                None
            }
        }
    }

    /// Resolves the session a close for `tenant` addresses, marking the
    /// slot closed at the ingest side. A close for an unknown tenant
    /// opens a session first so the lifecycle stays visible in the log.
    // hot-path
    fn close_session(&mut self, seq: u64, tenant: &str) -> Option<usize> {
        if let Some(slot) =
            self.tenant_id(tenant).and_then(|id| self.slots.get_mut(id.index()))
        {
            slot.last_seen = seq;
            slot.closed_at_ingest = true;
            return Some(slot.session);
        }
        let i = self.open_session(seq, tenant, 0)?;
        if let Some(slot) =
            self.tenant_id(tenant).and_then(|id| self.slots.get_mut(id.index()))
        {
            slot.closed_at_ingest = true;
        }
        Some(i)
    }

    /// Records one malformed span in the log and the stats. The reason
    /// arrives as `&str` so the (hot) reject path never renders one the
    /// log won't carry.
    fn push_malformed(&mut self, seq: u64, reason: &str, bytes: Option<usize>) {
        self.stats.malformed += 1;
        let mut o = JsonObject::new();
        o.push_str("event", "malformed").push_str("reason", reason);
        if let Some(b) = bytes {
            o.push_num("bytes", b as f64);
        }
        self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload: o });
    }

    /// Dispatches every session's queued items across the persistent
    /// worker pool and appends the produced events to the log in
    /// `(seq, sub)` order, then applies the idle timeout. Sessions are
    /// sharded in place and the event buffer is recycled, so a
    /// steady-state flush performs no per-flush allocations beyond the
    /// log lines themselves.
    pub fn flush(&mut self) {
        if self.pending == 0
            && self.ingest_events.is_empty()
            && self.sessions.iter().all(|s| s.queued() == 0)
        {
            return;
        }
        self.pending = 0;
        let queued: u64 = self.sessions.iter().map(|s| s.queued() as u64).sum();
        self.stats.peak_queued = self.stats.peak_queued.max(queued);
        let mut events = std::mem::take(&mut self.events_buf);
        events.append(&mut self.ingest_events);
        let t0 = self.prof.start();
        if self.effective_workers <= 1 || self.sessions.len() <= 1 {
            // A single worker (or session) would serialise through the
            // pool anyway; keep the channel machinery out of the path.
            for s in self.sessions.iter_mut() {
                s.process_queued_into(&mut events);
            }
        } else {
            let workers = self.effective_workers;
            let pool = self.pool.get_or_insert_with(|| {
                ShardPool::new(workers, |s: &mut Session, out: &mut Vec<SessionEvent>| {
                    s.process_queued_into(out)
                })
            });
            pool.run_sharded(&mut self.sessions, &mut events);
        }
        let d = self.prof.lap(t0);
        self.prof.step_ns += d;
        // `(seq, sub)` keys are unique, so this imposes the one total
        // order regardless of the shard-completion order events arrived
        // in.
        let t1 = self.prof.start();
        events.sort_by_key(|e| (e.seq, e.sub));
        let d = self.prof.lap(t1);
        self.prof.merge_ns += d;
        let t2 = self.prof.start();
        for ev in &events {
            let line = render_event(&mut self.render, ev);
            self.log.push(line);
        }
        let d = self.prof.lap(t2);
        self.prof.write_ns += d;
        events.clear();
        self.events_buf = events;
        self.check_idle();
    }

    /// Closes sessions whose tenants have been silent for more than
    /// `idle_timeout` arrival indices. Runs at flush boundaries, which
    /// are a pure function of the input (line count vs `batch`), so the
    /// transition replays deterministically at any worker count. The
    /// synthetic close consumes a fresh arrival index and drains at the
    /// next flush.
    fn check_idle(&mut self) {
        let timeout = self.config.session.idle_timeout;
        if timeout == 0 {
            return;
        }
        // BTreeMap name order keeps the scan (and the seq each close
        // gets) deterministic; collecting `Copy` ids costs no clones.
        let stale: Vec<TenantId> = self
            .ids
            .values()
            .copied()
            .filter(|id| {
                self.slots.get(id.index()).is_some_and(|slot| {
                    !slot.closed_at_ingest
                        && self.next_seq.saturating_sub(slot.last_seen) > timeout
                        && self.sessions.get(slot.session).is_some_and(|s| {
                            matches!(
                                s.state(),
                                SessionState::Profiling | SessionState::Monitoring
                            )
                        })
                })
            })
            .collect();
        for id in stale {
            let seq = self.alloc_seq_quiet();
            if let Some(slot) = self.slots.get_mut(id.index()) {
                slot.closed_at_ingest = true;
                if let Some(session) = self.sessions.get_mut(slot.session) {
                    session.offer_close(seq, CloseReason::Idle);
                    self.stats.idle_closed += 1;
                }
            }
        }
    }

    /// Drains everything still queued (including closes the idle check
    /// enqueued at the final flush) and appends one `engine_stats` log
    /// line with the recovery counters. Call once at end of stream.
    pub fn finish(&mut self) {
        // Two flushes suffice (queued input, then idle closes); the
        // bound guards the invariant rather than trusting it.
        for _ in 0..4 {
            self.flush();
            if self.ingest_events.is_empty() && self.sessions.iter().all(|s| s.queued() == 0)
            {
                break;
            }
        }
        let seq = self.alloc_seq_quiet();
        let s = self.stats;
        let mut o = JsonObject::new();
        o.push_str("event", "engine_stats")
            .push_num("sessions", self.sessions.len() as f64)
            .push_num("malformed", s.malformed as f64)
            .push_num("resynced", s.resynced as f64)
            .push_num("drops_backpressure", s.drops_backpressure as f64)
            .push_num("drops_terminal", s.drops_terminal as f64)
            .push_num("recoveries", s.recoveries as f64)
            .push_num("idle_closed", s.idle_closed as f64)
            .push_num("reopened", s.reopened as f64)
            .push_num("peak_queued", s.peak_queued as f64);
        if self.prof.enabled {
            // Wall-clock diagnostics (MEMDOS_ENGINE_PROF=1): these make
            // the stats line — and only the stats line — vary run to run.
            let p = self.prof;
            o.push_num("prof_decode_ns", p.decode_ns as f64)
                .push_num("prof_dispatch_ns", p.dispatch_ns as f64)
                .push_num("prof_step_ns", p.step_ns as f64)
                .push_num("prof_merge_ns", p.merge_ns as f64)
                .push_num("prof_write_ns", p.write_ns as f64);
        }
        let line =
            render_event(&mut self.render, &SessionEvent { seq, sub: SUB_INGEST, payload: o });
        self.log.push(line);
    }
}

/// Serializes one event as a log line through the recycled [`LineBuf`]
/// writer, with the global arrival index prepended as `seq`. Only the
/// returned log line itself is allocated.
fn render_event(buf: &mut LineBuf, ev: &SessionEvent) -> String {
    buf.begin().field_u64("seq", ev.seq);
    for (k, v) in ev.payload.entries() {
        buf.field_value(k, v);
    }
    // lint:allow(hot-propagate) -- the emitted log line is the one permitted allocation per event; everything upstream renders into the recycled buffer
    buf.end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(workers: usize, batch: usize) -> EngineConfig {
        EngineConfig {
            workers,
            batch,
            session: SessionConfig { profile_ticks: 2_000, ..SessionConfig::default() },
            ..EngineConfig::default()
        }
    }

    /// Three tenants: two flat, one that collapses mid-stream.
    fn synthetic_lines() -> Vec<String> {
        let mut lines = Vec::new();
        for i in 0..4_000u64 {
            for tenant in ["vm-a", "vm-b", "vm-c"] {
                let attacked = tenant == "vm-b" && i >= 2_500;
                let access = if attacked { 100.0 } else { 1000.0 + (i % 10) as f64 };
                lines.push(format!(
                    r#"{{"tenant":"{tenant}","access":{access},"miss":{}}}"#,
                    100.0 + (i % 5) as f64
                ));
            }
        }
        for tenant in ["vm-a", "vm-b", "vm-c"] {
            lines.push(format!(r#"{{"tenant":"{tenant}","ctl":"close"}}"#));
        }
        lines
    }

    fn run(config: EngineConfig, lines: &[String]) -> Vec<String> {
        let mut engine = Engine::new(config).unwrap();
        for line in lines {
            engine.ingest_line(line);
        }
        engine.flush();
        engine.log_lines().to_vec()
    }

    #[test]
    fn log_is_identical_across_workers_and_batch_sizes() {
        let lines = synthetic_lines();
        let reference = run(fast_config(1, 256), &lines);
        assert!(!reference.is_empty());
        // Any worker count; any batch size up to the queue capacity
        // (1024 default, 3 tenants → up to 3072 lines per flush).
        for (workers, batch) in [(2, 256), (8, 256), (1, 7), (4, 1_024)] {
            assert_eq!(
                run(fast_config(workers, batch), &lines),
                reference,
                "workers={workers} batch={batch}"
            );
        }
    }

    #[test]
    fn oversized_batch_drops_visibly_and_stays_worker_invariant() {
        let lines = synthetic_lines();
        // A batch far beyond the queue capacity forces the drop policy;
        // the drops are logged, and the log is still identical at any
        // worker count because drops are decided at ingest time.
        let reference = run(fast_config(1, 1_000_000), &lines);
        assert!(reference.iter().any(|l| l.contains(r#""event":"dropped""#)));
        assert_eq!(run(fast_config(8, 1_000_000), &lines), reference);
    }

    #[test]
    fn log_contains_lifecycle_and_alarm() {
        let lines = synthetic_lines();
        let log = run(fast_config(4, 256), &lines);
        let count = |needle: &str| log.iter().filter(|l| l.contains(needle)).count();
        assert_eq!(count(r#""event":"opened""#), 3);
        assert_eq!(count(r#""event":"profile_ready""#), 3);
        assert_eq!(count(r#""event":"closed""#), 3);
        assert!(log
            .iter()
            .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-b""#)));
        // The non-attacked tenants never reach an alarm.
        assert!(!log
            .iter()
            .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-a""#)));
    }

    #[test]
    fn malformed_lines_are_logged_not_fatal() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        engine.ingest_line("not json at all");
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.flush();
        assert_eq!(engine.malformed(), 1);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"malformed""#)));
        assert_eq!(engine.session_count(), 1);
    }

    #[test]
    fn ingest_reader_consumes_jsonl() {
        let input = "{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}\n\n{\"tenant\":\"vm-0\",\"ctl\":\"close\"}\n";
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        let n = engine.ingest_reader(input.as_bytes()).unwrap();
        // Physical lines, blank included.
        assert_eq!(n, 3);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"closed""#)));
    }

    #[test]
    fn ingest_reader_survives_corruption_and_resyncs() {
        // A healthy record fused behind a truncated one, a line of
        // invalid UTF-8, and a clean close.
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"tenant\":\"vm-0\",\"acc{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}\n");
        input.extend_from_slice(&[0xff, 0xfe, b'\n']);
        input.extend_from_slice(b"{\"tenant\":\"vm-0\",\"ctl\":\"close\"}\n");
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        let n = engine.ingest_reader(&input[..]).unwrap();
        assert_eq!(n, 3);
        let stats = engine.stats();
        assert_eq!(stats.resynced, 1, "fused record recovered");
        assert!(stats.malformed >= 2, "corrupted spans logged");
        assert_eq!(engine.session_count(), 1);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"closed""#)));
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"malformed""#) && l.contains("UTF-8")));
    }

    #[test]
    fn ingest_line_resyncs_fused_records() {
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        // Two valid records fused onto one line around a corrupted span.
        engine.ingest_line(
            "{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}garbage{\"tenant\":\"vm-1\",\"access\":3,\"miss\":4}",
        );
        engine.flush();
        assert_eq!(engine.session_count(), 2);
        assert_eq!(engine.stats().resynced, 2);
        assert_eq!(engine.malformed(), 1);
    }

    #[test]
    fn idle_timeout_closes_silent_tenants() {
        let mut config = fast_config(1, 8);
        config.session.idle_timeout = 16;
        let mut engine = Engine::new(config).unwrap();
        // vm-idle speaks once, then vm-busy floods past the timeout.
        engine.ingest_line(r#"{"tenant":"vm-idle","access":1,"miss":2}"#);
        for _ in 0..64 {
            engine.ingest_line(r#"{"tenant":"vm-busy","access":1,"miss":2}"#);
        }
        engine.finish();
        let idle_closed = engine
            .log_lines()
            .iter()
            .any(|l| {
                l.contains(r#""event":"closed""#)
                    && l.contains(r#""tenant":"vm-idle""#)
                    && l.contains(r#""reason":"idle""#)
            });
        assert!(idle_closed, "idle tenant must close with reason idle");
        assert_eq!(engine.stats().idle_closed, 1);
        // The busy tenant is still open.
        assert!(!engine.log_lines().iter().any(|l| {
            l.contains(r#""event":"closed""#) && l.contains(r#""tenant":"vm-busy""#)
        }));
    }

    #[test]
    fn closed_tenant_reopens_as_new_generation() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.ingest_line(r#"{"tenant":"vm-0","ctl":"close"}"#);
        engine.ingest_line(r#"{"tenant":"vm-0","access":3,"miss":4}"#);
        engine.finish();
        assert_eq!(engine.session_count(), 2, "churned tenant gets a fresh session");
        assert_eq!(engine.stats().reopened, 1);
        let opened_gens: Vec<&String> = engine
            .log_lines()
            .iter()
            .filter(|l| l.contains(r#""event":"opened""#))
            .collect();
        assert_eq!(opened_gens.len(), 2);
        assert!(opened_gens[0].contains(r#""gen":0"#));
        assert!(opened_gens[1].contains(r#""gen":1"#));
    }

    #[test]
    fn drop_bursts_are_coalesced_and_recovery_logged() {
        let mut config = fast_config(1, 1_000_000);
        config.session.queue_capacity = 4;
        config.session.drop_policy = crate::session::DropPolicy::Newest;
        config.drop_log_every = 8;
        let mut engine = Engine::new(config).unwrap();
        // 4 admitted + 20 dropped in one burst.
        for i in 0..24 {
            engine.ingest_line(&format!(r#"{{"tenant":"vm-0","access":{i},"miss":2}}"#));
        }
        engine.flush();
        // Queue drained: the next sample is a recovery.
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.finish();
        let drops = engine
            .log_lines()
            .iter()
            .filter(|l| l.contains(r#""event":"dropped""#))
            .count();
        // burst 1, 8, 16 logged; 2..=7, 9..=15, 17..=20 coalesced.
        assert_eq!(drops, 3);
        assert_eq!(engine.stats().drops_backpressure, 20);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"recovered""#) && l.contains(r#""burst":20"#)));
        assert_eq!(engine.stats().recoveries, 1);
    }

    #[test]
    fn finish_appends_engine_stats_line() {
        let mut engine = Engine::new(fast_config(2, 8)).unwrap();
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.ingest_line("garbage");
        engine.finish();
        let stats_line = engine
            .log_lines()
            .last()
            .expect("log non-empty");
        assert!(stats_line.contains(r#""event":"engine_stats""#));
        assert!(stats_line.contains(r#""malformed":1"#));
        assert!(stats_line.contains(r#""sessions":1"#));
        let obj = JsonObject::parse(stats_line).expect("stats line parses");
        assert!(obj.get_f64("peak_queued").is_some());
    }

    #[test]
    fn log_lines_are_valid_jsonl_with_seq() {
        let lines = synthetic_lines();
        let log = run(fast_config(2, 128), &lines);
        let mut last = None;
        for line in &log {
            let obj = JsonObject::parse(line).expect("log line parses");
            let seq = obj.get_f64("seq").expect("seq present");
            assert!(obj.get_str("event").is_some());
            if let Some(prev) = last {
                assert!(seq >= prev, "log sorted by seq");
            }
            last = Some(seq);
        }
    }

    #[test]
    fn fast_parse_off_produces_identical_log() {
        // The zero-allocation path must be unobservable in the output:
        // clean lines, dirty lines, fused records, closes and reopens.
        let mut lines = synthetic_lines();
        lines.insert(100, "not json at all".to_string());
        lines.insert(
            200,
            "{\"tenant\":\"vm-a\",\"acc{\"tenant\":\"vm-a\",\"access\":1,\"miss\":2}".to_string(),
        );
        lines.insert(300, "{\"tenant\":\"vm\\u002da\",\"access\":7,\"miss\":3}".to_string());
        lines.insert(400, r#"{"tenant":"vm-c","ctl":"close"}"#.to_string());
        for workers in [1usize, 4] {
            let fast = run(fast_config(workers, 256), &lines);
            let slow = run(
                EngineConfig { fast_parse: false, ..fast_config(workers, 256) },
                &lines,
            );
            assert_eq!(fast, slow, "workers={workers}");
        }
    }

    #[test]
    fn profiler_fields_appear_only_when_enabled() {
        let run_stats_line = |prof: bool| {
            let mut engine =
                Engine::new(EngineConfig { prof, ..fast_config(1, 8) }).unwrap();
            engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
            engine.finish();
            engine.log_lines().last().cloned().expect("stats line")
        };
        let plain = run_stats_line(false);
        assert!(!plain.contains("prof_decode_ns"));
        let profiled = run_stats_line(true);
        for key in
            ["prof_decode_ns", "prof_dispatch_ns", "prof_step_ns", "prof_merge_ns", "prof_write_ns"]
        {
            assert!(profiled.contains(key), "missing {key} in {profiled}");
        }
        let obj = JsonObject::parse(&profiled).expect("stats line parses");
        assert!(obj.get_f64("prof_decode_ns").is_some());
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(Engine::new(EngineConfig { workers: 0, ..EngineConfig::default() }).is_err());
        assert!(Engine::new(EngineConfig { batch: 0, ..EngineConfig::default() }).is_err());
        assert!(
            Engine::new(EngineConfig { drop_log_every: 0, ..EngineConfig::default() }).is_err()
        );
    }
}
