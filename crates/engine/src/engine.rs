//! The multi-tenant engine: session registry, batched dispatch, and the
//! deterministic event log.
//!
//! Ingestion is single-threaded: each input line receives a global
//! arrival index (`seq`) and is routed to its tenant's [`Session`] queue.
//! Every `batch` lines the engine **flushes**: sessions are moved onto
//! the [`memdos_runner::parallel_map_owned`] worker pool (one shard per
//! tenant — per-tenant order preserved, tenants processed in parallel),
//! each drains its queue sequentially, and the produced events are
//! merge-sorted by `(seq, sub)` into the log.
//!
//! ## Determinism guarantee
//!
//! Replaying the same input produces a **byte-identical** event log at
//! any worker count:
//!
//! * `seq` is assigned at single-threaded ingest, never by a worker;
//! * a session's events depend only on the sample sequence it received
//!   (queues drain fully at each flush, so flush boundaries do not change
//!   what any session observes, only when it observes it);
//! * backpressure drops are decided at ingest time, before any worker
//!   runs;
//! * `(seq, sub)` keys are unique across all events, so the merge-sort
//!   has exactly one order.
//!
//! The log is also identical across **batch sizes** as long as no
//! session queue overflows (i.e. `batch <= queue_capacity`, or the input
//! spreads across tenants): flushing is the only thing that drains
//! queues, so a larger batch holds samples longer and can trip the drop
//! policy earlier — backpressure is timing, and timing is what `batch`
//! configures. `tests/engine_replay_determinism.rs` (tier-1) pins the
//! worker-count guarantee on the demo stream.

use crate::protocol::Record;
use crate::session::{Session, SessionConfig, SessionEvent};
use memdos_core::CoreError;
use memdos_metrics::jsonl::{JsonObject, JsonValue};
use memdos_runner::parallel_map_owned;
use std::collections::BTreeMap;
use std::io::BufRead;

/// Sub-index that sorts an ingest-side event (malformed line, dropped
/// sample) after any session-side events of the same arrival index.
const SUB_INGEST: u32 = u32::MAX;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for session dispatch (>= 1). The log is identical
    /// at any value; this only sets the parallelism.
    pub workers: usize,
    /// Input lines between flushes (>= 1). Keep at or below the session
    /// queue capacity to rule out backpressure drops from batching alone
    /// (see the module docs on determinism).
    pub batch: usize,
    /// Configuration applied to every session the engine opens.
    pub session: SessionConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 1, batch: 256, session: SessionConfig::default() }
    }
}

impl EngineConfig {
    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidParameter {
                name: "workers",
                reason: "must be positive",
            });
        }
        if self.batch == 0 {
            return Err(CoreError::InvalidParameter {
                name: "batch",
                reason: "must be positive",
            });
        }
        self.session.validate()
    }

    /// Builds a configuration from the `MEMDOS_ENGINE_*` environment
    /// variables (see the README), with `MEMDOS_THREADS` supplying the
    /// worker count. Unset variables take their defaults; set-but-invalid
    /// ones are an error — the engine is a long-running service, so a
    /// typo must fail loudly at startup rather than be silently ignored.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid
    /// variable.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = EngineConfig {
            workers: memdos_runner::threads(),
            ..EngineConfig::default()
        };
        cfg.batch = env_usize("MEMDOS_ENGINE_BATCH", cfg.batch)?;
        cfg.session.profile_ticks =
            env_u64("MEMDOS_ENGINE_PROFILE_TICKS", cfg.session.profile_ticks)?;
        cfg.session.queue_capacity =
            env_usize("MEMDOS_ENGINE_QUEUE", cfg.session.queue_capacity)?;
        cfg.session.quarantine_after =
            env_u64("MEMDOS_ENGINE_QUARANTINE", cfg.session.quarantine_after)?;
        if let Ok(v) = std::env::var("MEMDOS_ENGINE_DROP") {
            cfg.session.drop_policy = crate::session::DropPolicy::parse(&v)
                .map_err(|e| format!("MEMDOS_ENGINE_DROP: {e}"))?;
        }
        if let Ok(v) = std::env::var("MEMDOS_ENGINE_KSTEST") {
            cfg.session.kstest = match v.trim() {
                "1" | "true" | "on" => {
                    Some(memdos_core::config::KsTestParams::default())
                }
                "0" | "false" | "off" => None,
                other => {
                    return Err(format!(
                        "MEMDOS_ENGINE_KSTEST={other:?} is not a boolean \
                         (use 1/0, true/false or on/off)"
                    ))
                }
            };
        }
        cfg.validate().map_err(|e| e.to_string())?;
        Ok(cfg)
    }
}

fn env_u64(name: &str, default: u64) -> Result<u64, String> {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("{name}={v:?} is not a non-negative integer")),
        Err(_) => Ok(default),
    }
}

fn env_usize(name: &str, default: usize) -> Result<usize, String> {
    env_u64(name, default as u64).map(|n| n as usize)
}

/// The multi-tenant streaming detection engine.
pub struct Engine {
    config: EngineConfig,
    /// Sessions in creation order; `parallel_map_owned` preserves this
    /// order across flushes, so `index` entries stay valid.
    sessions: Vec<Session>,
    index: BTreeMap<String, usize>,
    /// Events produced at ingest time (malformed lines, drops), merged
    /// with session events at the next flush.
    ingest_events: Vec<SessionEvent>,
    next_seq: u64,
    pending: usize,
    log: Vec<String>,
    malformed: u64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("sessions", &self.sessions.len())
            .field("next_seq", &self.next_seq)
            .field("log_lines", &self.log.len())
            .field("malformed", &self.malformed)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with no sessions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid `config`.
    pub fn new(config: EngineConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Engine {
            config,
            sessions: Vec::new(),
            index: BTreeMap::new(),
            ingest_events: Vec::new(),
            next_seq: 0,
            pending: 0,
            log: Vec::new(),
            malformed: 0,
        })
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of sessions ever opened.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Input lines that failed to parse so far.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Read-only view of the sessions, in creation order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The event log emitted so far, one JSONL line per entry. Call
    /// [`Engine::flush`] first to include everything ingested.
    pub fn log_lines(&self) -> &[String] {
        &self.log
    }

    /// Ingests one input line, flushing when the batch fills.
    pub fn ingest_line(&mut self, line: &str) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        match Record::parse(line) {
            Ok(Record::Sample { tenant, obs }) => {
                let idx = self.session_index(seq, &tenant);
                if let Some(&i) = idx.as_ref() {
                    if let Some(session) = self.sessions.get_mut(i) {
                        if session.offer(seq, obs) {
                            let payload = session.drop_event();
                            self.ingest_events.push(SessionEvent {
                                seq,
                                sub: SUB_INGEST,
                                payload,
                            });
                        }
                    }
                }
            }
            Ok(Record::Close { tenant }) => {
                let idx = self.session_index(seq, &tenant);
                if let Some(&i) = idx.as_ref() {
                    if let Some(session) = self.sessions.get_mut(i) {
                        session.offer_close(seq);
                    }
                }
            }
            Err(reason) => {
                self.malformed += 1;
                let mut o = JsonObject::new();
                o.push_str("event", "malformed").push_str("reason", reason);
                self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload: o });
            }
        }
        if self.pending >= self.config.batch {
            self.flush();
        }
    }

    /// Ingests every line of `reader` (draining the engine at EOF) and
    /// returns the number of lines consumed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader; lines ingested before the
    /// error remain processed.
    pub fn ingest_reader<R: BufRead>(&mut self, reader: R) -> std::io::Result<u64> {
        let mut n = 0;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            self.ingest_line(&line);
            n += 1;
        }
        self.flush();
        Ok(n)
    }

    /// Looks up (or opens) the session for `tenant`, returning its index.
    fn session_index(&mut self, seq: u64, tenant: &str) -> Option<usize> {
        if let Some(&i) = self.index.get(tenant) {
            return Some(i);
        }
        match Session::open(tenant, self.config.session) {
            Ok(session) => {
                let i = self.sessions.len();
                self.sessions.push(session);
                self.index.insert(tenant.to_string(), i);
                Some(i)
            }
            Err(e) => {
                // Unreachable when `config` validated, but a session that
                // cannot open must be visible, not a panic.
                let mut o = JsonObject::new();
                o.push_str("event", "open_failed")
                    .push_str("tenant", tenant)
                    .push_str("reason", e.to_string());
                self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload: o });
                None
            }
        }
    }

    /// Dispatches every session's queued items across the worker pool and
    /// appends the produced events to the log in `(seq, sub)` order.
    pub fn flush(&mut self) {
        if self.pending == 0 && self.ingest_events.is_empty() {
            return;
        }
        self.pending = 0;
        let sessions = std::mem::take(&mut self.sessions);
        let processed = parallel_map_owned(sessions, self.config.workers, |mut s: Session| {
            let events = s.process_queued();
            (s, events)
        });
        let mut events = std::mem::take(&mut self.ingest_events);
        for (session, session_events) in processed {
            events.extend(session_events);
            self.sessions.push(session);
        }
        events.sort_by_key(|e| (e.seq, e.sub));
        for ev in &events {
            self.log.push(render_event(ev));
        }
    }
}

/// Serializes one event as a log line, with the global arrival index
/// prepended as `seq`.
fn render_event(ev: &SessionEvent) -> String {
    let mut o = JsonObject::new();
    o.push_num("seq", ev.seq as f64);
    for (k, v) in ev.payload.entries() {
        match v {
            JsonValue::Str(s) => o.push_str(k, s.clone()),
            JsonValue::Num(n) => o.push_num(k, *n),
            JsonValue::Bool(b) => o.push_bool(k, *b),
        };
    }
    o.to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(workers: usize, batch: usize) -> EngineConfig {
        EngineConfig {
            workers,
            batch,
            session: SessionConfig { profile_ticks: 2_000, ..SessionConfig::default() },
        }
    }

    /// Three tenants: two flat, one that collapses mid-stream.
    fn synthetic_lines() -> Vec<String> {
        let mut lines = Vec::new();
        for i in 0..4_000u64 {
            for tenant in ["vm-a", "vm-b", "vm-c"] {
                let attacked = tenant == "vm-b" && i >= 2_500;
                let access = if attacked { 100.0 } else { 1000.0 + (i % 10) as f64 };
                lines.push(format!(
                    r#"{{"tenant":"{tenant}","access":{access},"miss":{}}}"#,
                    100.0 + (i % 5) as f64
                ));
            }
        }
        for tenant in ["vm-a", "vm-b", "vm-c"] {
            lines.push(format!(r#"{{"tenant":"{tenant}","ctl":"close"}}"#));
        }
        lines
    }

    fn run(config: EngineConfig, lines: &[String]) -> Vec<String> {
        let mut engine = Engine::new(config).unwrap();
        for line in lines {
            engine.ingest_line(line);
        }
        engine.flush();
        engine.log_lines().to_vec()
    }

    #[test]
    fn log_is_identical_across_workers_and_batch_sizes() {
        let lines = synthetic_lines();
        let reference = run(fast_config(1, 256), &lines);
        assert!(!reference.is_empty());
        // Any worker count; any batch size up to the queue capacity
        // (1024 default, 3 tenants → up to 3072 lines per flush).
        for (workers, batch) in [(2, 256), (8, 256), (1, 7), (4, 1_024)] {
            assert_eq!(
                run(fast_config(workers, batch), &lines),
                reference,
                "workers={workers} batch={batch}"
            );
        }
    }

    #[test]
    fn oversized_batch_drops_visibly_and_stays_worker_invariant() {
        let lines = synthetic_lines();
        // A batch far beyond the queue capacity forces the drop policy;
        // the drops are logged, and the log is still identical at any
        // worker count because drops are decided at ingest time.
        let reference = run(fast_config(1, 1_000_000), &lines);
        assert!(reference.iter().any(|l| l.contains(r#""event":"dropped""#)));
        assert_eq!(run(fast_config(8, 1_000_000), &lines), reference);
    }

    #[test]
    fn log_contains_lifecycle_and_alarm() {
        let lines = synthetic_lines();
        let log = run(fast_config(4, 256), &lines);
        let count = |needle: &str| log.iter().filter(|l| l.contains(needle)).count();
        assert_eq!(count(r#""event":"opened""#), 3);
        assert_eq!(count(r#""event":"profile_ready""#), 3);
        assert_eq!(count(r#""event":"closed""#), 3);
        assert!(log
            .iter()
            .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-b""#)));
        // The non-attacked tenants never reach an alarm.
        assert!(!log
            .iter()
            .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-a""#)));
    }

    #[test]
    fn malformed_lines_are_logged_not_fatal() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        engine.ingest_line("not json at all");
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.flush();
        assert_eq!(engine.malformed(), 1);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"malformed""#)));
        assert_eq!(engine.session_count(), 1);
    }

    #[test]
    fn ingest_reader_consumes_jsonl() {
        let input = "{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}\n\n{\"tenant\":\"vm-0\",\"ctl\":\"close\"}\n";
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        let n = engine.ingest_reader(input.as_bytes()).unwrap();
        assert_eq!(n, 2);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"closed""#)));
    }

    #[test]
    fn log_lines_are_valid_jsonl_with_seq() {
        let lines = synthetic_lines();
        let log = run(fast_config(2, 128), &lines);
        let mut last = None;
        for line in &log {
            let obj = JsonObject::parse(line).expect("log line parses");
            let seq = obj.get_f64("seq").expect("seq present");
            assert!(obj.get_str("event").is_some());
            if let Some(prev) = last {
                assert!(seq >= prev, "log sorted by seq");
            }
            last = Some(seq);
        }
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(Engine::new(EngineConfig { workers: 0, ..EngineConfig::default() }).is_err());
        assert!(Engine::new(EngineConfig { batch: 0, ..EngineConfig::default() }).is_err());
    }
}
