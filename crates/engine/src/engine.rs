//! The multi-tenant engine: slab-backed session registry, batched
//! dispatch, and the deterministic event log.
//!
//! Ingestion is single-threaded: each input line receives a global
//! arrival index (`seq`) and is routed to its tenant's [`Session`]
//! queue. Every `batch` lines the engine **flushes**: the sessions that
//! queued work (tracked in a duplicate-free dirty list — a fleet host
//! holds tens of thousands of sessions and must never scan them all per
//! flush) are sharded across the persistent [`memdos_runner::ShardPool`]
//! workers, each drains its queue sequentially into a per-shard run, and
//! the runs are merged into the log in `(seq, sub)` order.
//!
//! ## Session storage at fleet scale
//!
//! Sessions live in an owner-checked slab (`engine::slab`) addressed by
//! dense `u32` slots; the tenant table maps the interned [`TenantId`] to
//! the slab slot, so the hot routing path performs one `BTreeMap` name
//! lookup and two vector index hops — no per-session boxing, no hashing.
//! Closed incarnations are reclaimed at the flush that drains their
//! final events (their slot returns to a LIFO free list; final counters
//! are retained for [`Engine::snapshots`]), so steady-state churn reuses
//! memory instead of growing forever.
//!
//! `Config::max_sessions` sets an explicit ceiling on concurrently open
//! sessions. At the ceiling, opening a new session **evicts** the
//! least-recently-seen open session first: the victim is closed with
//! reason `evicted` (an ordinary close — the verdict history already in
//! the log and the final accounting are preserved) and its memory is
//! reclaimed at the next flush; if the evicted tenant speaks again it
//! reopens as a new generation, reusing the close/reopen machinery.
//! Recency is tracked in a lazy min-heap keyed by `(last_seen, tenant)`:
//! entries are refreshed on pop rather than on every sample, so the hot
//! path pays nothing and eviction costs `O(log n)` amortised. The same
//! heap drives the idle scan, which therefore no longer walks every
//! tenant per flush. Quarantined sessions are exempt from the idle
//! timeout (their verdict must stay visible) but remain evictable under
//! ceiling pressure, and terminal sessions that stay resident are shrunk
//! to a husk (detectors and buffers dropped, identity and counters
//! kept).
//!
//! ## Hierarchical merge
//!
//! Workers sort their own runs by `(seq, sub)` before handing them back
//! (the pool's finish hook), so the engine performs a K-way heap merge
//! over ~`workers + 1` sorted runs (session runs plus the ingest-event
//! run, which is sorted by construction) and renders straight into the
//! log. The old single `sort` over the concatenated events cost
//! `O(E log E)` on one thread; the merge moves the `log`-factor work
//! onto the workers and keeps the single-threaded part at
//! `O(E log K)`, which is what lets verdict merging scale past a
//! handful of shards.
//!
//! ## Ingest fast path
//!
//! Clean lines decode through the borrowed
//! [`parse_record_borrowed`](jsonl::parse_record_borrowed) parser —
//! tenant names stay `&str` slices of the input line and route through
//! the intern table ([`TenantId`]) without touching the heap. Lines the
//! fast path cannot represent (escape sequences in protocol strings)
//! fall back to the allocating [`JsonObject`] parser; lines it rejects
//! go through [`jsonl::resync_line`] recovery, exactly as the slow path
//! always did. `Config::fast_parse` turns the fast path off so
//! equivalence tests can pin that both routes produce byte-identical
//! logs.
//!
//! ## Determinism guarantee
//!
//! Replaying the same input produces a **byte-identical** event log at
//! any worker count:
//!
//! * `seq` is assigned at single-threaded ingest, never by a worker;
//! * a session's events depend only on the sample sequence it received
//!   (queues drain fully at each flush, so flush boundaries do not change
//!   what any session observes, only when it observes it);
//! * backpressure drops, idle closes and evictions are decided at
//!   ingest/flush boundaries, before any worker runs;
//! * `(seq, sub)` keys are unique across all events, so the K-way merge
//!   has exactly one order regardless of how sessions were sharded.
//!
//! The log is also identical across **batch sizes** as long as no
//! session queue overflows (i.e. `batch <= queue_capacity`, or the input
//! spreads across tenants): flushing is the only thing that drains
//! queues, so a larger batch holds samples longer and can trip the drop
//! policy earlier — backpressure is timing, and timing is what `batch`
//! configures. `tests/engine_replay_determinism.rs` (tier-1) pins the
//! worker-count guarantee on the demo stream and
//! `tests/engine_fleet_determinism.rs` pins it across evictions at fleet
//! scale.

pub use crate::config::Config;
use crate::mitigation::{CaseStep, Coordinator, MitigationAction};
use crate::protocol::Record;
use crate::session::{
    CloseReason, Offered, Session, SessionEvent, SessionSnapshot, SessionState,
};
use crate::slab::Slab;
use memdos_core::detector::Observation;
use memdos_core::CoreError;
use memdos_metrics::binary::{self, BinDecoder, BinFrame};
use memdos_metrics::jsonl::{self, JsonObject, LineBuf, RawKind, RawParse, Segment};
use memdos_runner::ShardPool;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::io::BufRead;

/// Sub-index that sorts an ingest-side event (malformed line, dropped
/// sample) after any session-side events of the same arrival index.
const SUB_INGEST: u32 = u32::MAX;

/// Engine-level recovery and degradation counters, surfaced in the
/// `engine_stats` log line written by [`Engine::finish`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Input spans that failed to decode into a record.
    pub malformed: u64,
    /// Records recovered by resynchronisation from dirty lines.
    pub resynced: u64,
    /// Samples lost to queue backpressure.
    pub drops_backpressure: u64,
    /// Samples lost to a quarantined or closed session.
    pub drops_terminal: u64,
    /// Drop bursts that ended with the queue admitting samples again.
    pub recoveries: u64,
    /// Sessions closed by the idle timeout.
    pub idle_closed: u64,
    /// Sessions evicted by the memory ceiling (`Config::max_sessions`).
    pub evicted: u64,
    /// Sessions reopened after a close (tenant churn).
    pub reopened: u64,
    /// High-water mark of total queued items observed at a flush.
    pub peak_queued: u64,
    /// Mitigation cases opened (one per engaged control).
    pub mitigations_engaged: u64,
    /// Cases that ended in a false-quarantine release.
    pub mitigations_released: u64,
    /// Cases that ended escalated (confirmed attack, or the ladder
    /// topped out at eviction).
    pub mitigations_escalated: u64,
    /// Active cases aborted because the session closed underneath them.
    pub mitigations_aborted: u64,
    /// Quarantine notices that arrived for an already-closing session.
    pub mitigation_skipped: u64,
    /// Total seq-ticks from an engaged control to the victim recovery
    /// that confirmed it, summed over escalated cases.
    pub recovery_latency_ticks: u64,
    /// Total seq-ticks innocents spent under a control they did not
    /// deserve, summed over released cases.
    pub false_quarantine_ticks: u64,
}

/// Per-stage wall-clock counters for the ingest path, collected only
/// when `MEMDOS_ENGINE_PROF=1` (`Config::prof`). Disabled, the probes
/// cost two predictable branches per line and never read a clock, so
/// the counters cannot perturb what they measure. The clock is
/// [`memdos_runner::monotonic_ns`] — wall time is harness territory,
/// and these numbers only ever surface as diagnostics in the final
/// `engine_stats` line, never in an event the determinism contract
/// covers.
#[derive(Debug, Default, Clone, Copy)]
struct StageProf {
    enabled: bool,
    /// Line → record decoding (fast parse, fallback and resync).
    decode_ns: u64,
    /// Binary-stream decoding (frame scan, checksum, resync) when the
    /// reader negotiated the binary wire format.
    decode_bin_ns: u64,
    /// Record → session routing (intern lookup, offer, drop policy).
    dispatch_ns: u64,
    /// Session queue draining (detector stepping) across the pool.
    step_ns: u64,
    /// Imposing the `(seq, sub)` order on the flush's events: the sort
    /// on the inline path, the fused K-way merge + render on the pooled
    /// path.
    merge_ns: u64,
    /// Event rendering and log append (inline path; the pooled path
    /// bills its fused merge+render loop to `merge_ns`).
    write_ns: u64,
}

impl StageProf {
    fn new(enabled: bool) -> Self {
        StageProf { enabled, ..StageProf::default() }
    }

    /// Stamp the start of a stage (0 when disabled).
    fn start(&self) -> u64 {
        if self.enabled {
            memdos_runner::monotonic_ns()
        } else {
            0
        }
    }

    /// Elapsed ns since a [`StageProf::start`] stamp (0 when disabled).
    fn lap(&self, t0: u64) -> u64 {
        if self.enabled {
            memdos_runner::monotonic_ns().saturating_sub(t0)
        } else {
            0
        }
    }
}

/// Interned tenant identity: a dense index into the engine's tenant
/// slot table. Routing a record costs one name lookup to obtain the id;
/// everything after (slot access, session lookup, reopen and idle
/// bookkeeping) keys on this `Copy` value, never on the `String`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// The dense table index this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary-protocol tenant directory for one ingest stream: wire id →
/// tenant name, as bound by [`BinFrame::Define`] frames. `cached`
/// memoises the engine's interned [`TenantId`] — ids are stable for the
/// engine's lifetime, so once warm a sample routes with two vector hops
/// and no `BTreeMap` name lookup at all.
#[derive(Debug, Default)]
struct WireTable {
    slots: Vec<Option<WireEntry>>,
}

#[derive(Debug)]
struct WireEntry {
    name: String,
    cached: Option<TenantId>,
}

/// Carry state for the chunked JSONL line splitter: the partial line
/// spanning reads, discard mode for an oversized line, and the
/// physical-line count [`Engine::ingest_reader`] reports.
#[derive(Debug, Default)]
struct LineCarry {
    buf: Vec<u8>,
    discarding: Option<u64>,
    lines: u64,
}

/// Final accounting of a reclaimed incarnation, retained per tenant so
/// [`Engine::snapshots`] can serve closed tenants after their session
/// memory was returned to the slab.
#[derive(Debug, Clone, Copy)]
struct RetiredSession {
    generation: u32,
    ingested: u64,
    dropped: u64,
    alarms: u64,
}

/// Per-tenant routing state kept at the ingest side, so reopen, idle
/// and eviction decisions never depend on flush timing (which would
/// break the worker-count determinism guarantee).
#[derive(Debug)]
struct TenantSlot {
    /// Slab slot of the current incarnation; `None` once it was closed,
    /// drained and reclaimed.
    session: Option<u32>,
    /// Arrival index of the tenant's most recent record.
    last_seen: u64,
    /// The engine has routed a close (ctl, idle or evicted) to this
    /// incarnation.
    closed_at_ingest: bool,
    /// Incarnation counter (0 = first session).
    generation: u32,
    /// Final counters of the last reclaimed incarnation.
    retired: Option<RetiredSession>,
    /// The current incarnation sits in the terminal-eviction FIFO
    /// (dedup flag; see [`Engine::evict_lru`]).
    terminal_queued: bool,
}

/// The multi-tenant streaming detection engine.
pub struct Engine {
    config: Config,
    /// Owner-checked session storage; slots are recycled across tenant
    /// churn. See the module docs on fleet-scale storage.
    slab: Slab<Session>,
    /// Tenant-name intern table: name → dense [`TenantId`]. Consulted
    /// once per record; every later step keys on the `Copy` id.
    ids: BTreeMap<String, TenantId>,
    /// Routing state per interned tenant, indexed by [`TenantId`].
    slots: Vec<TenantSlot>,
    /// Slab slots that queued work since the last flush, in first-queue
    /// order (duplicate-free via the slab's dirty flag). The flush
    /// working set — never the whole slab.
    dirty: Vec<u32>,
    /// Lazy recency heap over open sessions, keyed by
    /// `(last_seen, TenantId)`: stale entries are dropped or re-pushed
    /// at pop time. Shared by the idle scan and the ceiling eviction.
    lru: BinaryHeap<Reverse<(u64, u32)>>,
    /// Open (not closed-at-ingest) resident sessions — what the memory
    /// ceiling bounds.
    open_count: usize,
    /// Incarnations ever opened (reopens count once per incarnation).
    sessions_opened: u64,
    /// Events produced at ingest time (malformed lines, drops), merged
    /// with session events at the next flush. Sorted by construction:
    /// `seq` increases monotonically at ingest and `sub` is constant.
    ingest_events: Vec<SessionEvent>,
    /// Persistent dispatch pool, spawned lazily at the first flush that
    /// can use more than one worker. Its finish hook sorts each shard's
    /// run so [`Engine::merge_runs`] can K-way merge.
    pool: Option<ShardPool<Session, SessionEvent>>,
    /// `config.workers` clamped to the machine's available parallelism:
    /// oversubscribing a CPU-bound pool adds channel latency without
    /// adding concurrency (on a 1-core host a requested 4-worker pool
    /// ran ~40 % *slower* than inline). The log is byte-identical at
    /// any width, so the clamp is unobservable in output.
    effective_workers: usize,
    /// Recycled flush-event buffer for the inline path.
    events_buf: Vec<SessionEvent>,
    /// Recycled working set of sessions lent out of the slab for a
    /// flush, with their `(slab slot, owner)` keys alongside.
    scratch: Vec<Session>,
    scratch_meta: Vec<(u32, u32)>,
    /// Recycled per-shard run buffers for the pooled path.
    runs: Vec<Vec<SessionEvent>>,
    /// Recycled K-way merge state: `(seq, sub, run)` min-heap and
    /// per-run cursors.
    merge_heap: BinaryHeap<Reverse<(u64, u32, usize)>>,
    merge_pos: Vec<usize>,
    /// Recycled log-line writer.
    render: LineBuf,
    prof: StageProf,
    /// The mitigation response loop: per-tenant cases, rung memory and
    /// the pending control actions for the enclosing driver.
    mitigation: Coordinator,
    /// Quarantine notices collected at put-back time, consumed by the
    /// mitigation step at the end of the same flush:
    /// `(tenant id, notice seq, tenant name)`.
    notices: Vec<(u32, u64, String)>,
    /// Active cases aborted this flush because their session closed:
    /// `(tenant id, tenant name)`, for the `mitigation_released` event.
    aborted_cases: Vec<(u32, String)>,
    /// Terminal-but-resident sessions (quarantined verdicts,
    /// worker-closed husks), in the order they turned terminal. The
    /// ceiling eviction drains this before touching the recency heap:
    /// their detection work is done, so they go first instead of
    /// pinning slots while live tenants get evicted around them.
    terminal_fifo: VecDeque<(u32, u32)>,
    next_seq: u64,
    pending: usize,
    log: Vec<String>,
    stats: EngineStats,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("sessions_opened", &self.sessions_opened)
            .field("open_sessions", &self.open_count)
            .field("resident_sessions", &self.slab.len())
            .field("next_seq", &self.next_seq)
            .field("log_lines", &self.log.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with no sessions. This is the only constructor:
    /// every knob arrives through [`Config`] (resolve the environment
    /// once with [`Config::from_env`] if that is where the knobs live).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid `config`.
    pub fn new(config: Config) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Engine {
            config,
            slab: Slab::new(),
            ids: BTreeMap::new(),
            slots: Vec::new(),
            dirty: Vec::new(),
            lru: BinaryHeap::new(),
            open_count: 0,
            sessions_opened: 0,
            ingest_events: Vec::new(),
            pool: None,
            effective_workers: config.workers.min(memdos_runner::cores()),
            events_buf: Vec::new(),
            scratch: Vec::new(),
            scratch_meta: Vec::new(),
            runs: Vec::new(),
            merge_heap: BinaryHeap::new(),
            merge_pos: Vec::new(),
            render: LineBuf::new(),
            prof: StageProf::new(config.prof),
            mitigation: Coordinator::new(config.mitigation),
            notices: Vec::new(),
            aborted_cases: Vec::new(),
            terminal_fifo: VecDeque::new(),
            next_seq: 0,
            pending: 0,
            log: Vec::new(),
            stats: EngineStats::default(),
        })
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of sessions ever opened (reopened tenants count once per
    /// incarnation).
    pub fn session_count(&self) -> usize {
        self.sessions_opened as usize
    }

    /// Open (not closing) resident sessions right now — the number the
    /// `Config::max_sessions` ceiling bounds.
    pub fn open_sessions(&self) -> usize {
        self.open_count
    }

    /// Input spans that failed to decode so far.
    pub fn malformed(&self) -> u64 {
        self.stats.malformed
    }

    /// Recovery/degradation counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Read-only snapshots of every tenant ever seen, in tenant-name
    /// order: live sessions report their current lifecycle state and
    /// working set; reclaimed tenants report the retained final
    /// accounting with `live: false`. This is the stable introspection
    /// surface (see DESIGN.md) — the fleet bench and the CLI summary
    /// consume it instead of session internals.
    pub fn snapshots(&self) -> impl Iterator<Item = SessionSnapshot<'_>> {
        self.ids.iter().filter_map(move |(name, id)| {
            let slot = self.slots.get(id.index())?;
            if let Some(s) = slot.session.and_then(|idx| self.slab.get(idx, id.0)) {
                let mut snap = s.snapshot();
                snap.mitigation = self.mitigation.case_status(id.0);
                return Some(snap);
            }
            let r = slot.retired?;
            Some(SessionSnapshot {
                tenant: name,
                generation: r.generation,
                state: SessionState::Closed,
                live: false,
                queued: 0,
                resident_bytes: 0,
                ingested: r.ingested,
                dropped: r.dropped,
                alarms: r.alarms,
                recovery_ratio: None,
                mitigation: None,
            })
        })
    }

    /// The snapshot for one tenant, if it was ever seen.
    pub fn snapshot(&self, tenant: &str) -> Option<SessionSnapshot<'_>> {
        let id = self.tenant_id(tenant)?;
        let slot = self.slots.get(id.index())?;
        if let Some(s) = slot.session.and_then(|idx| self.slab.get(idx, id.0)) {
            let mut snap = s.snapshot();
            snap.mitigation = self.mitigation.case_status(id.0);
            return Some(snap);
        }
        let r = slot.retired?;
        let (name, _) = self.ids.get_key_value(tenant)?;
        Some(SessionSnapshot {
            tenant: name,
            generation: r.generation,
            state: SessionState::Closed,
            live: false,
            queued: 0,
            resident_bytes: 0,
            ingested: r.ingested,
            dropped: r.dropped,
            alarms: r.alarms,
            recovery_ratio: None,
            mitigation: None,
        })
    }

    /// Estimated resident heap bytes of the session fleet: every live
    /// session's working set ([`Session::resident_bytes`]) plus the
    /// engine's per-tenant tables. Deterministic capacity accounting —
    /// the number the fleet bench reports and the ceiling is judged
    /// against — not an allocator measurement.
    pub fn resident_bytes(&self) -> usize {
        let sessions: usize = self.slab.iter().map(|(_, s)| s.resident_bytes()).sum();
        let names: usize = self.ids.keys().map(|k| k.capacity()).sum();
        sessions
            + names
            + self.slab.capacity() * std::mem::size_of::<Option<(u32, bool, Session)>>()
            + self.slots.len() * std::mem::size_of::<TenantSlot>()
            + self.lru.len() * std::mem::size_of::<Reverse<(u64, u32)>>()
    }

    /// The event log emitted so far, one JSONL line per entry. Call
    /// [`Engine::flush`] first to include everything ingested.
    pub fn log_lines(&self) -> &[String] {
        &self.log
    }

    /// Allocates the next arrival index for an input span (counts toward
    /// the flush batch).
    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        seq
    }

    /// Allocates an arrival index for an engine-originated event (idle
    /// close, eviction, stats line) without counting it toward the
    /// batch.
    fn alloc_seq_quiet(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Ingests one input line, flushing when the batch fills.
    ///
    /// Clean lines take the borrowed zero-allocation parse; lines it
    /// cannot represent (escapes in protocol strings) fall back to the
    /// [`JsonObject`] parser. A line neither accepts is resynchronised:
    /// every embedded valid record is recovered (each under its own
    /// arrival index, in line order) and the corrupted spans are logged
    /// as `malformed` events — one bad byte never costs more than its
    /// own span.
    // hot-path
    pub fn ingest_line(&mut self, line: &str) {
        if self.config.fast_parse {
            let t0 = self.prof.start();
            let parsed = jsonl::parse_record_borrowed(line);
            let d = self.prof.lap(t0);
            self.prof.decode_ns += d;
            match parsed {
                RawParse::Record(raw) => {
                    let seq = self.alloc_seq();
                    let t1 = self.prof.start();
                    match raw.kind {
                        RawKind::Sample { access, miss } => self.route_sample(
                            seq,
                            raw.tenant,
                            Observation { access_num: access, miss_num: miss },
                        ),
                        RawKind::Close => self.route_close(seq, raw.tenant),
                    }
                    let d = self.prof.lap(t1);
                    self.prof.dispatch_ns += d;
                }
                // The fast path only rejects what the slow path rejects
                // for the same reason (pinned by the equivalence suite),
                // so resync directly — re-parsing would fail again.
                // lint:allow(hot-propagate) -- resync recovers from corrupt input; the fault path may allocate
                RawParse::Reject(_) => self.ingest_resync(line),
                // lint:allow(hot-propagate) -- the slow parse is the announced fallback; its diagnostics may allocate
                RawParse::Fallback => match Record::parse_slow(line) {
                    Ok(record) => {
                        let seq = self.alloc_seq();
                        self.ingest_record(seq, record);
                    }
                    Err(_) => self.ingest_resync(line),
                },
            }
        } else {
            match Record::parse(line) {
                Ok(record) => {
                    let seq = self.alloc_seq();
                    self.ingest_record(seq, record);
                }
                Err(_) => self.ingest_resync(line),
            }
        }
        if self.pending >= self.config.batch {
            self.flush();
        }
    }

    /// Recovers what it can from a line no parser accepted whole: each
    /// embedded valid record re-enters the normal path under its own
    /// arrival index and each corrupted span becomes a `malformed`
    /// event.
    fn ingest_resync(&mut self, line: &str) {
        for segment in jsonl::resync_line(line) {
            let seq = self.alloc_seq();
            match segment {
                Segment::Object(obj) => match Record::from_object(&obj) {
                    Ok(record) => {
                        self.stats.resynced += 1;
                        self.ingest_record(seq, record);
                    }
                    Err(e) => self.push_malformed(seq, e.reason(), None),
                },
                Segment::Skipped { bytes, reason } => {
                    self.push_malformed(seq, &reason, Some(bytes));
                }
            }
        }
    }

    /// Ingests every byte of `reader`, negotiating the wire format from
    /// the first bytes of the stream: a stream opening with the binary
    /// preamble ([`binary::MAGIC`]) decodes through the [`BinDecoder`];
    /// anything else is JSONL, split into physical lines that take the
    /// same fast parse as [`Engine::ingest_line`]. Returns the number of
    /// input spans consumed (physical lines for JSONL, frames for
    /// binary).
    /// Invalid UTF-8, oversized lines and corrupted frames are logged
    /// and skipped, never fatal.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader; input ingested before the
    /// error remains processed.
    pub fn ingest_reader<R: BufRead>(&mut self, mut reader: R) -> std::io::Result<u64> {
        // Sniff up to one preamble, accumulating across short reads.
        // Divergence from the magic at any byte settles on JSONL with
        // the sniffed bytes replayed into the line decoder.
        let mut sniffed: Vec<u8> = Vec::new();
        let is_binary = loop {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                break false;
            }
            let need = binary::MAGIC.len().saturating_sub(sniffed.len());
            let take = need.min(chunk.len());
            sniffed.extend_from_slice(chunk.get(..take).unwrap_or(chunk));
            reader.consume(take);
            let prefix = binary::MAGIC.get(..sniffed.len()).unwrap_or(&[]);
            if sniffed != prefix {
                break false;
            }
            if sniffed.len() == binary::MAGIC.len() {
                break true;
            }
        };
        if is_binary {
            self.ingest_reader_binary(reader)
        } else {
            self.ingest_reader_jsonl(&sniffed, reader)
        }
    }

    /// The JSONL arm of [`Engine::ingest_reader`]; `prefix` holds bytes
    /// the format sniff already consumed from the reader.
    ///
    /// Framing (line split, 64 KiB line cap, UTF-8 splitting, the
    /// physical-line count) mirrors [`jsonl::Decoder`]; each complete line then
    /// takes [`Engine::ingest_line`]'s borrowed zero-allocation parse
    /// instead of the decoder's owned [`JsonObject`] path — same events,
    /// a fraction of the per-line cost.
    fn ingest_reader_jsonl<R: BufRead>(
        &mut self,
        prefix: &[u8],
        mut reader: R,
    ) -> std::io::Result<u64> {
        let mut carry = LineCarry::default();
        self.ingest_jsonl_chunk(&mut carry, prefix);
        loop {
            let len = {
                let chunk = reader.fill_buf()?;
                if chunk.is_empty() {
                    break;
                }
                self.ingest_jsonl_chunk(&mut carry, chunk);
                chunk.len()
            };
            reader.consume(len);
        }
        // Trailing unterminated line at end of stream.
        if let Some(dropped) = carry.discarding.take() {
            carry.lines += 1;
            self.push_oversized_line(dropped);
        } else if !carry.buf.is_empty() {
            carry.lines += 1;
            let line = std::mem::take(&mut carry.buf);
            self.ingest_jsonl_line(&line);
        }
        self.flush();
        Ok(carry.lines)
    }

    /// Splits one chunk of a JSONL byte stream into physical lines,
    /// feeding each complete line through the fast line path. Lines
    /// longer than [`jsonl::DEFAULT_MAX_LINE`] are discarded wholesale
    /// (one `malformed` event), so a stream that stops sending newlines
    /// cannot grow the carry buffer without bound. Not `// hot-path`
    /// itself: the per-sample contract is enforced on
    /// [`Engine::ingest_line`], which every complete line goes through;
    /// this wrapper only manages the carry buffer (reused, not grown
    /// per line) and the fault paths.
    fn ingest_jsonl_chunk(&mut self, carry: &mut LineCarry, chunk: &[u8]) {
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let head = rest.get(..nl).unwrap_or(rest);
            rest = rest.get(nl + 1..).unwrap_or(&[]);
            carry.lines += 1;
            if let Some(dropped) = carry.discarding.take() {
                self.push_oversized_line(dropped + head.len() as u64);
            } else if carry.buf.is_empty() {
                self.ingest_jsonl_line(head);
            } else {
                carry.buf.extend_from_slice(head);
                let line = std::mem::take(&mut carry.buf);
                self.ingest_jsonl_line(&line);
                // Reuse the carry allocation for the next split line.
                carry.buf = line;
                carry.buf.clear();
            }
        }
        match carry.discarding.as_mut() {
            Some(dropped) => *dropped += rest.len() as u64,
            None => {
                carry.buf.extend_from_slice(rest);
                if carry.buf.len() > jsonl::DEFAULT_MAX_LINE {
                    carry.discarding = Some(carry.buf.len() as u64);
                    carry.buf.clear();
                }
            }
        }
    }

    /// Ingests one complete physical line (no trailing newline),
    /// splitting around invalid UTF-8 exactly as [`jsonl::Decoder`] does: each
    /// valid fragment takes the normal line path, each offending span
    /// becomes a `malformed` event, and scanning resumes after it.
    fn ingest_jsonl_line(&mut self, line: &[u8]) {
        let mut rest = line;
        loop {
            match std::str::from_utf8(rest) {
                Ok(text) => {
                    if !text.trim().is_empty() {
                        self.ingest_line(text);
                    }
                    return;
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    if let Some(prefix) =
                        rest.get(..valid).and_then(|p| std::str::from_utf8(p).ok())
                    {
                        if !prefix.trim().is_empty() {
                            self.ingest_line(prefix);
                        }
                    }
                    let bad = e.error_len().unwrap_or(rest.len() - valid).max(1);
                    let seq = self.alloc_seq();
                    self.push_malformed(seq, "invalid UTF-8", Some(bad));
                    if self.pending >= self.config.batch {
                        self.flush();
                    }
                    let next = (valid + bad).min(rest.len());
                    rest = rest.get(next..).unwrap_or(&[]);
                    if rest.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    /// Logs one oversized-line rejection (`dropped` bytes discarded).
    fn push_oversized_line(&mut self, dropped: u64) {
        let seq = self.alloc_seq();
        let reason = format!("line exceeds the {}-byte cap", jsonl::DEFAULT_MAX_LINE);
        self.push_malformed(seq, &reason, Some(dropped as usize));
        if self.pending >= self.config.batch {
            self.flush();
        }
    }

    /// The binary arm of [`Engine::ingest_reader`]: the preamble is
    /// already consumed; everything after is fixed-width frames.
    fn ingest_reader_binary<R: BufRead>(&mut self, mut reader: R) -> std::io::Result<u64> {
        let mut dec = BinDecoder::new();
        let mut frames: Vec<BinFrame> = Vec::new();
        let mut wire = WireTable::default();
        loop {
            let len = {
                let chunk = reader.fill_buf()?;
                if chunk.is_empty() {
                    break;
                }
                let t0 = self.prof.start();
                dec.push_bytes(chunk);
                let d = self.prof.lap(t0);
                self.prof.decode_bin_ns += d;
                chunk.len()
            };
            reader.consume(len);
            dec.drain_into(&mut frames);
            for frame in frames.drain(..) {
                self.ingest_bin_frame(frame, &mut wire);
            }
        }
        let t0 = self.prof.start();
        let tail = dec.finish();
        let d = self.prof.lap(t0);
        self.prof.decode_bin_ns += d;
        for frame in tail {
            self.ingest_bin_frame(frame, &mut wire);
        }
        self.stats.resynced += dec.resynced();
        self.flush();
        Ok(dec.frames())
    }

    /// Routes one decoded binary frame. Sample and close frames consume
    /// an arrival index exactly like their JSONL twins (so a converted
    /// stream replays under identical `seq` values); a define frame is
    /// zero-width metadata — it binds a wire id without consuming a
    /// `seq` — unless it is invalid, in which case it surfaces as an
    /// ordinary `malformed` span.
    // hot-path
    fn ingest_bin_frame(&mut self, frame: BinFrame, wire: &mut WireTable) {
        match frame {
            BinFrame::Sample { tenant, access, miss } => {
                let seq = self.alloc_seq();
                let t0 = self.prof.start();
                let obs = Observation { access_num: access, miss_num: miss };
                match wire.slots.get_mut(tenant as usize).and_then(Option::as_mut) {
                    Some(entry) => self.route_sample_wire(seq, entry, obs),
                    None => self.push_malformed(seq, "undefined wire id", None),
                }
                let d = self.prof.lap(t0);
                self.prof.dispatch_ns += d;
            }
            BinFrame::Close { tenant } => {
                let seq = self.alloc_seq();
                let t0 = self.prof.start();
                match wire.slots.get(tenant as usize).and_then(Option::as_ref) {
                    Some(entry) => {
                        let name = &entry.name;
                        self.route_close(seq, name);
                    }
                    None => self.push_malformed(seq, "undefined wire id", None),
                }
                let d = self.prof.lap(t0);
                self.prof.dispatch_ns += d;
            }
            BinFrame::Define { tenant, name } => {
                if tenant >= binary::MAX_WIRE_ID {
                    let seq = self.alloc_seq();
                    self.push_malformed(seq, "wire id out of range", None);
                } else {
                    let slot = tenant as usize;
                    if wire.slots.len() <= slot {
                        wire.slots.resize_with(slot + 1, || None);
                    }
                    if let Some(e) = wire.slots.get_mut(slot) {
                        *e = Some(WireEntry { name, cached: None });
                    }
                    // No seq consumed: defines are invisible to the
                    // event log, so binary and JSONL replays of the
                    // same stream stay byte-identical.
                    return;
                }
            }
            BinFrame::Skipped { bytes, reason } => {
                let seq = self.alloc_seq();
                self.push_malformed(seq, reason, Some(bytes));
            }
        }
        if self.pending >= self.config.batch {
            self.flush();
        }
    }

    /// Routes one decoded (owned) record — the slow/resync path. The
    /// fast path routes its borrowed fields through the same
    /// [`Engine::route_sample`]/[`Engine::route_close`], so both paths
    /// share one behaviour.
    fn ingest_record(&mut self, seq: u64, record: Record) {
        match record {
            Record::Sample { tenant, obs } => self.route_sample(seq, &tenant, obs),
            Record::Close { tenant } => self.route_close(seq, &tenant),
        }
    }

    /// Routes one sample to its tenant's session, handling drops,
    /// recoveries and reopen-after-close. `tenant` may borrow from the
    /// input line — nothing is cloned unless a session opens.
    // hot-path
    fn route_sample(&mut self, seq: u64, tenant: &str, obs: Observation) {
        let Some((idx, owner)) = self.sample_session(seq, tenant) else {
            return;
        };
        self.offer_sample(idx, owner, seq, obs);
    }

    /// Routes one binary sample through the wire directory. A warm
    /// `cached` id skips the name lookup; a cold one resolves by name
    /// (opening the session if the tenant is new) and warms the cache —
    /// interned ids never go stale, so the hint is set at most once per
    /// wire binding.
    // hot-path
    fn route_sample_wire(&mut self, seq: u64, entry: &mut WireEntry, obs: Observation) {
        let id = match entry.cached {
            Some(id) => id,
            None => match self.tenant_id(&entry.name) {
                Some(id) => {
                    entry.cached = Some(id);
                    id
                }
                None => {
                    let addr = self.sample_session(seq, &entry.name);
                    entry.cached = self.tenant_id(&entry.name);
                    let Some((idx, owner)) = addr else {
                        return;
                    };
                    self.offer_sample(idx, owner, seq, obs);
                    return;
                }
            },
        };
        let Some((idx, owner)) = self.sample_session_known(seq, id, &entry.name) else {
            return;
        };
        self.offer_sample(idx, owner, seq, obs);
    }

    /// Offers one sample to the session at `(idx, owner)` and logs what
    /// happened — the shared back half of every sample route.
    // hot-path
    fn offer_sample(&mut self, idx: u32, owner: u32, seq: u64, obs: Observation) {
        let Some(session) = self.slab.get_mut(idx, owner) else {
            return;
        };
        let offered = session.offer(seq, obs);
        let queued = session.queued();
        if queued > 0 && self.slab.mark_dirty(idx) {
            self.dirty.push(idx);
        }
        match offered {
            Offered::Admitted => {}
            Offered::Recovered { burst } => {
                self.stats.recoveries += 1;
                let payload = match self.slab.get(idx, owner) {
                    Some(s) => s.recovered_event(burst),
                    None => return,
                };
                self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload });
            }
            Offered::Dropped { terminal, burst, total: _ } => {
                if terminal {
                    self.stats.drops_terminal += 1;
                } else {
                    self.stats.drops_backpressure += 1;
                }
                // Coalesce bursts: log the first loss, then every
                // `drop_log_every`-th, so overload cannot flood
                // the log (graceful degradation). Exact totals
                // ride along in each event and in the stats.
                if burst == 1 || burst % self.config.drop_log_every == 0 {
                    let payload = match self.slab.get(idx, owner) {
                        Some(s) => s.drop_event(terminal, burst),
                        None => return,
                    };
                    self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload });
                }
            }
        }
    }

    /// Routes one close request to its tenant's session (opening one
    /// first for an unknown tenant, so the lifecycle stays visible).
    // hot-path
    fn route_close(&mut self, seq: u64, tenant: &str) {
        let Some((idx, owner)) = self.close_session(seq, tenant) else {
            return;
        };
        let Some(session) = self.slab.get_mut(idx, owner) else {
            return;
        };
        session.offer_close(seq, CloseReason::Ctl);
        if self.slab.mark_dirty(idx) {
            self.dirty.push(idx);
        }
    }

    /// Resolves `tenant` to its interned id without allocating.
    // hot-path
    fn tenant_id(&self, tenant: &str) -> Option<TenantId> {
        self.ids.get(tenant).copied()
    }

    /// Looks up (or opens, or reopens after churn/eviction) the session
    /// a sample for `tenant` should land in, returning its
    /// `(slab slot, owner)` address.
    // hot-path
    fn sample_session(&mut self, seq: u64, tenant: &str) -> Option<(u32, u32)> {
        match self.tenant_id(tenant) {
            Some(id) => self.sample_session_known(seq, id, tenant),
            None => self.open_session(seq, tenant, 0),
        }
    }

    /// [`Engine::sample_session`] for a caller that already interned the
    /// tenant (the binary wire directory caches the id), skipping the
    /// name lookup.
    // hot-path
    fn sample_session_known(&mut self, seq: u64, id: TenantId, tenant: &str) -> Option<(u32, u32)> {
        enum Plan {
            Use(u32, u32),
            Open,
            Reopen(u32),
        }
        let plan = match self.slots.get_mut(id.index()) {
            Some(slot) => {
                slot.last_seen = seq;
                match slot.session {
                    Some(idx) if !slot.closed_at_ingest => Plan::Use(idx, id.0),
                    // Closed (and possibly reclaimed): the tenant is
                    // speaking again — churn.
                    Some(_) | None => Plan::Reopen(slot.generation.saturating_add(1)),
                }
            }
            None => Plan::Open,
        };
        match plan {
            Plan::Use(idx, owner) => Some((idx, owner)),
            Plan::Open => self.open_session(seq, tenant, 0),
            Plan::Reopen(generation) => {
                // Tenant churn: a closed tenant is speaking again. A
                // still-draining old incarnation keeps its slab slot
                // until its final events drain; samples route to a
                // fresh session.
                let addr = self.open_session(seq, tenant, generation)?;
                self.stats.reopened += 1;
                Some(addr)
            }
        }
    }

    /// Opens incarnation `generation` of `tenant` and points the tenant
    /// slot at it, interning the name on first contact and evicting the
    /// least-recently-seen open session first when the memory ceiling is
    /// reached. The only per-tenant allocations in the whole routing
    /// path live here.
    // lint:allow(hot-propagate) -- session open is once per tenant incarnation; interning the key and the failure event may allocate
    fn open_session(&mut self, seq: u64, tenant: &str, generation: u32) -> Option<(u32, u32)> {
        if self.config.max_sessions > 0 {
            while self.open_count >= self.config.max_sessions {
                if !self.evict_lru() {
                    break;
                }
            }
        }
        match Session::open_generation(tenant, self.config.session, generation) {
            Ok(session) => {
                self.sessions_opened += 1;
                let owner = match self.tenant_id(tenant) {
                    Some(id) => id.0,
                    None => {
                        let id = TenantId(self.slots.len() as u32);
                        self.slots.push(TenantSlot {
                            session: None,
                            last_seen: seq,
                            closed_at_ingest: false,
                            generation: 0,
                            retired: None,
                            terminal_queued: false,
                        });
                        self.ids.insert(tenant.to_string(), id);
                        id.0
                    }
                };
                let idx = self.slab.insert(owner, session);
                if let Some(slot) = self.slots.get_mut(owner as usize) {
                    slot.session = Some(idx);
                    slot.last_seen = seq;
                    slot.closed_at_ingest = false;
                    slot.generation = generation;
                    // Any FIFO entry for the previous incarnation is
                    // stale now; the pop-side re-validation drops it.
                    slot.terminal_queued = false;
                }
                self.open_count += 1;
                self.lru.push(Reverse((seq, owner)));
                Some((idx, owner))
            }
            Err(e) => {
                // Unreachable when `config` validated, but a session that
                // cannot open must be visible, not a panic.
                let mut o = JsonObject::new();
                o.push_str("event", "open_failed")
                    .push_str("tenant", tenant)
                    .push_str("reason", e.to_string());
                self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload: o });
                None
            }
        }
    }

    /// Evicts one open session to make room under the memory ceiling:
    /// an ordinary close with reason `evicted`, decided at ingest time
    /// so it replays identically at any worker count. Terminal-but-
    /// resident sessions (quarantined verdicts whose idle exemption
    /// would otherwise pin their slots forever, worker-closed husks) go
    /// first, in the order they turned terminal; only when none remain
    /// does the least-recently-seen live session go. Stale entries in
    /// either structure (tenant closed, reopened, or spoke since the
    /// entry was pushed) are dropped or refreshed lazily. Returns
    /// `false` when no open session remains to evict.
    fn evict_lru(&mut self) -> bool {
        while let Some((idx, owner)) = self.terminal_fifo.pop_front() {
            let Some(slot) = self.slots.get_mut(owner as usize) else {
                continue;
            };
            slot.terminal_queued = false;
            if slot.closed_at_ingest || slot.session != Some(idx) {
                continue;
            }
            let terminal = self
                .slab
                .get(idx, owner)
                .map(|s| matches!(s.state(), SessionState::Quarantined | SessionState::Closed))
                .unwrap_or(false);
            if !terminal {
                continue;
            }
            self.evict_at(idx, owner);
            return true;
        }
        let (owner, idx) = loop {
            let Some(Reverse((seen, owner))) = self.lru.pop() else {
                return false;
            };
            let Some(slot) = self.slots.get(owner as usize) else {
                continue;
            };
            if slot.closed_at_ingest {
                continue;
            }
            let Some(idx) = slot.session else {
                continue;
            };
            if slot.last_seen != seen {
                // The tenant spoke after this entry was pushed; re-arm
                // at its true recency and keep looking.
                self.lru.push(Reverse((slot.last_seen, owner)));
                continue;
            }
            break (owner, idx);
        };
        self.evict_at(idx, owner);
        true
    }

    /// The close bookkeeping of one ceiling eviction, shared by the
    /// terminal-FIFO and recency-heap paths of [`Engine::evict_lru`].
    fn evict_at(&mut self, idx: u32, owner: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(slot) = self.slots.get_mut(owner as usize) {
            slot.closed_at_ingest = true;
        }
        self.open_count = self.open_count.saturating_sub(1);
        self.stats.evicted += 1;
        if let Some(session) = self.slab.get_mut(idx, owner) {
            session.offer_close(seq, CloseReason::Evicted);
        }
        if self.slab.mark_dirty(idx) {
            self.dirty.push(idx);
        }
    }

    /// Resolves the session a close for `tenant` addresses, marking the
    /// slot closed at the ingest side. A close for an unknown tenant
    /// opens a session first so the lifecycle stays visible in the log;
    /// a close for an already-reclaimed tenant is a no-op (the old
    /// behaviour for a closed-but-resident session was an idempotent
    /// close that logged nothing).
    // hot-path
    fn close_session(&mut self, seq: u64, tenant: &str) -> Option<(u32, u32)> {
        if let Some(id) = self.tenant_id(tenant) {
            if let Some(slot) = self.slots.get_mut(id.index()) {
                slot.last_seen = seq;
                let was_open = !slot.closed_at_ingest && slot.session.is_some();
                slot.closed_at_ingest = true;
                let addr = slot.session.map(|idx| (idx, id.0));
                if was_open {
                    self.open_count = self.open_count.saturating_sub(1);
                }
                return addr;
            }
        }
        let (idx, owner) = self.open_session(seq, tenant, 0)?;
        if let Some(slot) = self.slots.get_mut(owner as usize) {
            slot.closed_at_ingest = true;
        }
        self.open_count = self.open_count.saturating_sub(1);
        Some((idx, owner))
    }

    /// Records one malformed span in the log and the stats. The reason
    /// arrives as `&str` so the (hot) reject path never renders one the
    /// log won't carry.
    fn push_malformed(&mut self, seq: u64, reason: &str, bytes: Option<usize>) {
        self.stats.malformed += 1;
        let mut o = JsonObject::new();
        o.push_str("event", "malformed").push_str("reason", reason);
        if let Some(b) = bytes {
            o.push_num("bytes", b as f64);
        }
        self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload: o });
    }

    /// Dispatches the dirty sessions' queued items across the persistent
    /// worker pool and appends the produced events to the log in
    /// `(seq, sub)` order, then reclaims closed incarnations and applies
    /// the idle timeout. Only sessions that queued work are touched — a
    /// 50k-tenant fleet with a handful of active tenants pays for the
    /// handful. All working buffers are recycled, so a steady-state
    /// flush performs no per-flush allocations beyond the log lines
    /// themselves.
    pub fn flush(&mut self) {
        if self.pending == 0 && self.ingest_events.is_empty() && self.dirty.is_empty() {
            return;
        }
        self.pending = 0;
        // Lend the flush's working set out of the slab, in the
        // (deterministic) order sessions first queued work.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut meta = std::mem::take(&mut self.scratch_meta);
        let mut queued: u64 = 0;
        for di in 0..self.dirty.len() {
            let Some(&idx) = self.dirty.get(di) else {
                break;
            };
            if let Some((owner, session)) = self.slab.lend(idx) {
                queued += session.queued() as u64;
                meta.push((idx, owner));
                scratch.push(session);
            }
        }
        self.dirty.clear();
        self.stats.peak_queued = self.stats.peak_queued.max(queued);
        let t0 = self.prof.start();
        if self.effective_workers <= 1 || scratch.len() <= 1 {
            // A single worker (or session) would serialise through the
            // pool anyway; keep the channel machinery out of the path.
            let mut events = std::mem::take(&mut self.events_buf);
            for s in scratch.iter_mut() {
                s.process_queued_into(&mut events);
            }
            let d = self.prof.lap(t0);
            self.prof.step_ns += d;
            events.append(&mut self.ingest_events);
            // `(seq, sub)` keys are unique, so this imposes the one
            // total order.
            let t1 = self.prof.start();
            events.sort_by_key(|e| (e.seq, e.sub));
            let d = self.prof.lap(t1);
            self.prof.merge_ns += d;
            let t2 = self.prof.start();
            for ev in &events {
                let line = render_event(&mut self.render, ev);
                self.log.push(line);
            }
            let d = self.prof.lap(t2);
            self.prof.write_ns += d;
            events.clear();
            self.events_buf = events;
        } else {
            let workers = self.effective_workers;
            let pool = self.pool.get_or_insert_with(|| {
                ShardPool::with_finish(
                    workers,
                    |s: &mut Session, out: &mut Vec<SessionEvent>| s.process_queued_into(out),
                    // Each worker sorts its own runs, so the engine only
                    // merges (see the module docs on the hierarchical
                    // merge).
                    |run: &mut Vec<SessionEvent>| run.sort_by_key(|e| (e.seq, e.sub)),
                )
            });
            let mut runs = std::mem::take(&mut self.runs);
            pool.run_sharded_runs(&mut scratch, &mut runs);
            let d = self.prof.lap(t0);
            self.prof.step_ns += d;
            let t1 = self.prof.start();
            runs.push(std::mem::take(&mut self.ingest_events));
            self.merge_runs(&mut runs);
            // The ingest run went in last and `merge_runs` does not
            // reorder the run list; reclaim its capacity.
            if let Some(ingest) = runs.pop() {
                self.ingest_events = ingest;
            }
            let d = self.prof.lap(t1);
            self.prof.merge_ns += d;
            self.runs = runs;
        }
        // Return sessions to the slab; reclaim closed-at-ingest
        // incarnations (slot to the free list, final counters retained).
        for ((idx, owner), session) in meta.drain(..).zip(scratch.drain(..)) {
            self.put_back(idx, owner, session);
        }
        self.scratch = scratch;
        self.scratch_meta = meta;
        self.check_idle();
        self.step_mitigation();
    }

    /// K-way merges pre-sorted event runs into the log. Every run is
    /// sorted by `(seq, sub)` (worker finish hooks sort shard runs; the
    /// ingest run is sorted by construction) and the keys are globally
    /// unique, so popping the smallest head across runs renders the one
    /// total order without re-sorting. Heap and cursors are recycled.
    /// Runs come back cleared.
    fn merge_runs(&mut self, runs: &mut [Vec<SessionEvent>]) {
        self.merge_heap.clear();
        self.merge_pos.clear();
        self.merge_pos.resize(runs.len(), 0);
        for (rid, run) in runs.iter().enumerate() {
            if let Some(e) = run.first() {
                self.merge_heap.push(Reverse((e.seq, e.sub, rid)));
            }
        }
        while let Some(Reverse((_, _, rid))) = self.merge_heap.pop() {
            let Some(p) = self.merge_pos.get_mut(rid) else {
                continue;
            };
            let at = *p;
            *p = at + 1;
            let Some(run) = runs.get(rid) else {
                continue;
            };
            let Some(ev) = run.get(at) else {
                continue;
            };
            let line = render_event(&mut self.render, ev);
            self.log.push(line);
            if let Some(next) = run.get(at + 1) {
                self.merge_heap.push(Reverse((next.seq, next.sub, rid)));
            }
        }
        for run in runs.iter_mut() {
            run.clear();
        }
    }

    /// Returns one lent session to the slab after a flush, or retires
    /// it: a closed incarnation whose close the ingest side decided is
    /// fully drained now, so its slot is reclaimed and its final
    /// counters retained for snapshots. A session closed worker-side
    /// only (failed profile) stays resident — later samples must still
    /// drop against its policy — but shrunk to a husk.
    // lint:allow(hot-propagate) -- the quarantine-notice capture allocates the tenant name once per quarantine transition, never per sample
    fn put_back(&mut self, idx: u32, owner: u32, mut session: Session) {
        if let Some(seq) = session.take_quarantine_notice() {
            if self.mitigation.enabled() {
                self.notices.push((owner, seq, session.tenant().to_string()));
            }
        }
        let closed = session.state() == SessionState::Closed;
        let (is_current, closing) = match self.slots.get(owner as usize) {
            Some(slot) => (slot.session == Some(idx), slot.closed_at_ingest),
            None => (false, false),
        };
        if closed && is_current && closing {
            if let Some(slot) = self.slots.get_mut(owner as usize) {
                slot.retired = Some(RetiredSession {
                    generation: session.generation(),
                    ingested: session.ingested(),
                    dropped: session.dropped(),
                    alarms: session.alarms(),
                });
                slot.session = None;
            }
            self.slab.release(idx);
            if let Some(case) = self.mitigation.on_session_closed(owner) {
                if !case.state().terminal() {
                    self.aborted_cases.push((owner, case.tenant().to_string()));
                }
            }
        } else if closed && !is_current {
            // A superseded incarnation: the tenant reopened before this
            // one drained. The live incarnation owns the tenant's state;
            // just free the slot.
            self.slab.release(idx);
        } else {
            let terminal =
                matches!(session.state(), SessionState::Quarantined | SessionState::Closed);
            session.shrink_terminal();
            self.slab.restore(idx, owner, session);
            if terminal && is_current && !closing {
                if let Some(slot) = self.slots.get_mut(owner as usize) {
                    if !slot.terminal_queued {
                        slot.terminal_queued = true;
                        self.terminal_fifo.push_back((idx, owner));
                    }
                }
            }
        }
    }

    /// Closes sessions whose tenants have been silent for more than
    /// `idle_timeout` arrival indices, walking the shared recency heap
    /// instead of every tenant: pop while the oldest entry is past the
    /// timeout, dropping or refreshing stale entries lazily (same
    /// protocol as eviction). Quarantined and worker-closed sessions are
    /// exempt — they re-arm at the current index so they stay evictable
    /// under ceiling pressure. Runs at flush boundaries, which are a
    /// pure function of the input, so the transition replays
    /// deterministically at any worker count. The synthetic close
    /// consumes a fresh arrival index and drains at the next flush.
    fn check_idle(&mut self) {
        let timeout = self.config.session.idle_timeout;
        if timeout == 0 {
            return;
        }
        loop {
            let Some(&Reverse((seen, owner))) = self.lru.peek() else {
                break;
            };
            if self.next_seq.saturating_sub(seen) <= timeout {
                break;
            }
            self.lru.pop();
            let Some(slot) = self.slots.get(owner as usize) else {
                continue;
            };
            if slot.closed_at_ingest {
                continue;
            }
            let Some(idx) = slot.session else {
                continue;
            };
            if slot.last_seen != seen {
                self.lru.push(Reverse((slot.last_seen, owner)));
                continue;
            }
            let state = self.slab.get(idx, owner).map(Session::state);
            match state {
                Some(SessionState::Profiling) | Some(SessionState::Monitoring) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if let Some(slot) = self.slots.get_mut(owner as usize) {
                        slot.closed_at_ingest = true;
                    }
                    self.open_count = self.open_count.saturating_sub(1);
                    self.stats.idle_closed += 1;
                    if let Some(session) = self.slab.get_mut(idx, owner) {
                        session.offer_close(seq, CloseReason::Idle);
                    }
                    if self.slab.mark_dirty(idx) {
                        self.dirty.push(idx);
                    }
                }
                Some(SessionState::Quarantined) | Some(SessionState::Closed) | None => {
                    // Exempt from the idle timeout; re-arm as if seen
                    // now so the entry stops looking stale but the
                    // session stays reachable for eviction.
                    self.lru.push(Reverse((self.next_seq, owner)));
                    if let Some(slot) = self.slots.get_mut(owner as usize) {
                        slot.last_seen = self.next_seq;
                    }
                }
            }
        }
    }

    /// The mitigation response step, run at the end of every flush.
    /// Flush boundaries are a pure function of the input stream, so
    /// every decision here — engage, confirm, climb, release — and its
    /// `mitigation_*` event replays identically at any worker count.
    /// Consumes the quarantine notices the flush drained (engaging a
    /// control on each freshly quarantined tenant, or skipping a
    /// notice whose session already closed underneath it), feeds one
    /// victim-recovery sample to every active case, renders the event
    /// lines under fresh quiet arrival indices and queues the control
    /// actions for the driver ([`Engine::take_mitigation_actions`]).
    fn step_mitigation(&mut self) {
        if !self.mitigation.enabled() {
            return;
        }
        // Active cases aborted by a close that drained this flush: the
        // coordinator already queued the release action; log and count.
        if !self.aborted_cases.is_empty() {
            let aborted = std::mem::take(&mut self.aborted_cases);
            for (_, tenant) in aborted {
                self.stats.mitigations_aborted += 1;
                let mut o = JsonObject::new();
                o.push_str("event", "mitigation_released")
                    .push_str("tenant", tenant)
                    .push_str("reason", "closed");
                self.push_mitigation_event(o);
            }
        }
        if self.notices.is_empty() && !self.mitigation.has_active() {
            return;
        }
        let degraded = self.victims_degraded();
        let notices = std::mem::take(&mut self.notices);
        for (owner, seq, tenant) in notices {
            let quarantined = self
                .slots
                .get(owner as usize)
                .filter(|slot| !slot.closed_at_ingest)
                .and_then(|slot| slot.session)
                .and_then(|idx| self.slab.get(idx, owner))
                .map(|s| s.state() == SessionState::Quarantined)
                .unwrap_or(false);
            if !quarantined {
                // The session closed (or is closing) underneath its own
                // quarantine: nothing is left to control.
                self.stats.mitigation_skipped += 1;
                let mut o = JsonObject::new();
                o.push_str("event", "mitigation_skipped")
                    .push_str("tenant", tenant)
                    .push_str("reason", "closed");
                self.push_mitigation_event(o);
                continue;
            }
            let Some(engaged) = self.mitigation.engage(owner, &tenant, seq, degraded) else {
                continue;
            };
            self.stats.mitigations_engaged += 1;
            let mut o = JsonObject::new();
            o.push_str("event", "mitigation_engaged")
                .push_str("tenant", tenant.clone())
                .push_str("rung", engaged.rung.label())
                .push_bool("degraded", engaged.degraded);
            self.push_mitigation_event(o);
            if engaged.terminal {
                // Rung memory already sat at evict: terminal on engage,
                // the one legal shortcut past `Confirming`.
                self.stats.mitigations_escalated += 1;
                let mut o = JsonObject::new();
                o.push_str("event", "mitigation_escalated")
                    .push_str("tenant", tenant)
                    .push_str("rung", engaged.rung.label())
                    .push_str("reason", "engage");
                self.push_mitigation_event(o);
                self.close_for_mitigation(owner, CloseReason::Escalated);
            }
        }
        if !self.mitigation.has_active() {
            return;
        }
        let now = self.next_seq;
        let updates = self.mitigation.sample_active(now, degraded);
        for u in updates {
            let mut o = JsonObject::new();
            match u.step {
                CaseStep::Hold => continue,
                CaseStep::Confirming => {
                    o.push_str("event", "mitigation_confirming")
                        .push_str("tenant", u.tenant)
                        .push_str("rung", u.rung.label());
                }
                CaseStep::Recovered { latency } => {
                    o.push_str("event", "mitigation_recovered")
                        .push_str("tenant", u.tenant)
                        .push_str("rung", u.rung.label())
                        .push_num("latency", latency as f64);
                }
                CaseStep::Relapsed => {
                    o.push_str("event", "mitigation_relapsed")
                        .push_str("tenant", u.tenant)
                        .push_str("rung", u.rung.label());
                }
                CaseStep::Climbed { rung } => {
                    o.push_str("event", "mitigation_climbed")
                        .push_str("tenant", u.tenant)
                        .push_str("rung", rung.label());
                }
                CaseStep::Evicted => {
                    self.stats.mitigations_escalated += 1;
                    o.push_str("event", "mitigation_escalated")
                        .push_str("tenant", u.tenant)
                        .push_str("rung", u.rung.label())
                        .push_str("reason", "budget");
                    self.push_mitigation_event(o);
                    self.close_for_mitigation(u.id, CloseReason::Escalated);
                    continue;
                }
                CaseStep::Confirmed { rung, latency } => {
                    self.stats.mitigations_escalated += 1;
                    self.stats.recovery_latency_ticks += latency;
                    o.push_str("event", "mitigation_escalated")
                        .push_str("tenant", u.tenant)
                        .push_str("rung", rung.label())
                        .push_str("reason", "confirmed")
                        .push_num("latency", latency as f64);
                }
                CaseStep::Released { cost } => {
                    self.stats.mitigations_released += 1;
                    self.stats.false_quarantine_ticks += cost;
                    o.push_str("event", "mitigation_released")
                        .push_str("tenant", u.tenant)
                        .push_str("reason", "verdict")
                        .push_num("cost", cost as f64);
                    self.push_mitigation_event(o);
                    self.close_for_mitigation(u.id, CloseReason::Released);
                    continue;
                }
            }
            self.push_mitigation_event(o);
        }
    }

    /// Whether any victim — a `Monitoring` session of a tenant other
    /// than the mitigated ones — currently reports an access level
    /// below the recovery threshold (see `Session::recovery_ratio`).
    fn victims_degraded(&self) -> bool {
        let threshold = self.config.mitigation.degraded_below;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.closed_at_ingest {
                continue;
            }
            let Some(idx) = slot.session else {
                continue;
            };
            if self.mitigation.has_case(i as u32) {
                continue;
            }
            let Some(session) = self.slab.get(idx, i as u32) else {
                continue;
            };
            if let Some(ratio) = session.recovery_ratio() {
                if ratio < threshold {
                    return true;
                }
            }
        }
        false
    }

    /// Closes one session on the mitigation loop's decision (release of
    /// a false quarantine, or eviction of a confirmed attacker): same
    /// ingest-side bookkeeping as a ceiling eviction, under a quiet
    /// arrival index, draining at the next flush.
    fn close_for_mitigation(&mut self, owner: u32, reason: CloseReason) {
        let Some(slot) = self.slots.get(owner as usize) else {
            return;
        };
        if slot.closed_at_ingest {
            return;
        }
        let Some(idx) = slot.session else {
            return;
        };
        let seq = self.alloc_seq_quiet();
        if let Some(slot) = self.slots.get_mut(owner as usize) {
            slot.closed_at_ingest = true;
        }
        self.open_count = self.open_count.saturating_sub(1);
        if let Some(session) = self.slab.get_mut(idx, owner) {
            session.offer_close(seq, reason);
        }
        if self.slab.mark_dirty(idx) {
            self.dirty.push(idx);
        }
    }

    /// Appends one engine-originated `mitigation_*` event under a fresh
    /// quiet arrival index; it merges into the log at the next flush.
    fn push_mitigation_event(&mut self, payload: JsonObject) {
        let seq = self.alloc_seq_quiet();
        self.ingest_events.push(SessionEvent { seq, sub: SUB_INGEST, payload });
    }

    /// Drains the control actions the mitigation loop decided since
    /// the last call, in decision order. The closed-loop driver
    /// (`memdos-engine respond`) applies these to the workload; a
    /// caller that never drains them runs detection-only.
    pub fn take_mitigation_actions(&mut self) -> Vec<MitigationAction> {
        self.mitigation.take_actions()
    }

    /// Drains everything still queued (including closes the idle check
    /// enqueued at the final flush) and appends one `engine_stats` log
    /// line with the recovery counters. Call once at end of stream.
    pub fn finish(&mut self) {
        // Two flushes suffice (queued input, then idle closes); the
        // bound guards the invariant rather than trusting it.
        for _ in 0..4 {
            self.flush();
            if self.ingest_events.is_empty() && self.dirty.is_empty() {
                break;
            }
        }
        let seq = self.alloc_seq_quiet();
        let s = self.stats;
        let mut o = JsonObject::new();
        o.push_str("event", "engine_stats")
            .push_num("sessions", self.sessions_opened as f64)
            .push_num("open_sessions", self.open_count as f64)
            .push_num("malformed", s.malformed as f64)
            .push_num("resynced", s.resynced as f64)
            .push_num("drops_backpressure", s.drops_backpressure as f64)
            .push_num("drops_terminal", s.drops_terminal as f64)
            .push_num("recoveries", s.recoveries as f64)
            .push_num("idle_closed", s.idle_closed as f64)
            .push_num("evicted", s.evicted as f64)
            .push_num("reopened", s.reopened as f64)
            .push_num("peak_queued", s.peak_queued as f64);
        if self.mitigation.enabled() {
            // Mitigation counters appear only when the loop is live, so
            // detection-only logs are byte-identical to older runs.
            o.push_num("mitigations_engaged", s.mitigations_engaged as f64)
                .push_num("mitigations_released", s.mitigations_released as f64)
                .push_num("mitigations_escalated", s.mitigations_escalated as f64)
                .push_num("mitigations_aborted", s.mitigations_aborted as f64)
                .push_num("mitigation_skipped", s.mitigation_skipped as f64)
                .push_num("recovery_latency_ticks", s.recovery_latency_ticks as f64)
                .push_num("false_quarantine_ticks", s.false_quarantine_ticks as f64);
        }
        if self.prof.enabled {
            // Wall-clock diagnostics (MEMDOS_ENGINE_PROF=1): these make
            // the stats line — and only the stats line — vary run to run.
            let p = self.prof;
            o.push_num("prof_decode_ns", p.decode_ns as f64)
                .push_num("prof_decode_bin_ns", p.decode_bin_ns as f64)
                .push_num("prof_dispatch_ns", p.dispatch_ns as f64)
                .push_num("prof_step_ns", p.step_ns as f64)
                .push_num("prof_merge_ns", p.merge_ns as f64)
                .push_num("prof_write_ns", p.write_ns as f64);
        }
        let line =
            render_event(&mut self.render, &SessionEvent { seq, sub: SUB_INGEST, payload: o });
        self.log.push(line);
    }
}

/// Serializes one event as a log line through the recycled [`LineBuf`]
/// writer, with the global arrival index prepended as `seq`. Only the
/// returned log line itself is allocated.
fn render_event(buf: &mut LineBuf, ev: &SessionEvent) -> String {
    buf.begin().field_u64("seq", ev.seq);
    for (k, v) in ev.payload.entries() {
        buf.field_value(k, v);
    }
    // lint:allow(hot-propagate) -- the emitted log line is the one permitted allocation per event; everything upstream renders into the recycled buffer
    buf.end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;

    fn fast_config(workers: usize, batch: usize) -> Config {
        Config {
            workers,
            batch,
            session: SessionConfig { profile_ticks: 2_000, ..SessionConfig::default() },
            ..Config::default()
        }
    }

    /// Three tenants: two flat, one that collapses mid-stream.
    fn synthetic_lines() -> Vec<String> {
        let mut lines = Vec::new();
        for i in 0..4_000u64 {
            for tenant in ["vm-a", "vm-b", "vm-c"] {
                let attacked = tenant == "vm-b" && i >= 2_500;
                let access = if attacked { 100.0 } else { 1000.0 + (i % 10) as f64 };
                lines.push(format!(
                    r#"{{"tenant":"{tenant}","access":{access},"miss":{}}}"#,
                    100.0 + (i % 5) as f64
                ));
            }
        }
        for tenant in ["vm-a", "vm-b", "vm-c"] {
            lines.push(format!(r#"{{"tenant":"{tenant}","ctl":"close"}}"#));
        }
        lines
    }

    fn run(config: Config, lines: &[String]) -> Vec<String> {
        let mut engine = Engine::new(config).unwrap();
        for line in lines {
            engine.ingest_line(line);
        }
        engine.flush();
        engine.log_lines().to_vec()
    }

    #[test]
    fn log_is_identical_across_workers_and_batch_sizes() {
        let lines = synthetic_lines();
        let reference = run(fast_config(1, 256), &lines);
        assert!(!reference.is_empty());
        // Any worker count; any batch size up to the queue capacity
        // (1024 default, 3 tenants → up to 3072 lines per flush).
        for (workers, batch) in [(2, 256), (8, 256), (1, 7), (4, 1_024)] {
            assert_eq!(
                run(fast_config(workers, batch), &lines),
                reference,
                "workers={workers} batch={batch}"
            );
        }
    }

    #[test]
    fn oversized_batch_drops_visibly_and_stays_worker_invariant() {
        let lines = synthetic_lines();
        // A batch far beyond the queue capacity forces the drop policy;
        // the drops are logged, and the log is still identical at any
        // worker count because drops are decided at ingest time.
        let reference = run(fast_config(1, 1_000_000), &lines);
        assert!(reference.iter().any(|l| l.contains(r#""event":"dropped""#)));
        assert_eq!(run(fast_config(8, 1_000_000), &lines), reference);
    }

    #[test]
    fn log_contains_lifecycle_and_alarm() {
        let lines = synthetic_lines();
        let log = run(fast_config(4, 256), &lines);
        let count = |needle: &str| log.iter().filter(|l| l.contains(needle)).count();
        assert_eq!(count(r#""event":"opened""#), 3);
        assert_eq!(count(r#""event":"profile_ready""#), 3);
        assert_eq!(count(r#""event":"closed""#), 3);
        assert!(log
            .iter()
            .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-b""#)));
        // The non-attacked tenants never reach an alarm.
        assert!(!log
            .iter()
            .any(|l| l.contains(r#""to":"alarm""#) && l.contains(r#""tenant":"vm-a""#)));
    }

    #[test]
    fn malformed_lines_are_logged_not_fatal() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        engine.ingest_line("not json at all");
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.flush();
        assert_eq!(engine.malformed(), 1);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"malformed""#)));
        assert_eq!(engine.session_count(), 1);
    }

    #[test]
    fn ingest_reader_consumes_jsonl() {
        let input = "{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}\n\n{\"tenant\":\"vm-0\",\"ctl\":\"close\"}\n";
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        let n = engine.ingest_reader(input.as_bytes()).unwrap();
        // Physical lines, blank included.
        assert_eq!(n, 3);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"closed""#)));
    }

    #[test]
    fn ingest_reader_negotiates_binary_from_preamble() {
        let mut bytes = Vec::new();
        let mut enc = memdos_metrics::binary::Encoder::new();
        enc.sample("vm-0", 1.0, 2.0, &mut bytes).unwrap();
        enc.sample("vm-1", 3.0, 4.0, &mut bytes).unwrap();
        enc.close("vm-0", &mut bytes).unwrap();
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        // 2 defines + 2 samples + 1 close.
        let n = engine.ingest_reader(&bytes[..]).unwrap();
        assert_eq!(n, 5);
        assert_eq!(engine.malformed(), 0);
        assert_eq!(engine.session_count(), 2);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"closed""#) && l.contains(r#""tenant":"vm-0""#)));
        // Defines are zero-width: the close (3rd record) sits at seq 2,
        // exactly where the JSONL twin of this stream would put it.
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""seq":2"#) && l.contains(r#""event":"closed""#)));
    }

    #[test]
    fn binary_undefined_wire_id_is_malformed_not_fatal() {
        let mut bytes = Vec::new();
        binary::write_preamble(&mut bytes);
        binary::write_sample(&mut bytes, 7, 1.0, 2.0);
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        engine.ingest_reader(&bytes[..]).unwrap();
        assert_eq!(engine.malformed(), 1);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains("undefined wire id")));
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn ingest_reader_survives_corruption_and_resyncs() {
        // A healthy record fused behind a truncated one, a line of
        // invalid UTF-8, and a clean close.
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"tenant\":\"vm-0\",\"acc{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}\n");
        input.extend_from_slice(&[0xff, 0xfe, b'\n']);
        input.extend_from_slice(b"{\"tenant\":\"vm-0\",\"ctl\":\"close\"}\n");
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        let n = engine.ingest_reader(&input[..]).unwrap();
        assert_eq!(n, 3);
        let stats = engine.stats();
        assert_eq!(stats.resynced, 1, "fused record recovered");
        assert!(stats.malformed >= 2, "corrupted spans logged");
        assert_eq!(engine.session_count(), 1);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"closed""#)));
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"malformed""#) && l.contains("UTF-8")));
    }

    #[test]
    fn ingest_line_resyncs_fused_records() {
        let mut engine = Engine::new(fast_config(1, 256)).unwrap();
        // Two valid records fused onto one line around a corrupted span.
        engine.ingest_line(
            "{\"tenant\":\"vm-0\",\"access\":1,\"miss\":2}garbage{\"tenant\":\"vm-1\",\"access\":3,\"miss\":4}",
        );
        engine.flush();
        assert_eq!(engine.session_count(), 2);
        assert_eq!(engine.stats().resynced, 2);
        assert_eq!(engine.malformed(), 1);
    }

    #[test]
    fn idle_timeout_closes_silent_tenants() {
        let mut config = fast_config(1, 8);
        config.session.idle_timeout = 16;
        let mut engine = Engine::new(config).unwrap();
        // vm-idle speaks once, then vm-busy floods past the timeout.
        engine.ingest_line(r#"{"tenant":"vm-idle","access":1,"miss":2}"#);
        for _ in 0..64 {
            engine.ingest_line(r#"{"tenant":"vm-busy","access":1,"miss":2}"#);
        }
        engine.finish();
        let idle_closed = engine
            .log_lines()
            .iter()
            .any(|l| {
                l.contains(r#""event":"closed""#)
                    && l.contains(r#""tenant":"vm-idle""#)
                    && l.contains(r#""reason":"idle""#)
            });
        assert!(idle_closed, "idle tenant must close with reason idle");
        assert_eq!(engine.stats().idle_closed, 1);
        // The busy tenant is still open.
        assert!(!engine.log_lines().iter().any(|l| {
            l.contains(r#""event":"closed""#) && l.contains(r#""tenant":"vm-busy""#)
        }));
    }

    #[test]
    fn closed_tenant_reopens_as_new_generation() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.ingest_line(r#"{"tenant":"vm-0","ctl":"close"}"#);
        engine.ingest_line(r#"{"tenant":"vm-0","access":3,"miss":4}"#);
        engine.finish();
        assert_eq!(engine.session_count(), 2, "churned tenant gets a fresh session");
        assert_eq!(engine.stats().reopened, 1);
        let opened_gens: Vec<&String> = engine
            .log_lines()
            .iter()
            .filter(|l| l.contains(r#""event":"opened""#))
            .collect();
        assert_eq!(opened_gens.len(), 2);
        assert!(opened_gens[0].contains(r#""gen":0"#));
        assert!(opened_gens[1].contains(r#""gen":1"#));
    }

    #[test]
    fn ceiling_evicts_lru_and_tenant_reopens() {
        let mut config = fast_config(1, 4);
        config.max_sessions = 2;
        let mut engine = Engine::new(config).unwrap();
        // vm-a is the least recently seen when vm-c arrives.
        engine.ingest_line(r#"{"tenant":"vm-a","access":1,"miss":2}"#);
        engine.ingest_line(r#"{"tenant":"vm-b","access":1,"miss":2}"#);
        engine.ingest_line(r#"{"tenant":"vm-c","access":1,"miss":2}"#);
        assert_eq!(engine.open_sessions(), 2, "ceiling enforced");
        assert_eq!(engine.stats().evicted, 1);
        // The evicted tenant speaks again: new generation.
        engine.ingest_line(r#"{"tenant":"vm-a","access":3,"miss":4}"#);
        engine.finish();
        assert_eq!(engine.stats().reopened, 1);
        assert!(engine.log_lines().iter().any(|l| {
            l.contains(r#""event":"closed""#)
                && l.contains(r#""tenant":"vm-a""#)
                && l.contains(r#""reason":"evicted""#)
        }));
        let gen1 = engine.log_lines().iter().any(|l| {
            l.contains(r#""event":"opened""#)
                && l.contains(r#""tenant":"vm-a""#)
                && l.contains(r#""gen":1"#)
        });
        assert!(gen1, "evicted tenant reopens as a new generation");
        assert!(engine.open_sessions() <= 2);
    }

    #[test]
    fn eviction_log_is_worker_invariant() {
        // Rolling churn across 8 tenants under a ceiling of 3; drops,
        // evictions and reopens must replay byte-identically.
        let mut lines = Vec::new();
        for i in 0..2_000u64 {
            let tenant = format!("vm-{}", i % 8);
            lines.push(format!(
                r#"{{"tenant":"{tenant}","access":{},"miss":2}}"#,
                1000 + i % 10
            ));
            if i % 97 == 0 {
                lines.push(format!(r#"{{"tenant":"vm-{}","ctl":"close"}}"#, (i / 97) % 8));
            }
        }
        let config = |workers: usize| {
            let mut c = fast_config(workers, 64);
            c.max_sessions = 3;
            c
        };
        let reference = run(config(1), &lines);
        assert!(
            reference.iter().any(|l| l.contains(r#""reason":"evicted""#)),
            "scenario must actually evict"
        );
        for workers in [2, 4, 8] {
            assert_eq!(run(config(workers), &lines), reference, "workers={workers}");
        }
    }

    #[test]
    fn snapshots_serve_live_and_retired_tenants() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        engine.ingest_line(r#"{"tenant":"vm-live","access":1,"miss":2}"#);
        engine.ingest_line(r#"{"tenant":"vm-gone","access":1,"miss":2}"#);
        engine.ingest_line(r#"{"tenant":"vm-gone","ctl":"close"}"#);
        engine.finish();
        let snaps: Vec<_> = engine.snapshots().collect();
        assert_eq!(snaps.len(), 2);
        // Name order: vm-gone, vm-live.
        let gone = engine.snapshot("vm-gone").expect("retired snapshot");
        assert!(!gone.live);
        assert_eq!(gone.state, SessionState::Closed);
        assert_eq!(gone.ingested, 1);
        assert_eq!(gone.resident_bytes, 0);
        let live = engine.snapshot("vm-live").expect("live snapshot");
        assert!(live.live);
        assert_eq!(live.state, SessionState::Profiling);
        assert!(live.resident_bytes > 0);
        assert!(engine.resident_bytes() >= live.resident_bytes);
        assert!(engine.snapshot("vm-unknown").is_none());
    }

    #[test]
    fn merge_runs_orders_presorted_runs() {
        let mut engine = Engine::new(fast_config(1, 4)).unwrap();
        let ev = |seq: u64, sub: u32| {
            let mut o = JsonObject::new();
            o.push_str("event", "probe");
            SessionEvent { seq, sub, payload: o }
        };
        let mut runs = vec![
            vec![ev(0, 1), ev(3, 0), ev(9, 0)],
            vec![ev(0, 0), ev(4, 2), ev(4, 5)],
            Vec::new(),
            vec![ev(2, 0)],
        ];
        engine.merge_runs(&mut runs);
        let keys: Vec<u64> = engine
            .log_lines()
            .iter()
            .map(|l| {
                let o = JsonObject::parse(l).expect("line parses");
                o.get_f64("seq").expect("seq") as u64
            })
            .collect();
        assert_eq!(keys, vec![0, 0, 2, 3, 4, 4, 9]);
        assert!(runs.iter().all(Vec::is_empty), "runs come back cleared");
    }

    #[test]
    fn drop_bursts_are_coalesced_and_recovery_logged() {
        let mut config = fast_config(1, 1_000_000);
        config.session.queue_capacity = 4;
        config.session.drop_policy = crate::session::DropPolicy::Newest;
        config.drop_log_every = 8;
        let mut engine = Engine::new(config).unwrap();
        // 4 admitted + 20 dropped in one burst.
        for i in 0..24 {
            engine.ingest_line(&format!(r#"{{"tenant":"vm-0","access":{i},"miss":2}}"#));
        }
        engine.flush();
        // Queue drained: the next sample is a recovery.
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.finish();
        let drops = engine
            .log_lines()
            .iter()
            .filter(|l| l.contains(r#""event":"dropped""#))
            .count();
        // burst 1, 8, 16 logged; 2..=7, 9..=15, 17..=20 coalesced.
        assert_eq!(drops, 3);
        assert_eq!(engine.stats().drops_backpressure, 20);
        assert!(engine
            .log_lines()
            .iter()
            .any(|l| l.contains(r#""event":"recovered""#) && l.contains(r#""burst":20"#)));
        assert_eq!(engine.stats().recoveries, 1);
    }

    #[test]
    fn finish_appends_engine_stats_line() {
        let mut engine = Engine::new(fast_config(2, 8)).unwrap();
        engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
        engine.ingest_line("garbage");
        engine.finish();
        let stats_line = engine
            .log_lines()
            .last()
            .expect("log non-empty");
        assert!(stats_line.contains(r#""event":"engine_stats""#));
        assert!(stats_line.contains(r#""malformed":1"#));
        assert!(stats_line.contains(r#""sessions":1"#));
        assert!(stats_line.contains(r#""evicted":0"#));
        let obj = JsonObject::parse(stats_line).expect("stats line parses");
        assert!(obj.get_f64("peak_queued").is_some());
        assert_eq!(obj.get_f64("open_sessions"), Some(1.0));
    }

    #[test]
    fn log_lines_are_valid_jsonl_with_seq() {
        let lines = synthetic_lines();
        let log = run(fast_config(2, 128), &lines);
        let mut last = None;
        for line in &log {
            let obj = JsonObject::parse(line).expect("log line parses");
            let seq = obj.get_f64("seq").expect("seq present");
            assert!(obj.get_str("event").is_some());
            if let Some(prev) = last {
                assert!(seq >= prev, "log sorted by seq");
            }
            last = Some(seq);
        }
    }

    #[test]
    fn fast_parse_off_produces_identical_log() {
        // The zero-allocation path must be unobservable in the output:
        // clean lines, dirty lines, fused records, closes and reopens.
        let mut lines = synthetic_lines();
        lines.insert(100, "not json at all".to_string());
        lines.insert(
            200,
            "{\"tenant\":\"vm-a\",\"acc{\"tenant\":\"vm-a\",\"access\":1,\"miss\":2}".to_string(),
        );
        lines.insert(300, "{\"tenant\":\"vm\\u002da\",\"access\":7,\"miss\":3}".to_string());
        lines.insert(400, r#"{"tenant":"vm-c","ctl":"close"}"#.to_string());
        for workers in [1usize, 4] {
            let fast = run(fast_config(workers, 256), &lines);
            let slow = run(
                Config { fast_parse: false, ..fast_config(workers, 256) },
                &lines,
            );
            assert_eq!(fast, slow, "workers={workers}");
        }
    }

    #[test]
    fn profiler_fields_appear_only_when_enabled() {
        let run_stats_line = |prof: bool| {
            let mut engine =
                Engine::new(Config { prof, ..fast_config(1, 8) }).unwrap();
            engine.ingest_line(r#"{"tenant":"vm-0","access":1,"miss":2}"#);
            engine.finish();
            engine.log_lines().last().cloned().expect("stats line")
        };
        let plain = run_stats_line(false);
        assert!(!plain.contains("prof_decode_ns"));
        let profiled = run_stats_line(true);
        for key in [
            "prof_decode_ns",
            "prof_decode_bin_ns",
            "prof_dispatch_ns",
            "prof_step_ns",
            "prof_merge_ns",
            "prof_write_ns",
        ] {
            assert!(profiled.contains(key), "missing {key} in {profiled}");
        }
        let obj = JsonObject::parse(&profiled).expect("stats line parses");
        assert!(obj.get_f64("prof_decode_ns").is_some());
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(Engine::new(Config { workers: 0, ..Config::default() }).is_err());
        assert!(Engine::new(Config { batch: 0, ..Config::default() }).is_err());
        assert!(
            Engine::new(Config { drop_log_every: 0, ..Config::default() }).is_err()
        );
    }
}
