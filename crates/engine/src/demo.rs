//! The four-tenant demo replay.
//!
//! Generates a JSONL input stream from four independent simulated
//! servers — each one victim VM under a scheduled memory-DoS attack,
//! plus benign utility VMs — and interleaves their PCM samples
//! round-robin per tick, the shape a per-host monitoring agent would
//! produce. Two victims are periodic (FaceNet), two are not (KMeans,
//! Bayes); two face the bus-locking attack, two the LLC-cleansing
//! attack, covering both detection channels of the combined SDS:
//!
//! | tenant        | application | attack        | periodic |
//! |---------------|-------------|---------------|----------|
//! | `facenet-bus` | FaceNet     | bus locking   | yes      |
//! | `facenet-llc` | FaceNet     | LLC cleansing | yes      |
//! | `kmeans-bus`  | KMeans      | bus locking   | no       |
//! | `bayes-llc`   | Bayes       | LLC cleansing | no       |
//!
//! The attack runs in a bounded window
//! ([`DemoLayout::attack_start`]..[`DemoLayout::attack_stop`]) via
//! [`Scheduled::window`], after a profiling stretch sized for the
//! engine's Stage-1 profiler and a benign monitoring stretch, with a
//! post-attack tail that lets alarms clear. Generation is fully
//! deterministic in the seed, so the demo stream doubles as the fixture
//! for the replay-determinism tier-1 test.

use crate::config::Config;
use crate::protocol::Record;
use crate::session::SessionConfig;
use memdos_attacks::schedule::Scheduled;
use memdos_attacks::AttackKind;
use memdos_core::config::{SdsBParams, SdsPParams, SdsParams};
use memdos_core::detector::Observation;
use memdos_sim::server::{Server, ServerConfig};
use memdos_workloads::catalog::Application;

/// One demo tenant: an application under a scheduled attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemoTenant {
    /// Tenant id in the stream.
    pub name: &'static str,
    /// The protected application.
    pub app: Application,
    /// The attack launched inside the window.
    pub attack: AttackKind,
}

/// The four demo tenants, in stream interleaving order.
pub const TENANTS: [DemoTenant; 4] = [
    DemoTenant { name: "facenet-bus", app: Application::FaceNet, attack: AttackKind::BusLocking },
    DemoTenant { name: "facenet-llc", app: Application::FaceNet, attack: AttackKind::LlcCleansing },
    DemoTenant { name: "kmeans-bus", app: Application::KMeans, attack: AttackKind::BusLocking },
    DemoTenant { name: "bayes-llc", app: Application::Bayes, attack: AttackKind::LlcCleansing },
];

/// Benign utility VMs co-located with each victim.
const UTILITY_VMS: u64 = 3;

/// Tick layout of the demo stream (1 tick = `T_PCM` = 10 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemoLayout {
    /// Stage-1 profiling stretch (must match the engine's
    /// `profile_ticks`).
    pub profile_ticks: u64,
    /// Benign monitoring stretch before the attack.
    pub benign_ticks: u64,
    /// Attack window length.
    pub attack_ticks: u64,
    /// Post-attack tail (alarms clear here).
    pub tail_ticks: u64,
}

/// The default demo layout: 60 s profile (several FaceNet periods per
/// profile half), 12 s benign, 20 s attack, 3 s tail.
pub const LAYOUT: DemoLayout = DemoLayout {
    profile_ticks: 6_000,
    benign_ticks: 1_200,
    attack_ticks: 2_000,
    tail_ticks: 300,
};

impl DemoLayout {
    /// Absolute tick at which the attack activates.
    pub fn attack_start(&self) -> u64 {
        self.profile_ticks + self.benign_ticks
    }

    /// Absolute tick at which the attack deactivates.
    pub fn attack_stop(&self) -> u64 {
        self.attack_start() + self.attack_ticks
    }

    /// Total stream length per tenant, in ticks.
    pub fn total_ticks(&self) -> u64 {
        self.profile_ticks + self.benign_ticks + self.attack_ticks + self.tail_ticks
    }
}

/// SDS parameters for the demo: Table 1 values with the consecutive
/// thresholds relaxed (`H_C` 30→15, `H_P` 5→3, `ΔW_P` 10→5) so both
/// channels' minimum detection delay (750 ticks) fits well inside the
/// 2000-tick attack window.
pub fn demo_sds_params() -> SdsParams {
    SdsParams {
        sdsb: SdsBParams { h_c: 15, ..SdsBParams::default() },
        sdsp: SdsPParams { step_ma: 5, h_p: 3, ..SdsPParams::default() },
    }
}

/// Engine configuration matched to the demo stream.
pub fn demo_engine_config(workers: usize) -> Config {
    Config {
        workers,
        batch: 256,
        session: SessionConfig {
            profile_ticks: LAYOUT.profile_ticks,
            sds: demo_sds_params(),
            ..SessionConfig::default()
        },
        ..Config::default()
    }
}

/// The compact layout the chaos soak replays: the same four-phase shape
/// as [`LAYOUT`] shrunk to ~3.1 k ticks per tenant so a multi-seed,
/// multi-worker sweep stays fast. The profile stretch still spans
/// several FaceNet periods (Stage-1 periodicity detection works) and
/// the attack window still clears the demo SDS minimum detection delay
/// (750 ticks) with margin for chaos-induced sample loss, so attacked
/// tenants reach the quarantine → terminal-drop path.
pub const SOAK_LAYOUT: DemoLayout = DemoLayout {
    profile_ticks: 1_500,
    benign_ticks: 300,
    attack_ticks: 1_200,
    tail_ticks: 150,
};

/// Engine configuration matched to [`SOAK_LAYOUT`].
pub fn soak_engine_config(workers: usize) -> Config {
    Config {
        session: SessionConfig {
            profile_ticks: SOAK_LAYOUT.profile_ticks,
            ..demo_engine_config(workers).session
        },
        ..demo_engine_config(workers)
    }
}

/// Simulates one tenant's server and returns the victim's per-tick
/// `(access, miss)` trace.
fn tenant_trace(spec: &DemoTenant, seed: u64, layout: &DemoLayout) -> Vec<(f64, f64)> {
    let mut server = Server::new(ServerConfig { seed, ..ServerConfig::default() });
    let llc = server.config().geometry.lines() as u64;
    let geometry = server.config().geometry;
    let victim = server.add_vm(spec.app.name(), spec.app.build(llc));
    server.add_vm_parallel(
        "attacker",
        Box::new(Scheduled::window(
            layout.attack_start(),
            layout.attack_stop(),
            spec.attack.build(geometry),
        )),
        spec.attack.default_parallelism(),
    );
    for i in 0..UTILITY_VMS {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos_workloads::apps::utility::program(i)),
        );
    }
    let total = layout.total_ticks();
    let mut trace = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let report = server.tick();
        let sample = report
            .sample(victim)
            .map(|s| (s.accesses as f64, s.misses as f64))
            .unwrap_or((0.0, 0.0));
        trace.push(sample);
    }
    trace
}

/// Generates the demo JSONL stream: per-tenant traces (simulated on
/// `workers` threads — the output is identical at any count), then one
/// sample line per tenant per tick in [`TENANTS`] order, then one close
/// line per tenant.
pub fn demo_jsonl(seed: u64, layout: &DemoLayout, workers: usize) -> Vec<String> {
    let specs: Vec<(u64, DemoTenant)> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, spec)| (memdos_stats::rng::derive_seed(seed, i as u64), *spec))
        .collect();
    let traces = memdos_runner::parallel_map(&specs, workers, |(tenant_seed, spec)| {
        tenant_trace(spec, *tenant_seed, layout)
    });
    let total = layout.total_ticks() as usize;
    let mut lines = Vec::with_capacity(total * TENANTS.len() + TENANTS.len());
    for t in 0..total {
        for (spec, trace) in TENANTS.iter().zip(&traces) {
            if let Some(&(access, miss)) = trace.get(t) {
                lines.push(
                    Record::Sample {
                        tenant: spec.name.to_string(),
                        obs: Observation { access_num: access, miss_num: miss },
                    }
                    .to_line(),
                );
            }
        }
    }
    for spec in &TENANTS {
        lines.push(Record::Close { tenant: spec.name.to_string() }.to_line());
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_across_workers() {
        let layout = DemoLayout {
            profile_ticks: 100,
            benign_ticks: 50,
            attack_ticks: 60,
            tail_ticks: 10,
        };
        let a = demo_jsonl(7, &layout, 1);
        let b = demo_jsonl(7, &layout, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 220 * TENANTS.len() + TENANTS.len());
        // A different seed produces a different stream.
        assert_ne!(demo_jsonl(8, &layout, 1), a);
    }

    #[test]
    fn stream_lines_parse_and_interleave_round_robin() {
        let layout =
            DemoLayout { profile_ticks: 10, benign_ticks: 5, attack_ticks: 5, tail_ticks: 1 };
        let lines = demo_jsonl(1, &layout, 1);
        for (i, line) in lines.iter().enumerate() {
            let record = Record::parse(line).expect("demo line parses");
            let expected = TENANTS
                .get(i % TENANTS.len())
                .map(|s| s.name)
                .unwrap_or("");
            assert_eq!(record.tenant(), expected, "line {i}");
        }
        let closes = lines.iter().filter(|l| l.contains(r#""ctl":"close""#)).count();
        assert_eq!(closes, TENANTS.len());
    }

    #[test]
    fn layout_arithmetic() {
        assert_eq!(LAYOUT.attack_start(), 7_200);
        assert_eq!(LAYOUT.attack_stop(), 9_200);
        assert_eq!(LAYOUT.total_ticks(), 9_500);
        // The engine config profiles exactly the profile stretch.
        let cfg = demo_engine_config(2);
        assert_eq!(cfg.session.profile_ticks, LAYOUT.profile_ticks);
        assert!(cfg.validate().is_ok());
        // Both channels' minimum delay fits the attack window.
        let params = demo_sds_params();
        assert!(params.sdsb.min_detection_delay_ticks() <= LAYOUT.attack_ticks);
        assert!(params.sdsp.min_detection_delay_ticks() <= LAYOUT.attack_ticks);
    }
}
