//! Per-tenant detection sessions.
//!
//! One [`Session`] monitors one VM through an explicit lifecycle:
//!
//! ```text
//! Profiling ──profile ok──▶ Monitoring ──alarm budget──▶ Quarantined
//!     │                          │
//!     └─profile failed──▶ Closed ◀──────── close ────────────┘
//! ```
//!
//! During `Profiling` the samples feed the Stage-1 [`Profiler`]; once
//! `profile_ticks` samples arrive the profile is finalised and the
//! detector stack is built through the uniform [`FromProfile`] surface —
//! the combined SDS always, the KStest baseline optionally for
//! comparison. During `Monitoring` every sample steps every detector via
//! the [`Detector`] trait and verdict-class transitions are emitted as
//! events. KStest throttle requests are ignored in this passive streaming
//! mode (there is no hypervisor behind a JSONL stream to throttle).
//!
//! Samples are queued in a bounded ring buffer between engine flushes;
//! when the queue is full the [`DropPolicy`] decides which side loses,
//! and every drop is logged so backpressure is visible, never silent.

use memdos_core::config::{KsTestParams, SdsParams};
use memdos_core::detector::{Detector, DetectorStep, Observation, ObservationBatch, Verdict};
use memdos_core::kstest::KsTestDetector;
use memdos_core::profile::{Profiler, ProfilerConfig};
use memdos_core::sds::Sds;
use memdos_core::CoreError;
use memdos_metrics::jsonl::JsonObject;
use std::collections::VecDeque;

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Collecting the Stage-1 benign profile.
    Profiling,
    /// Detector stack armed; verdict transitions are logged.
    Monitoring,
    /// Alarm budget exhausted; samples are discarded.
    Quarantined,
    /// Closed by the tenant or by a failed profile; samples are
    /// discarded.
    Closed,
}

impl SessionState {
    /// Stable lowercase label used in the event log.
    pub fn label(&self) -> &'static str {
        match self {
            SessionState::Profiling => "profiling",
            SessionState::Monitoring => "monitoring",
            SessionState::Quarantined => "quarantined",
            SessionState::Closed => "closed",
        }
    }
}

/// What to discard when a session's sample queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DropPolicy {
    /// Evict the oldest queued sample to admit the new one (the stream
    /// stays fresh; detector state skips a tick).
    #[default]
    Oldest,
    /// Reject the incoming sample (queued history wins).
    Newest,
}

impl DropPolicy {
    /// Stable lowercase label used in the event log.
    pub fn label(&self) -> &'static str {
        match self {
            DropPolicy::Oldest => "oldest",
            DropPolicy::Newest => "newest",
        }
    }

    /// Parses the `MEMDOS_ENGINE_DROP` spelling.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for anything but `oldest`/`newest`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "oldest" => Ok(DropPolicy::Oldest),
            "newest" => Ok(DropPolicy::Newest),
            other => Err(format!(
                "unknown drop policy {other:?} (expected \"oldest\" or \"newest\")"
            )),
        }
    }
}

/// Why a session transitioned to `Closed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The tenant sent a `ctl:close` record.
    Ctl,
    /// The engine closed the session after an idle gap (no records for
    /// more than `idle_timeout` arrival indices).
    Idle,
    /// The engine evicted the least-recently-seen session to stay under
    /// its memory ceiling (`Config::max_sessions`). The tenant may
    /// reopen as a new generation the next time it speaks.
    Evicted,
    /// The mitigation loop released a false quarantine: the control was
    /// lifted and the session closes so the tenant deterministically
    /// re-profiles as a new generation on its next sample.
    Released,
    /// The mitigation ladder escalated to eviction: the confirmed
    /// attacker's session is closed and its control sticks.
    Escalated,
}

impl CloseReason {
    /// Stable lowercase label used in the event log.
    pub fn label(&self) -> &'static str {
        match self {
            CloseReason::Ctl => "ctl",
            CloseReason::Idle => "idle",
            CloseReason::Evicted => "evicted",
            CloseReason::Released => "released",
            CloseReason::Escalated => "escalated",
        }
    }
}

/// Configuration shared by every session an engine opens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Samples consumed by Stage-1 profiling before monitoring starts.
    pub profile_ticks: u64,
    /// SDS parameters for the profiler and the primary detector.
    pub sds: SdsParams,
    /// When set, a KStest baseline detector runs beside SDS (its
    /// throttle requests are ignored — passive streaming mode).
    pub kstest: Option<KsTestParams>,
    /// Primary-detector alarm activations before the session is
    /// quarantined; `0` disables quarantine.
    pub quarantine_after: u64,
    /// Bounded sample-queue capacity between engine flushes.
    pub queue_capacity: usize,
    /// Which sample loses when the queue is full.
    pub drop_policy: DropPolicy,
    /// Arrival-index gap after which the engine closes an inactive
    /// session (`Closed` with reason `idle`); `0` disables the timeout.
    /// Measured in global `seq` ticks, not wall-clock time, so the
    /// transition replays deterministically.
    pub idle_timeout: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            profile_ticks: 6_000,
            sds: SdsParams::default(),
            kstest: None,
            quarantine_after: 0,
            queue_capacity: 1_024,
            drop_policy: DropPolicy::Oldest,
            idle_timeout: 0,
        }
    }
}

impl SessionConfig {
    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.sds.validate()?;
        if let Some(ks) = &self.kstest {
            ks.validate()?;
        }
        if self.profile_ticks == 0 {
            return Err(CoreError::InvalidParameter {
                name: "profile_ticks",
                reason: "must be positive",
            });
        }
        if self.queue_capacity == 0 {
            return Err(CoreError::InvalidParameter {
                name: "queue_capacity",
                reason: "must be positive",
            });
        }
        Ok(())
    }
}

/// One queued unit of work: a sample or a close request, tagged with the
/// engine-assigned global arrival index.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Item {
    /// A PCM sample.
    Obs(u64, Observation),
    /// A close request (from the tenant or the idle timeout).
    Close(u64, CloseReason),
}

impl Item {
    fn seq(&self) -> u64 {
        match self {
            Item::Obs(seq, _) | Item::Close(seq, _) => *seq,
        }
    }
}

/// What happened to an offered sample, so the engine can log drops
/// (coalesced) and recoveries without peeking into the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Offered {
    /// Queued normally.
    Admitted,
    /// Queued normally after a drop burst — the queue recovered; `burst`
    /// is the number of samples lost in the burst that just ended.
    Recovered {
        /// Samples lost in the burst that just ended.
        burst: u64,
    },
    /// Lost. `terminal` distinguishes a quarantined/closed session from
    /// backpressure; `burst` counts consecutive losses so far and
    /// `total` the session's lifetime losses.
    Dropped {
        /// Dropped because the session is quarantined or closed.
        terminal: bool,
        /// Consecutive losses in the current burst.
        burst: u64,
        /// Lifetime losses.
        total: u64,
    },
}

/// One event produced by session processing, ordered globally by
/// `(seq, sub)` — the arrival index of the input item that produced it,
/// then emission order within that item.
#[derive(Debug, Clone)]
pub struct SessionEvent {
    /// Global arrival index of the triggering input line.
    pub seq: u64,
    /// Emission order among events of the same input line.
    pub sub: u32,
    /// The serialized JSONL payload (without `seq` — appended by the
    /// engine when writing the log).
    pub payload: JsonObject,
}

/// A read-only introspection snapshot of one tenant session — the
/// stable public surface for fleet observers (the `engine_fleet` bench,
/// the `demo` summary, external monitoring), so nothing outside this
/// module reaches into `Session` internals. Obtained from
/// `Engine::snapshots()` / `Engine::snapshot()`; `live: false` marks a
/// retired incarnation whose memory was reclaimed and whose counters
/// are served from the engine's retained final accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSnapshot<'a> {
    /// The tenant this session monitors.
    pub tenant: &'a str,
    /// Incarnation of the tenant (0 = first session, +1 per reopen).
    pub generation: u32,
    /// Current lifecycle state (always `Closed` when not live).
    pub state: SessionState,
    /// `true` while the session is resident in the engine; `false` once
    /// its slot was reclaimed (closed and drained).
    pub live: bool,
    /// Items queued for the next engine flush.
    pub queued: usize,
    /// Estimated resident heap bytes (see [`Session::resident_bytes`];
    /// 0 when not live).
    pub resident_bytes: usize,
    /// Samples accepted over the incarnation's lifetime.
    pub ingested: u64,
    /// Samples lost to backpressure or a terminal state.
    pub dropped: u64,
    /// Primary-detector alarm activations.
    pub alarms: u64,
    /// Monitored access level over the profile baseline (see
    /// [`Session::recovery_ratio`]); `None` outside `Monitoring`.
    pub recovery_ratio: Option<f64>,
    /// Mitigation case attached to this tenant, if any (filled in by
    /// the engine — a session does not know it is being mitigated).
    pub mitigation: Option<crate::mitigation::MitigationStatus>,
}

/// Smoothing factor of the per-session recovery EWMA: heavy enough to
/// damp sample jitter, light enough that a mitigated attack shows up
/// within a handful of victim samples.
const RECOVERY_ALPHA: f64 = 0.2;

/// Reusable per-worker columnar buffers for the monitoring batch path:
/// a run of consecutive queued samples is transposed into
/// structure-of-arrays columns so every armed detector steps the whole
/// run through its branch-light [`Detector::step_batch`] loop, and the
/// per-detector step columns (detector-major) are then replayed in the
/// exact scalar emission order. Shared by every session on the worker
/// between flushes, so steady-state batching allocates nothing.
#[derive(Default)]
struct BatchScratch {
    seqs: Vec<u64>,
    access: Vec<f64>,
    miss: Vec<f64>,
    steps: Vec<Vec<DetectorStep>>,
}

thread_local! {
    // lint:allow(shared-state) -- per-worker columnar scratch; thread_local makes it worker-private by construction
    static SCRATCH: std::cell::RefCell<BatchScratch> = std::cell::RefCell::new(BatchScratch::default());
}

/// A per-tenant detection session.
pub struct Session {
    tenant: String,
    config: SessionConfig,
    state: SessionState,
    profiler: Option<Profiler>,
    detectors: Vec<Box<dyn Detector + Send>>,
    last_verdicts: Vec<Verdict>,
    queue: VecDeque<Item>,
    /// Monitoring ticks consumed (starts counting after the profile).
    monitor_ticks: u64,
    ingested: u64,
    dropped: u64,
    /// Consecutive drops in the current burst (0 = queue healthy).
    drop_burst: u64,
    /// Drop bursts that ended with the queue admitting again.
    recoveries: u64,
    alarms: u64,
    /// Incarnation of this tenant: 0 for the first session, +1 for every
    /// reopen after a close (tenant churn).
    generation: u32,
    opened_logged: bool,
    /// Profile-time mean `AccessNum` (`Profile.access.mu`), captured
    /// when the detector stack arms; 0 until then. The denominator of
    /// [`Session::recovery_ratio`].
    baseline_access: f64,
    /// EWMA of the monitored `AccessNum`, seeded at the baseline — the
    /// smoothed live level the mitigation loop compares against the
    /// baseline to decide whether this (victim) tenant is degraded.
    ewma_access: f64,
    /// Arrival index of the sample that quarantined this session, kept
    /// until the engine's mitigation step consumes it.
    quarantine_notice: Option<u64>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant)
            .field("state", &self.state)
            .field("ingested", &self.ingested)
            .field("dropped", &self.dropped)
            .field("alarms", &self.alarms)
            .finish()
    }
}

impl Session {
    /// Opens a session in the `Profiling` state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid `config`.
    pub fn open(tenant: impl Into<String>, config: SessionConfig) -> Result<Self, CoreError> {
        Session::open_generation(tenant, config, 0)
    }

    /// Opens a later incarnation of a churned tenant: same contract as
    /// [`Session::open`], but the `opened` event carries the generation
    /// so reopen-after-close is visible in the log.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid `config`.
    pub fn open_generation(
        tenant: impl Into<String>,
        config: SessionConfig,
        generation: u32,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let profiler = Profiler::new(ProfilerConfig {
            sds: config.sds,
            ..ProfilerConfig::default()
        })?;
        Ok(Session {
            tenant: tenant.into(),
            config,
            state: SessionState::Profiling,
            profiler: Some(profiler),
            detectors: Vec::new(),
            last_verdicts: Vec::new(),
            queue: VecDeque::with_capacity(config.queue_capacity),
            monitor_ticks: 0,
            ingested: 0,
            dropped: 0,
            drop_burst: 0,
            recoveries: 0,
            alarms: 0,
            generation,
            opened_logged: false,
            baseline_access: 0.0,
            ewma_access: 0.0,
            quarantine_notice: None,
        })
    }

    /// The tenant id this session monitors.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Samples accepted so far (queued or processed).
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Samples lost to backpressure or to a terminal state.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop bursts that ended with the queue admitting samples again.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Primary-detector alarm activations so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Incarnation of this tenant (0 = first session, +1 per reopen).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Queued items awaiting the next engine flush.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The monitored access level relative to the profile baseline:
    /// `EWMA(AccessNum) / Profile.access.mu`. `None` until the detector
    /// stack is armed (no baseline yet) or once the session leaves
    /// `Monitoring` — only actively monitored sessions count as victims
    /// for the mitigation loop's recovery confirmation.
    pub fn recovery_ratio(&self) -> Option<f64> {
        if self.state != SessionState::Monitoring || !(self.baseline_access > 0.0) {
            return None;
        }
        Some(self.ewma_access / self.baseline_access)
    }

    /// Consumes the pending quarantine notice: the arrival index of the
    /// sample whose alarm quarantined this session. Set exactly once per
    /// incarnation; the engine's mitigation step drains it at the flush
    /// boundary (even if an ingest-side close has since landed — that is
    /// how a quarantine-while-closing is detected and skipped).
    pub(crate) fn take_quarantine_notice(&mut self) -> Option<u64> {
        self.quarantine_notice.take()
    }

    /// Read-only introspection snapshot of this (live) session.
    pub fn snapshot(&self) -> SessionSnapshot<'_> {
        SessionSnapshot {
            tenant: &self.tenant,
            generation: self.generation,
            state: self.state,
            live: true,
            queued: self.queue.len(),
            resident_bytes: self.resident_bytes(),
            ingested: self.ingested,
            dropped: self.dropped,
            alarms: self.alarms,
            recovery_ratio: self.recovery_ratio(),
            mitigation: None,
        }
    }

    /// Estimated heap bytes this session keeps resident: the tenant
    /// name, the sample queue, the profiler's smoothing buffers and each
    /// armed detector's working set (via
    /// [`Detector::resident_bytes_hint`]). This is a deterministic
    /// capacity-based accounting estimate, not an allocator measurement
    /// — it exists so a ceiling/eviction decision and the fleet bench
    /// read the same number on every run.
    pub fn resident_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Session>()
            + self.tenant.capacity()
            + self.queue.capacity() * std::mem::size_of::<Item>()
            + self.last_verdicts.capacity() * std::mem::size_of::<Verdict>();
        if let Some(p) = &self.profiler {
            bytes += p.resident_bytes_hint();
        }
        for det in &self.detectors {
            bytes += std::mem::size_of::<Box<dyn Detector + Send>>() + det.resident_bytes_hint();
        }
        bytes
    }

    /// Releases the working set of a terminal session that must stay
    /// resident (quarantined, or closed worker-side with no ingest-side
    /// close): detectors, profiler and queue capacity are dropped, the
    /// identity and counters remain so later samples still drop against
    /// the right policy and the final accounting stays intact. Terminal
    /// states never process another observation, so nothing behavioural
    /// is lost. No-op for live sessions or non-empty queues.
    pub(crate) fn shrink_terminal(&mut self) {
        let terminal =
            matches!(self.state, SessionState::Quarantined | SessionState::Closed);
        if !terminal || !self.queue.is_empty() {
            return;
        }
        self.profiler = None;
        self.detectors = Vec::new();
        self.last_verdicts = Vec::new();
        self.queue.shrink_to_fit();
    }

    /// Enqueues one sample under the backpressure policy, reporting what
    /// happened so the engine can log drops and recoveries.
    pub(crate) fn offer(&mut self, seq: u64, obs: Observation) -> Offered {
        if matches!(self.state, SessionState::Quarantined | SessionState::Closed) {
            self.dropped += 1;
            self.drop_burst += 1;
            return Offered::Dropped {
                terminal: true,
                burst: self.drop_burst,
                total: self.dropped,
            };
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.dropped += 1;
            self.drop_burst += 1;
            match self.config.drop_policy {
                DropPolicy::Oldest => {
                    self.queue.pop_front();
                    self.ingested += 1;
                    self.queue.push_back(Item::Obs(seq, obs));
                }
                DropPolicy::Newest => {}
            }
            return Offered::Dropped {
                terminal: false,
                burst: self.drop_burst,
                total: self.dropped,
            };
        }
        self.ingested += 1;
        self.queue.push_back(Item::Obs(seq, obs));
        if self.drop_burst > 0 {
            let burst = self.drop_burst;
            self.drop_burst = 0;
            self.recoveries += 1;
            return Offered::Recovered { burst };
        }
        Offered::Admitted
    }

    /// Enqueues a close request (always admitted — control traffic is
    /// not subject to the sample drop policy).
    pub(crate) fn offer_close(&mut self, seq: u64, reason: CloseReason) {
        self.queue.push_back(Item::Close(seq, reason));
    }

    /// Drains the queue through the lifecycle, collecting the session's
    /// events for this flush.
    #[cfg(test)]
    pub(crate) fn process_queued(&mut self) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        self.process_queued_into(&mut events);
        events
    }

    /// Drains the queue through the lifecycle, appending the session's
    /// events for this flush to `events` — the engine passes a recycled
    /// buffer so the steady-state flush allocates nothing here.
    // hot-path
    pub(crate) fn process_queued_into(&mut self, events: &mut Vec<SessionEvent>) {
        while let Some(item) = self.queue.pop_front() {
            // Steady-state fast path: a monitoring session consuming a
            // sample takes the columnar batch route, which also swallows
            // the run of consecutive samples queued behind it. Control
            // items, state transitions and the once-per-incarnation
            // `opened` event stay on the scalar path below.
            if self.opened_logged && self.state == SessionState::Monitoring {
                if let Item::Obs(seq, obs) = item {
                    self.step_monitoring_run(seq, obs, events);
                    continue;
                }
            }
            let seq = item.seq();
            let mut sub = 0u32;
            let mut emit = |payload: JsonObject| {
                events.push(SessionEvent { seq, sub, payload });
                sub += 1;
            };
            if !self.opened_logged {
                self.opened_logged = true;
                let mut o = JsonObject::new();
                o.push_str("event", "opened")
                    .push_str("tenant", &self.tenant)
                    .push_num("gen", self.generation as f64);
                emit(o);
            }
            match item {
                Item::Close(_, reason) => {
                    // Idempotent: duplicated close records (redelivery,
                    // chaos) log a single transition.
                    if self.state == SessionState::Closed {
                        continue;
                    }
                    self.state = SessionState::Closed;
                    let mut o = JsonObject::new();
                    o.push_str("event", "closed")
                        .push_str("tenant", &self.tenant)
                        .push_str("reason", reason.label())
                        .push_num("ingested", self.ingested as f64)
                        .push_num("dropped", self.dropped as f64)
                        .push_num("alarms", self.alarms as f64);
                    emit(o);
                }
                Item::Obs(_, obs) => match self.state {
                    SessionState::Profiling => self.step_profiling(obs, &mut emit),
                    SessionState::Monitoring => {
                        self.step_monitoring(obs, &mut emit);
                        if self.state == SessionState::Quarantined {
                            self.quarantine_notice = Some(seq);
                        }
                    }
                    SessionState::Quarantined | SessionState::Closed => {
                        // Items queued before the state flipped; counted
                        // when offered, nothing to process.
                        self.dropped += 1;
                    }
                },
            }
        }
    }

    fn step_profiling(&mut self, obs: Observation, emit: &mut impl FnMut(JsonObject)) {
        let Some(profiler) = self.profiler.as_mut() else {
            return;
        };
        profiler.observe(obs);
        if profiler.observations() < self.config.profile_ticks {
            return;
        }
        // Profile complete: arm the detector stack.
        let Some(profiler) = self.profiler.take() else {
            return;
        };
        match profiler.finish().and_then(|profile| {
            let mut stack: Vec<Box<dyn Detector + Send>> =
                vec![Box::new(Sds::from_profile(&profile, &self.config.sds)?)];
            if let Some(ks) = &self.config.kstest {
                stack.push(Box::new(KsTestDetector::from_profile(&profile, ks)?));
            }
            Ok((profile, stack))
        }) {
            Ok((profile, stack)) => {
                self.last_verdicts = vec![Verdict::Normal; stack.len()];
                self.detectors = stack;
                self.state = SessionState::Monitoring;
                self.baseline_access = profile.access.mu;
                self.ewma_access = profile.access.mu;
                let mut o = JsonObject::new();
                o.push_str("event", "profile_ready")
                    .push_str("tenant", &self.tenant)
                    .push_bool("periodic", profile.is_periodic());
                if let Some(p) = &profile.periodicity {
                    o.push_num("period_ma", p.period_ma);
                }
                emit(o);
            }
            Err(e) => {
                self.state = SessionState::Closed;
                let mut o = JsonObject::new();
                o.push_str("event", "profile_failed")
                    .push_str("tenant", &self.tenant)
                    // lint:allow(hot-propagate) -- rendering the failure reason happens once, on the transition that closes the session
                    .push_str("reason", e.to_string());
                emit(o);
            }
        }
    }

    fn step_monitoring(&mut self, obs: Observation, emit: &mut impl FnMut(JsonObject)) {
        self.monitor_ticks += 1;
        self.ewma_access += RECOVERY_ALPHA * (obs.access_num - self.ewma_access);
        let mut primary_became_active = false;
        for (i, det) in self.detectors.iter_mut().enumerate() {
            // Throttle requests (KStest) are ignored: passive streaming.
            let step = det.on_observation(obs);
            if i == 0 && step.became_active {
                primary_became_active = true;
            }
            let Some(last) = self.last_verdicts.get_mut(i) else {
                continue;
            };
            if !step.verdict.same_class(last) {
                let mut o = JsonObject::new();
                o.push_str("event", "verdict")
                    .push_str("tenant", &self.tenant)
                    .push_str("detector", det.name())
                    .push_str("from", last.label())
                    .push_str("to", step.verdict.label())
                    .push_num("tick", self.monitor_ticks as f64);
                emit(o);
                *last = step.verdict;
            }
        }
        if primary_became_active {
            self.alarms += 1;
            if self.config.quarantine_after > 0 && self.alarms >= self.config.quarantine_after
            {
                self.state = SessionState::Quarantined;
                let mut o = JsonObject::new();
                o.push_str("event", "quarantined")
                    .push_str("tenant", &self.tenant)
                    .push_num("alarms", self.alarms as f64);
                emit(o);
            }
        }
    }

    /// Gathers the run of consecutive queued samples starting at
    /// `(seq0, obs0)` into the worker's columnar scratch and batch-steps
    /// it. Only called with `state == Monitoring` and the `opened` event
    /// already emitted, so every event the run produces follows the
    /// scalar per-item emission rules exactly.
    // hot-path
    fn step_monitoring_run(
        &mut self,
        seq0: u64,
        obs0: Observation,
        events: &mut Vec<SessionEvent>,
    ) {
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let scratch = &mut *scratch;
            scratch.seqs.clear();
            scratch.access.clear();
            scratch.miss.clear();
            scratch.seqs.push(seq0);
            scratch.access.push(obs0.access_num);
            scratch.miss.push(obs0.miss_num);
            while let Some(&Item::Obs(seq, obs)) = self.queue.front() {
                scratch.seqs.push(seq);
                scratch.access.push(obs.access_num);
                scratch.miss.push(obs.miss_num);
                self.queue.pop_front();
            }
            self.step_monitoring_batch(scratch, events);
        });
    }

    /// Steps every armed detector over one columnar run and replays the
    /// per-tick emission in scalar order. Bit-identical to calling
    /// [`Session::step_monitoring`] once per sample: the primary steps
    /// the whole run first so a mid-run quarantine can cut the batch at
    /// the exact sample the scalar loop would have stopped processing
    /// at; secondaries then step the surviving prefix and the trailing
    /// samples are dropped, matching the scalar terminal-state arm.
    // hot-path
    fn step_monitoring_batch(
        &mut self,
        scratch: &mut BatchScratch,
        events: &mut Vec<SessionEvent>,
    ) {
        let BatchScratch { seqs, access, miss, steps } = scratch;
        let n = seqs.len();
        while steps.len() < self.detectors.len() {
            steps.push(Vec::new());
        }
        for col in steps.iter_mut() {
            col.clear();
        }
        let batch = ObservationBatch::new(access, miss);
        let mut dets = self.detectors.iter_mut().zip(steps.iter_mut());
        let mut cut = n;
        if let Some((primary, out)) = dets.next() {
            primary.step_batch(batch, out);
            if self.config.quarantine_after > 0 {
                // Walk the primary's alarm stream to find where a
                // quarantine would cut the run short. Oversteppping the
                // primary past the cut is unobservable: its session is
                // terminal afterwards and only `alarms` up to the cut
                // are ever accounted.
                let mut alarms = self.alarms;
                for (i, step) in out.iter().enumerate() {
                    if step.became_active {
                        alarms += 1;
                        if alarms >= self.config.quarantine_after {
                            cut = i + 1;
                            break;
                        }
                    }
                }
            }
            let prefix = ObservationBatch::new(
                access.get(..cut).unwrap_or(access),
                miss.get(..cut).unwrap_or(miss),
            );
            for (det, out) in dets {
                det.step_batch(prefix, out);
            }
        }
        for i in 0..cut {
            let Some(&seq) = seqs.get(i) else {
                break;
            };
            let mut sub = 0u32;
            self.monitor_ticks += 1;
            let access_num = access.get(i).copied().unwrap_or(0.0);
            self.ewma_access += RECOVERY_ALPHA * (access_num - self.ewma_access);
            let mut primary_became_active = false;
            for (d, det) in self.detectors.iter().enumerate() {
                // Throttle requests (KStest) are ignored: passive
                // streaming, same as the scalar path.
                let Some(step) = steps.get(d).and_then(|col| col.get(i)).copied() else {
                    continue;
                };
                if d == 0 && step.became_active {
                    primary_became_active = true;
                }
                let Some(last) = self.last_verdicts.get_mut(d) else {
                    continue;
                };
                if !step.verdict.same_class(last) {
                    let mut o = JsonObject::new();
                    o.push_str("event", "verdict")
                        .push_str("tenant", &self.tenant)
                        .push_str("detector", det.name())
                        .push_str("from", last.label())
                        .push_str("to", step.verdict.label())
                        .push_num("tick", self.monitor_ticks as f64);
                    events.push(SessionEvent { seq, sub, payload: o });
                    sub += 1;
                    *last = step.verdict;
                }
            }
            if primary_became_active {
                self.alarms += 1;
                if self.config.quarantine_after > 0
                    && self.alarms >= self.config.quarantine_after
                {
                    self.state = SessionState::Quarantined;
                    let mut o = JsonObject::new();
                    o.push_str("event", "quarantined")
                        .push_str("tenant", &self.tenant)
                        .push_num("alarms", self.alarms as f64);
                    events.push(SessionEvent { seq, sub, payload: o });
                    self.quarantine_notice = Some(seq);
                }
            }
        }
        // Samples behind a mid-run quarantine: the scalar loop would
        // have hit the terminal-state arm once per item.
        self.dropped += (n - cut) as u64;
    }

    /// One `dropped` event payload (the engine logs it at the arrival
    /// index of the sample that overflowed the queue, coalescing bursts).
    pub(crate) fn drop_event(&self, terminal: bool, burst: u64) -> JsonObject {
        let mut o = JsonObject::new();
        o.push_str("event", "dropped")
            .push_str("tenant", &self.tenant)
            .push_str("policy", self.config.drop_policy.label())
            .push_bool("terminal", terminal)
            .push_num("burst", burst as f64)
            .push_num("total", self.dropped as f64);
        o
    }

    /// One `recovered` event payload: the queue admitted a sample again
    /// after a drop burst of `burst` samples.
    pub(crate) fn recovered_event(&self, burst: u64) -> JsonObject {
        let mut o = JsonObject::new();
        o.push_str("event", "recovered")
            .push_str("tenant", &self.tenant)
            .push_num("burst", burst as f64);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> SessionConfig {
        SessionConfig {
            profile_ticks: 2_000,
            queue_capacity: 8_192,
            ..SessionConfig::default()
        }
    }

    fn flat_obs(i: u64) -> Observation {
        Observation {
            access_num: 1000.0 + (i % 10) as f64,
            miss_num: 100.0 + (i % 5) as f64,
        }
    }

    fn feed(s: &mut Session, seq0: u64, n: u64, f: impl Fn(u64) -> Observation) -> Vec<SessionEvent> {
        for i in 0..n {
            s.offer(seq0 + i, f(i));
        }
        s.process_queued()
    }

    #[test]
    fn lifecycle_profiling_to_monitoring() {
        let mut s = Session::open("vm-0", fast_config()).unwrap();
        assert_eq!(s.state(), SessionState::Profiling);
        let events = feed(&mut s, 0, 2_000, flat_obs);
        assert_eq!(s.state(), SessionState::Monitoring);
        let kinds: Vec<&str> =
            events.iter().filter_map(|e| e.payload.get_str("event")).collect();
        assert_eq!(kinds, ["opened", "profile_ready"]);
        assert_eq!(events[1].payload.get("periodic").is_some(), true);
    }

    #[test]
    fn attack_produces_verdict_transitions_and_alarm() {
        let cfg = fast_config();
        let mut s = Session::open("vm-0", cfg).unwrap();
        feed(&mut s, 0, 2_000, flat_obs);
        // Benign monitoring: no transitions expected beyond brief
        // suspicion jitter; then a bus-lock-style collapse.
        feed(&mut s, 2_000, 500, flat_obs);
        let events = feed(&mut s, 2_500, 2_500, |_| Observation {
            access_num: 100.0,
            miss_num: 100.0,
        });
        let alarms: Vec<&SessionEvent> = events
            .iter()
            .filter(|e| {
                e.payload.get_str("event") == Some("verdict")
                    && e.payload.get_str("to") == Some("alarm")
            })
            .collect();
        assert!(!alarms.is_empty(), "collapse must raise an SDS alarm");
        assert!(s.alarms() >= 1);
        // Events are (seq, sub)-ordered as produced.
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| (e.seq, e.sub));
        assert_eq!(
            events.iter().map(|e| (e.seq, e.sub)).collect::<Vec<_>>(),
            sorted.iter().map(|e| (e.seq, e.sub)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn quarantine_after_alarm_budget() {
        let cfg = SessionConfig { quarantine_after: 1, ..fast_config() };
        let mut s = Session::open("vm-0", cfg).unwrap();
        feed(&mut s, 0, 2_000, flat_obs);
        let events = feed(&mut s, 2_000, 3_000, |_| Observation {
            access_num: 100.0,
            miss_num: 100.0,
        });
        assert_eq!(s.state(), SessionState::Quarantined);
        assert!(events
            .iter()
            .any(|e| e.payload.get_str("event") == Some("quarantined")));
        // Further samples are discarded, not processed.
        let before = s.dropped();
        s.offer(9_999, flat_obs(0));
        assert_eq!(s.dropped(), before + 1);
    }

    #[test]
    fn close_emits_final_accounting() {
        let mut s = Session::open("vm-0", fast_config()).unwrap();
        feed(&mut s, 0, 100, flat_obs);
        s.offer_close(100, CloseReason::Ctl);
        let events = s.process_queued();
        let closed = events
            .iter()
            .find(|e| e.payload.get_str("event") == Some("closed"))
            .expect("close event");
        assert_eq!(closed.payload.get_f64("ingested"), Some(100.0));
        assert_eq!(s.state(), SessionState::Closed);
    }

    #[test]
    fn drop_policy_oldest_keeps_stream_fresh() {
        let cfg = SessionConfig { queue_capacity: 4, ..fast_config() };
        let mut s = Session::open("vm-0", cfg).unwrap();
        for i in 0..6u64 {
            s.offer(i, flat_obs(i));
        }
        assert_eq!(s.queued(), 4);
        assert_eq!(s.dropped(), 2);
        // The queue holds the 4 newest items (seqs 2..=5).
        let first_seq = match s.queue.front() {
            Some(Item::Obs(seq, _)) => *seq,
            _ => u64::MAX,
        };
        assert_eq!(first_seq, 2);
    }

    #[test]
    fn drop_policy_newest_rejects_incoming() {
        let cfg = SessionConfig {
            queue_capacity: 4,
            drop_policy: DropPolicy::Newest,
            ..fast_config()
        };
        let mut s = Session::open("vm-0", cfg).unwrap();
        for i in 0..6u64 {
            s.offer(i, flat_obs(i));
        }
        assert_eq!(s.queued(), 4);
        assert_eq!(s.dropped(), 2);
        let first_seq = match s.queue.front() {
            Some(Item::Obs(seq, _)) => *seq,
            _ => u64::MAX,
        };
        assert_eq!(first_seq, 0);
    }

    #[test]
    fn kstest_stack_runs_beside_sds() {
        let cfg = SessionConfig {
            kstest: Some(KsTestParams::default()),
            ..fast_config()
        };
        let mut s = Session::open("vm-0", cfg).unwrap();
        feed(&mut s, 0, 2_000, flat_obs);
        assert_eq!(s.state(), SessionState::Monitoring);
        assert_eq!(s.detectors.len(), 2);
        // Stepping both through a benign stretch panics nowhere and
        // leaves the session monitoring.
        feed(&mut s, 2_000, 1_000, flat_obs);
        assert_eq!(s.state(), SessionState::Monitoring);
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = SessionConfig { profile_ticks: 0, ..SessionConfig::default() };
        assert!(Session::open("vm-0", cfg).is_err());
        let cfg = SessionConfig { queue_capacity: 0, ..SessionConfig::default() };
        assert!(Session::open("vm-0", cfg).is_err());
    }

    #[test]
    fn drop_policy_parse() {
        assert_eq!(DropPolicy::parse("oldest"), Ok(DropPolicy::Oldest));
        assert_eq!(DropPolicy::parse(" newest "), Ok(DropPolicy::Newest));
        assert!(DropPolicy::parse("latest").is_err());
    }

    #[test]
    fn offer_reports_bursts_and_recovery() {
        let cfg = SessionConfig { queue_capacity: 2, ..fast_config() };
        let mut s = Session::open("vm-0", cfg).unwrap();
        assert_eq!(s.offer(0, flat_obs(0)), Offered::Admitted);
        assert_eq!(s.offer(1, flat_obs(1)), Offered::Admitted);
        assert_eq!(
            s.offer(2, flat_obs(2)),
            Offered::Dropped { terminal: false, burst: 1, total: 1 }
        );
        assert_eq!(
            s.offer(3, flat_obs(3)),
            Offered::Dropped { terminal: false, burst: 2, total: 2 }
        );
        // Drain the queue; the next offer is a recovery carrying the
        // burst size.
        s.process_queued();
        assert_eq!(s.offer(4, flat_obs(4)), Offered::Recovered { burst: 2 });
        assert_eq!(s.recoveries(), 1);
        assert_eq!(s.dropped(), 2);
    }

    #[test]
    fn duplicate_close_is_idempotent() {
        let mut s = Session::open("vm-0", fast_config()).unwrap();
        feed(&mut s, 0, 10, flat_obs);
        s.offer_close(10, CloseReason::Ctl);
        s.offer_close(11, CloseReason::Ctl);
        let events = s.process_queued();
        let closes = events
            .iter()
            .filter(|e| e.payload.get_str("event") == Some("closed"))
            .count();
        assert_eq!(closes, 1);
        assert_eq!(s.state(), SessionState::Closed);
    }

    #[test]
    fn close_reason_and_generation_are_logged() {
        let mut s = Session::open_generation("vm-0", fast_config(), 2).unwrap();
        assert_eq!(s.generation(), 2);
        s.offer(0, flat_obs(0));
        s.offer_close(1, CloseReason::Idle);
        let events = s.process_queued();
        let opened = events
            .iter()
            .find(|e| e.payload.get_str("event") == Some("opened"))
            .expect("opened event");
        assert_eq!(opened.payload.get_f64("gen"), Some(2.0));
        let closed = events
            .iter()
            .find(|e| e.payload.get_str("event") == Some("closed"))
            .expect("closed event");
        assert_eq!(closed.payload.get_str("reason"), Some("idle"));
    }
}
