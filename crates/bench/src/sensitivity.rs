//! Shared machinery for the sensitivity studies (Figs. 13–18).
//!
//! §5.3 sweeps one SDS parameter at a time and reports recall,
//! specificity and detection delay. Because SDS is a passive consumer of
//! PCM samples, the server simulation is captured **once per run** and
//! every parameter point is *replayed* over the same captured stream —
//! identical to how the paper evaluates all points on the same testbed,
//! and orders of magnitude cheaper than re-simulating per point.

use memdos_attacks::AttackKind;
use memdos_core::config::SdsParams;
use memdos_metrics::experiment::{CapturedRun, ExperimentConfig, RunMetrics, StageConfig};
use memdos_metrics::report::{fmt_summary, summarize, summarize_censored, Table};
use memdos_workloads::catalog::Application;

/// Which replayed detector a sweep evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepDetector {
    /// The combined SDS (the §5.3 default; k-means sweeps use this).
    Sds,
    /// SDS/P alone (the `W_P`/`ΔW_P` sweeps on FaceNet).
    SdsP,
}

/// One evaluated parameter point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label of the x-axis value (e.g. `"0.2"` for α = 0.2).
    pub label: String,
    /// Per-run metrics at this parameter value.
    pub runs: Vec<RunMetrics>,
}

/// Captures `n_runs` runs of `(app, attack)` and replays every
/// `(label, params)` point over them.
///
/// Both phases run on the parallel runner: the expensive server captures
/// fan out across runs, then the (cheap but numerous) parameter replays
/// fan out across points. Captures are keyed by run index and replays are
/// pure functions of a capture, so the output is identical to the old
/// sequential double loop.
pub fn sweep(
    app: Application,
    attack: AttackKind,
    stages: StageConfig,
    n_runs: u64,
    detector: SweepDetector,
    points: &[(String, SdsParams)],
) -> Vec<SweepPoint> {
    let cfg = ExperimentConfig { app, attack, stages, ..ExperimentConfig::default() };
    let workers = memdos_runner::threads();
    eprintln!("  capturing {attack} / {app} ({n_runs} run(s), {workers} worker(s))");
    let captures: Vec<CapturedRun> = memdos_runner::capture_runs(&cfg, n_runs, workers);
    memdos_runner::parallel_map(points, workers, |(label, params)| {
        let runs = captures
            .iter()
            .map(|cap| {
                let outcome = match detector {
                    SweepDetector::Sds => cap.replay_sds(params),
                    SweepDetector::SdsP => cap.replay_sdsp(params),
                }
                // lint:allow(panic) -- sweep grids are built from valid
                // parameter sets; a replay failure is a harness bug.
                .expect("replay with swept parameters must succeed");
                outcome.metrics(&stages)
            })
            .collect();
        SweepPoint { label: label.clone(), runs }
    })
}

/// Prints the three §5.3 panels (recall & specificity, then delay) for a
/// sweep, in the paper's median [p10, p90] format.
pub fn print_sweep(title: &str, x_name: &str, points: &[SweepPoint], stages: &StageConfig) {
    let mut table = Table::new(
        title,
        &[x_name, "recall", "specificity", "delay [s]"],
    );
    let censor = stages.attack_ticks as f64 * 0.01;
    for p in points {
        let recall = summarize(&p.runs.iter().map(|m| m.recall).collect::<Vec<_>>());
        let spec = summarize(&p.runs.iter().map(|m| m.specificity).collect::<Vec<_>>());
        let delay = summarize_censored(
            &p.runs.iter().map(|m| m.delay_secs).collect::<Vec<_>>(),
            censor,
        );
        table.push(vec![
            p.label.clone(),
            recall.map(|s| fmt_summary(&s, 2)).unwrap_or_default(),
            spec.map(|s| fmt_summary(&s, 2)).unwrap_or_default(),
            delay.map(|s| fmt_summary(&s, 1)).unwrap_or_default(),
        ]);
    }
    println!("{table}");
}

/// Median delay of a sweep point (censored at the stage length).
pub fn median_delay(p: &SweepPoint, stages: &StageConfig) -> f64 {
    let censor = stages.attack_ticks as f64 * 0.01;
    summarize_censored(
        &p.runs.iter().map(|m| m.delay_secs).collect::<Vec<_>>(),
        censor,
    )
    .map(|s| s.median)
    .unwrap_or(censor)
}

/// Median recall of a sweep point.
pub fn median_recall(p: &SweepPoint) -> f64 {
    summarize(&p.runs.iter().map(|m| m.recall).collect::<Vec<_>>())
        .map(|s| s.median)
        .unwrap_or(0.0)
}

/// Median specificity of a sweep point.
pub fn median_specificity(p: &SweepPoint) -> f64 {
    summarize(&p.runs.iter().map(|m| m.specificity).collect::<Vec<_>>())
        .map(|s| s.median)
        .unwrap_or(0.0)
}
