//! Shared figure-rendering helpers for the bench targets.

use memdos_attacks::AttackKind;
use memdos_metrics::experiment::capture_trace;
use memdos_stats::period::detect_period;
use memdos_stats::smoothing::MovingAverage;
use memdos_workloads::catalog::Application;

/// A compact sparkline of a series (eight levels), for terminal figures.
///
/// Degenerate input renders degenerately instead of misrendering: an
/// empty series yields an empty string, non-finite samples render as the
/// lowest level, and the scale is computed over finite samples only (a
/// stray NaN/∞ cannot poison the whole line the way a raw
/// `fold(f64::MIN, f64::max)` scale would).
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    if series.is_empty() {
        return String::new();
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in series {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    const FLOOR: char = '\u{2581}';
    if min > max {
        // No finite samples at all: render everything as the floor.
        return series.iter().map(|_| FLOOR).collect();
    }
    let span = (max - min).max(1e-9);
    series
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return FLOOR;
            }
            let idx = (((v - min) / span) * 7.0).round() as usize;
            LEVELS.get(idx).copied().unwrap_or('\u{2588}')
        })
        .collect()
}

/// Aggregates a per-tick series to one point per second (100 ticks).
pub fn per_second(series: &[f64]) -> Vec<f64> {
    series
        .chunks(100)
        // `chunks` never yields an empty slice, but keep the division
        // guarded so a future refactor cannot reintroduce a 0/0 here.
        .filter(|w| !w.is_empty())
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

/// Statistics of one measurement-study trace figure panel.
#[derive(Debug, Clone, Copy)]
pub struct PanelStats {
    /// Mean of the statistic before the attack launch.
    pub before: f64,
    /// Mean after the attack launch.
    pub after: f64,
    /// Period (in MA windows) before the launch, if periodic.
    pub period_before: Option<f64>,
    /// Period after the launch, if still detectable.
    pub period_after: Option<f64>,
}

impl PanelStats {
    /// Relative change `after / before − 1`.
    pub fn relative_change(&self) -> f64 {
        self.after / self.before.max(1e-9) - 1.0
    }
}

/// Renders one measurement-study figure (a Figs. 2–6 panel pair) for one
/// application: 60 s benign, 60 s under `attack`. Returns the panel
/// statistics plus the rendered per-second sparkline block, so callers
/// can compute panels on worker threads and still print them in figure
/// order (printing from inside the computation would interleave).
pub fn trace_panel(app: Application, attack: AttackKind, seed: u64) -> (PanelStats, String) {
    let pre = 6_000u64;
    let post = 6_000u64;
    let trace = capture_trace(app, attack, pre, post, seed);
    // §3.1: AccessNum is the relevant statistic for bus locking, MissNum
    // for LLC cleansing.
    let stat: Vec<f64> = match attack {
        AttackKind::BusLocking => trace.iter().map(|s| s.0).collect(),
        AttackKind::LlcCleansing => trace.iter().map(|s| s.1).collect(),
    };
    let label = match attack {
        AttackKind::BusLocking => "AccessNum",
        AttackKind::LlcCleansing => "MissNum",
    };
    let seconds = per_second(&stat);
    let (b, a) = seconds.split_at(60);
    let rendered = format!(
        "  {:<12} {label:<9} pre  |{}|\n  {:<12} {label:<9} post |{}|",
        app.name(),
        sparkline(b),
        "",
        sparkline(a)
    );

    let ma_pre = MovingAverage::apply(200, 50, &stat[..pre as usize]).unwrap_or_default();
    let ma_post = MovingAverage::apply(200, 50, &stat[pre as usize..]).unwrap_or_default();
    let period_of = |ma: &[f64]| {
        if ma.len() < 16 {
            return None;
        }
        detect_period(ma).ok().flatten().map(|e| e.period)
    };
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len().max(1) as f64;
    let stats = PanelStats {
        before: mean(b),
        after: mean(a),
        period_before: period_of(&ma_pre),
        period_after: period_of(&ma_post),
    };
    (stats, rendered)
}

/// Runs both attack panels for a set of applications (one paper figure)
/// and prints the Observation 1 / Observation 2 summary lines. Panels are
/// independent simulations, so they are computed on the parallel runner
/// and printed in figure order afterwards.
pub fn figure(title: &str, apps: &[Application], seed: u64) {
    println!("== {title} ==");
    for &attack in &AttackKind::ALL {
        println!("-- {attack} attack (attack launches at t = 60 s) --");
        let panels = memdos_runner::parallel_map(apps, memdos_runner::threads(), |&app| {
            trace_panel(app, attack, seed)
        });
        for (&app, (p, rendered)) in apps.iter().zip(&panels) {
            let p = *p;
            println!("{rendered}");
            let mut line = format!(
                "  {:<12} mean {:.0} -> {:.0} ({:+.0}%)",
                app.name(),
                p.before,
                p.after,
                p.relative_change() * 100.0
            );
            if let Some(pb) = p.period_before {
                match p.period_after {
                    Some(pa) => line.push_str(&format!(
                        "; period {:.1} -> {:.1} MA windows ({:+.0}%)",
                        pb,
                        pa,
                        (pa / pb - 1.0) * 100.0
                    )),
                    None => line.push_str(&format!(
                        "; period {pb:.1} MA windows -> destroyed under attack"
                    )),
                }
            }
            println!("{line}");
            let ok = match attack {
                AttackKind::BusLocking => p.relative_change() < -0.25,
                AttackKind::LlcCleansing => p.relative_change() > 0.25,
            };
            crate::shape(
                &format!("Observation 1 ({attack}, {app})"),
                ok,
                format!("{:+.0}% change in the monitored statistic", p.relative_change() * 100.0),
            );
            if app.is_periodic() {
                let dilated = match (p.period_before, p.period_after) {
                    (Some(pb), Some(pa)) => pa > 1.1 * pb,
                    (Some(_), None) => true, // pattern destroyed: maximal change
                    _ => false,
                };
                crate::shape(
                    &format!("Observation 2 ({attack}, {app})"),
                    dilated,
                    "periodic application shows prolonged periodicity".to_string(),
                );
            }
        }
    }
}
