//! # memdos-bench
//!
//! The benchmark/experiment harness: one `harness = false` bench target
//! per table and figure of the paper's evaluation (run them with
//! `cargo bench -p memdos-bench --bench <name>`), plus Criterion
//! micro-benchmarks of the hot paths (`--bench micro`).
//!
//! Every figure target prints the same rows/series the paper reports and,
//! where the paper states a quantitative expectation, a `shape` line
//! noting whether the reproduction matches it.
//!
//! ## Scale control
//!
//! | env var | values | default | effect |
//! |---|---|---|---|
//! | `MEMDOS_SCALE` | `quick`, `standard`, `paper` | `quick` | stage lengths (§5.1: `paper` = 300 s + 300 s) |
//! | `MEMDOS_RUNS` | integer | 2 (`quick`) / 5 / 20 | repetitions per configuration |
//!
//! The shapes reproduce at every scale; `standard`/`paper` tighten the
//! percentiles at proportional cost (the simulator runs ~60 s of
//! simulated time per wall-clock second per VM set on one core).

#![forbid(unsafe_code)]

pub mod figures;
pub mod sensitivity;

use memdos_attacks::AttackKind;
use memdos_metrics::experiment::{ExperimentConfig, RunMetrics, Scheme, StageConfig};
use memdos_metrics::report::{summarize, summarize_censored, Table};
use memdos_stats::series::RunSummary;
use memdos_workloads::catalog::Application;

/// Stage scale selected via `MEMDOS_SCALE` (default `quick`).
pub fn scale() -> StageConfig {
    match std::env::var("MEMDOS_SCALE").as_deref() {
        Ok("paper") => StageConfig::paper(),
        Ok("standard") => StageConfig::standard(),
        _ => StageConfig::quick(),
    }
}

/// Number of runs per configuration via `MEMDOS_RUNS` (default: 2 for
/// quick scale, 5 for standard, 20 for paper — the paper reports 20).
pub fn runs() -> u64 {
    if let Ok(v) = std::env::var("MEMDOS_RUNS") {
        // lint:allow(panic) -- harness entry point: an unparsable env
        // override should abort the whole run loudly, not be masked.
        return v.parse().expect("MEMDOS_RUNS must be an integer");
    }
    match std::env::var("MEMDOS_SCALE").as_deref() {
        Ok("paper") => 20,
        Ok("standard") => 5,
        _ => 2,
    }
}

/// Human-readable banner for the selected scale.
pub fn banner(target: &str) {
    let s = scale();
    println!(
        "[{target}] stages: profile {} s, benign {} s, attack {} s; {} run(s) per cell",
        s.profile_ticks / 100,
        s.benign_ticks / 100,
        s.attack_ticks / 100,
        runs()
    );
}

/// Per-scheme aggregated metrics for one `(app, attack)` cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Application under protection.
    pub app: Application,
    /// Attack launched in Stage 3.
    pub attack: AttackKind,
    /// Scheme evaluated.
    pub scheme: Scheme,
    /// Per-run metrics.
    pub runs: Vec<RunMetrics>,
}

impl Cell {
    /// Median/p10/p90 of recall across runs.
    pub fn recall(&self) -> Option<RunSummary> {
        summarize(&self.runs.iter().map(|m| m.recall).collect::<Vec<_>>())
    }

    /// Median/p10/p90 of specificity across runs.
    pub fn specificity(&self) -> Option<RunSummary> {
        summarize(&self.runs.iter().map(|m| m.specificity).collect::<Vec<_>>())
    }

    /// Median/p10/p90 of detection delay (seconds); undetected runs are
    /// censored at the attack-stage length.
    pub fn delay(&self, stages: &StageConfig) -> Option<RunSummary> {
        let censor = stages.attack_ticks as f64 * 0.01;
        summarize_censored(
            &self.runs.iter().map(|m| m.delay_secs).collect::<Vec<_>>(),
            censor,
        )
    }
}

/// Runs the full §5 accuracy sweep: every `(app, attack)` cell, every
/// applicable scheme, `runs` repetitions. This is the shared engine
/// behind the Fig. 9 (recall), Fig. 10 (specificity) and Fig. 11 (delay)
/// targets.
///
/// The grid executes on the parallel runner (`MEMDOS_THREADS` workers);
/// results come back in the canonical attack → app → run order, so the
/// aggregation below — and therefore the output — is bit-identical to the
/// old sequential loop.
pub fn accuracy_sweep(
    apps: &[Application],
    attacks: &[AttackKind],
    stages: StageConfig,
    n_runs: u64,
) -> Vec<Cell> {
    if n_runs == 0 {
        return Vec::new();
    }
    let results = memdos_runner::run_grid(
        &ExperimentConfig::default(),
        apps,
        attacks,
        stages,
        n_runs,
        memdos_runner::threads(),
    )
    // lint:allow(panic) -- the sweep only builds configs from the
    // validated app/attack catalogs; failure is a bug.
    .expect("experiment configuration must be valid");

    let mut cells: Vec<Cell> = Vec::new();
    // Grid order is attack → app → run, so consecutive chunks of `n_runs`
    // results are exactly one (attack, app) cell.
    for group in results.chunks(n_runs as usize) {
        let Some(first) = group.first() else { continue };
        let (app, attack) = (first.cell.app, first.cell.attack);
        let mut per_scheme: std::collections::BTreeMap<&str, Vec<RunMetrics>> =
            std::collections::BTreeMap::new();
        let mut scheme_of: std::collections::BTreeMap<&str, Scheme> =
            std::collections::BTreeMap::new();
        for cell_outcome in group {
            for out in &cell_outcome.outcomes {
                per_scheme
                    .entry(out.scheme.name())
                    .or_default()
                    .push(out.metrics(&stages));
                scheme_of.insert(out.scheme.name(), out.scheme);
            }
        }
        for (name, metrics) in per_scheme {
            if let Some(&scheme) = scheme_of.get(name) {
                cells.push(Cell { app, attack, scheme, runs: metrics });
            }
        }
        eprintln!("  swept {attack} / {app}");
    }
    cells
}

/// Builds the paper-style table for one metric over a sweep result.
pub fn metric_table(
    title: &str,
    cells: &[Cell],
    metric: impl Fn(&Cell) -> Option<RunSummary>,
    decimals: usize,
) -> Table {
    let mut table = Table::new(title, &["attack", "app", "scheme", "median [p10, p90]"]);
    for cell in cells {
        if let Some(s) = metric(cell) {
            table.push(vec![
                cell.attack.name().to_string(),
                cell.app.name().to_string(),
                cell.scheme.name().to_string(),
                memdos_metrics::report::fmt_summary(&s, decimals),
            ]);
        }
    }
    table
}

/// Checks a shape expectation and prints a PASS/DEVIATION line.
pub fn shape(name: &str, ok: bool, detail: String) {
    if ok {
        println!("shape PASS       {name}: {detail}");
    } else {
        println!("shape DEVIATION  {name}: {detail}");
    }
}

/// Median of the given metric across all cells matching a predicate.
pub fn median_where(
    cells: &[Cell],
    pred: impl Fn(&Cell) -> bool,
    metric: impl Fn(&RunMetrics) -> f64,
) -> Option<f64> {
    let values: Vec<f64> = cells
        .iter()
        .filter(|c| pred(c))
        .flat_map(|c| c.runs.iter().map(&metric))
        .collect();
    summarize(&values).map(|s| s.median)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        if std::env::var("MEMDOS_SCALE").is_err() && std::env::var("MEMDOS_RUNS").is_err() {
            assert_eq!(scale(), StageConfig::quick());
            assert_eq!(runs(), 2);
        }
    }

    #[test]
    fn cell_summaries() {
        let cell = Cell {
            app: Application::KMeans,
            attack: AttackKind::BusLocking,
            scheme: Scheme::Sds,
            runs: vec![
                RunMetrics { recall: 1.0, specificity: 0.9, delay_secs: Some(15.0) },
                RunMetrics { recall: 0.8, specificity: 1.0, delay_secs: None },
            ],
        };
        assert_eq!(cell.recall().unwrap().median, 0.9);
        let d = cell.delay(&StageConfig::quick()).unwrap();
        assert!(d.median > 15.0); // the censored run pulls the median up
    }

    #[test]
    fn median_where_filters() {
        let mk = |scheme, recall| Cell {
            app: Application::KMeans,
            attack: AttackKind::BusLocking,
            scheme,
            runs: vec![RunMetrics { recall, specificity: 1.0, delay_secs: None }],
        };
        let cells = vec![mk(Scheme::Sds, 1.0), mk(Scheme::KsTest, 0.5)];
        let m = median_where(&cells, |c| c.scheme == Scheme::Sds, |r| r.recall);
        assert_eq!(m, Some(1.0));
    }
}
