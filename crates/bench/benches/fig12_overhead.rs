//! Figure 12 — performance overhead on co-located applications.
//!
//! Normalized execution time (no-detection baseline = 1.0) of every
//! application running co-located with a protected VM, for the SDS family
//! and the KStest baseline. Paper expectations: SDS (and SDS/B, SDS/P,
//! which share its sampling cost) costs 1–2 %; KStest costs 3–8 %,
//! dominated by its periodic execution throttling (`W_R/L_R` ≈ 3.3 %
//! pause time plus the cache re-warm after every resume).

use memdos_metrics::experiment::Scheme;
use memdos_metrics::overhead::OverheadConfig;
use memdos_metrics::report::{fmt_summary, summarize, Table};
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig12_overhead");
    let n_runs = memdos_bench::runs();
    let window = match std::env::var("MEMDOS_SCALE").as_deref() {
        Ok("paper") => 30_000,
        Ok("standard") => 12_000,
        _ => 6_000,
    };

    let mut table = Table::new(
        "Figure 12: normalized execution time (1.00 = no detection scheme)",
        &["app", "SDS", "KStest"],
    );
    let mut sds_all = Vec::new();
    let mut ks_all = Vec::new();
    // Each app's overhead measurement is an independent simulation; fan
    // them out on the parallel runner and aggregate in catalog order.
    let per_app = memdos_runner::parallel_map(
        &Application::ALL,
        memdos_runner::threads(),
        |&app| {
            let mut cfg = OverheadConfig::new(app);
            cfg.measure_ticks = window;
            let sds: Vec<f64> = (0..n_runs)
                .map(|r| cfg.normalized_execution_time(Scheme::Sds, r))
                .collect();
            let ks: Vec<f64> = (0..n_runs)
                .map(|r| cfg.normalized_execution_time(Scheme::KsTest, r))
                .collect();
            (sds, ks)
        },
    );
    for (app, (sds, ks)) in Application::ALL.iter().zip(&per_app) {
        sds_all.extend_from_slice(sds);
        ks_all.extend_from_slice(ks);
        table.push(vec![
            app.name().to_string(),
            summarize(sds).map(|s| fmt_summary(&s, 3)).unwrap_or_default(),
            summarize(ks).map(|s| fmt_summary(&s, 3)).unwrap_or_default(),
        ]);
        eprintln!("  measured {app}");
    }
    println!("{table}");
    println!("(SDS/B and SDS/P standalone run the same sampling/analysis pipeline as SDS\n and therefore share its overhead column.)");

    let sds_med = summarize(&sds_all).map(|s| s.median).unwrap_or(f64::NAN);
    let ks_med = summarize(&ks_all).map(|s| s.median).unwrap_or(f64::NAN);
    memdos_bench::shape(
        "Fig. 12 SDS overhead",
        (1.0..=1.03).contains(&sds_med),
        format!("median {:.3} (paper: 1.01–1.02)", sds_med),
    );
    memdos_bench::shape(
        "Fig. 12 KStest overhead",
        (1.03..=1.10).contains(&ks_med),
        format!("median {:.3} (paper: 1.03–1.08)", ks_med),
    );
    memdos_bench::shape(
        "Fig. 12 SDS cheaper than KStest",
        ks_med - sds_med >= 0.02,
        format!("gap {:.3} (paper: ≈2–6 pp)", ks_med - sds_med),
    );
}
