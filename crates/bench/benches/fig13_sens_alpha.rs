//! Figure 13 — sensitivity of the EWMA smoothing factor α (k-means,
//! bus-locking attack).
//!
//! Paper expectations: recall and specificity stay near 1 over a wide
//! range of α (notably [0.2, 0.4]) and decrease slightly for large α
//! (less smoothing lets random variation through); detection delay
//! decreases slightly as α grows (the EWMA follows the collapse faster).
//! α = 1.0 makes the EWMA series equal to the MA series.

use memdos_attacks::AttackKind;
use memdos_bench::sensitivity::{median_delay, median_recall, median_specificity, print_sweep, sweep, SweepDetector};
use memdos_core::config::SdsParams;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig13_sens_alpha");
    let stages = memdos_bench::scale();
    // The paper sweeps [0.0, 1.0]; α = 0 is degenerate (the EWMA never
    // moves), so the sweep starts at 0.05.
    let alphas = [0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0];
    let points: Vec<(String, SdsParams)> = alphas
        .iter()
        .map(|&alpha| {
            let mut p = SdsParams::default();
            p.sdsb.alpha = alpha;
            (format!("{alpha}"), p)
        })
        .collect();
    let result = sweep(
        Application::KMeans,
        AttackKind::BusLocking,
        stages,
        memdos_bench::runs(),
        SweepDetector::Sds,
        &points,
    );
    print_sweep("Figure 13: sensitivity of α (k-means)", "alpha", &result, &stages);

    let mid: Vec<_> = result
        .iter()
        .filter(|p| ["0.2", "0.3", "0.4"].contains(&p.label.as_str()))
        .collect();
    let accurate = mid
        .iter()
        .all(|p| median_recall(p) >= 0.99 && median_specificity(p) >= 0.95);
    memdos_bench::shape(
        "Fig. 13 accuracy ≈ 1 over α ∈ [0.2, 0.4]",
        accurate,
        "recall and specificity near 1 in the recommended band".to_string(),
    );
    let d_small = median_delay(&result[1], &stages); // α = 0.1
    let d_large = median_delay(&result[result.len() - 1], &stages); // α = 1.0
    memdos_bench::shape(
        "Fig. 13 delay decreases with α",
        d_large <= d_small,
        format!("delay {:.1} s at α=0.1 vs {:.1} s at α=1.0", d_small, d_large),
    );
}
