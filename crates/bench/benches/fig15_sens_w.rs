//! Figure 15 — sensitivity of the raw-data window size W (k-means,
//! bus-locking attack).
//!
//! Paper expectations: accuracy barely changes with W (only W = 100 is
//! too small to smooth the raw variation, costing some recall); delay
//! rises slightly with W because the EWMA responds more slowly.

use memdos_attacks::AttackKind;
use memdos_bench::sensitivity::{median_delay, median_recall, print_sweep, sweep, SweepDetector};
use memdos_core::config::SdsParams;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig15_sens_w");
    let stages = memdos_bench::scale();
    let ws = [100usize, 200, 400, 600, 800, 1000];
    let points: Vec<(String, SdsParams)> = ws
        .iter()
        .map(|&w| {
            let mut p = SdsParams::default();
            p.sdsb.window = w;
            p.sdsp.window = w;
            (format!("{w}"), p)
        })
        .collect();
    let result = sweep(
        Application::KMeans,
        AttackKind::BusLocking,
        stages,
        memdos_bench::runs(),
        SweepDetector::Sds,
        &points,
    );
    print_sweep("Figure 15: sensitivity of W (k-means)", "W", &result, &stages);

    let accurate = result.iter().skip(1).all(|p| median_recall(p) >= 0.99);
    memdos_bench::shape(
        "Fig. 15 accuracy insensitive for W ≥ 200",
        accurate,
        "recall ≈ 1 at every W except possibly 100".to_string(),
    );
    let d_small = median_delay(&result[1], &stages);
    let d_large = median_delay(&result[result.len() - 1], &stages);
    memdos_bench::shape(
        "Fig. 15 delay grows with W",
        d_large >= d_small,
        format!("delay {:.1} s at W=200 vs {:.1} s at W=1000", d_small, d_large),
    );
}
