//! Figure 17 — sensitivity of the SDS/P monitoring window W_P (FaceNet,
//! LLC cleansing attack).
//!
//! Paper expectations: accuracy does not change with W_P; delay grows
//! with W_P because normal MA values dominate a longer window for longer
//! after the attack starts. W_P = 2p is the recommended minimum.

use memdos_attacks::AttackKind;
use memdos_bench::sensitivity::{median_delay, median_recall, print_sweep, sweep, SweepDetector};
use memdos_core::config::SdsParams;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig17_sens_wp");
    let stages = memdos_bench::scale();
    let multiples = [2.0, 3.0, 4.0, 5.0, 6.0];
    let points: Vec<(String, SdsParams)> = multiples
        .iter()
        .map(|&m| {
            let mut p = SdsParams::default();
            p.sdsp.window_periods = m;
            (format!("{m}p"), p)
        })
        .collect();
    let result = sweep(
        Application::FaceNet,
        AttackKind::LlcCleansing,
        stages,
        memdos_bench::runs(),
        SweepDetector::SdsP,
        &points,
    );
    print_sweep("Figure 17: sensitivity of W_P (FaceNet, SDS/P)", "W_P", &result, &stages);

    let accurate = result.iter().take(3).all(|p| median_recall(p) >= 0.9);
    memdos_bench::shape(
        "Fig. 17 accuracy holds at small W_P",
        accurate,
        "recall ≈ 1 for W_P ∈ [2p, 4p]".to_string(),
    );
    let d_first = median_delay(&result[0], &stages);
    let d_last = median_delay(&result[result.len() - 1], &stages);
    memdos_bench::shape(
        "Fig. 17 delay grows with W_P",
        d_last >= d_first,
        format!("delay {:.1} s at 2p vs {:.1} s at 6p", d_first, d_last),
    );
}
