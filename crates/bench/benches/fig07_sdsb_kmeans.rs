//! Figure 7 — "Detection example of k-means".
//!
//! Regenerates the paper's SDS/B walk-through: the monitored EWMA time
//! series of k-means with the profiled normal range
//! `[μ_E − 1.125 σ_E, μ_E + 1.125 σ_E]`, the bus-locking attack launch,
//! and the alarm firing once `H_C = 30` consecutive EWMA windows leave
//! the range (the paper's alarm lands "at around window 150").

use memdos_attacks::AttackKind;
use memdos_core::detector::{Detector, Observation};
use memdos_core::sdsb::SdsB;
use memdos_metrics::experiment::ExperimentConfig;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig07_sdsb_kmeans");
    let stages = memdos_bench::scale();
    let cfg = ExperimentConfig {
        app: Application::KMeans,
        attack: AttackKind::BusLocking,
        stages,
        ..ExperimentConfig::default()
    };
    let captured = cfg.capture_run(0);
    let profile = captured.profile_with(&cfg.sds_params).expect("profile");
    let mut sdsb =
        SdsB::from_profile(&profile, &cfg.sds_params.sdsb).expect("detector");
    let range = sdsb.range();
    println!(
        "normal range: [{:.0}, {:.0}] (μ_E = {:.0}, σ_E = {:.1}, k = {})",
        range.lower, range.upper, profile.access.mu, profile.access.sigma, cfg.sds_params.sdsb.k
    );
    let attack_window =
        (stages.benign_ticks as usize).saturating_sub(cfg.sds_params.sdsb.window)
            / cfg.sds_params.sdsb.step
            + 1;
    println!("attack launches at EWMA window ≈ {attack_window}");

    // Replay stage 2+3 printing every 5th EWMA window like the figure.
    let mut window_idx = 0usize;
    let mut alarm_window = None;
    for obs in &captured.observations[stages.profile_ticks as usize..] {
        let before = sdsb.last_ewma();
        let became = sdsb
            .on_observation(Observation { access_num: obs.access_num, miss_num: obs.miss_num })
            .became_active;
        if sdsb.last_ewma() != before || (window_idx == 0 && sdsb.last_ewma().is_some()) {
            if sdsb.last_ewma() != before {
                window_idx += 1;
            }
            if window_idx % 5 == 0 {
                let s = sdsb.last_ewma().unwrap_or(f64::NAN);
                let marker = if range.is_violation(s) { " *out*" } else { "" };
                println!(
                    "  window {window_idx:>4}  S_n = {s:>8.1}  [{:.0}, {:.0}]{marker}",
                    range.lower, range.upper
                );
            }
        }
        if became && alarm_window.is_none() {
            alarm_window = Some(window_idx);
            println!("  window {window_idx:>4}  >>> ALARM (H_C consecutive violations) <<<");
        }
    }
    match alarm_window {
        Some(w) => {
            let delay_windows = w.saturating_sub(attack_window);
            memdos_bench::shape(
                "Fig. 7 SDS/B k-means detection",
                w > attack_window && delay_windows <= 40,
                format!(
                    "alarm at window {w}, {delay_windows} windows after the launch \
                     (paper: launch ≈120, alarm ≈150)"
                ),
            );
        }
        None => memdos_bench::shape(
            "Fig. 7 SDS/B k-means detection",
            false,
            "no alarm raised".to_string(),
        ),
    }
}
