//! Table 1 — "Parameters in the experiment".
//!
//! Prints the parameter defaults exactly as the paper tabulates them and
//! verifies the Chebyshev relationship between `k`, `H_C` and the 99.9 %
//! confidence level.

use memdos_core::config::{KsTestParams, SdsBParams, SdsPParams};
use memdos_metrics::report::Table;
use memdos_stats::bounds::{false_alarm_bound, required_h_c};

fn main() {
    let b = SdsBParams::default();
    let p = SdsPParams::default();
    let ks = KsTestParams::default();

    let mut t = Table::new("Table 1: Parameters in the experiment", &["parameter", "value"]);
    t.push_strs(&["T_PCM", "0.01"]);
    t.push(vec!["Window size W of raw data".into(), b.window.to_string()]);
    t.push(vec!["Sliding step size ΔW".into(), b.step.to_string()]);
    t.push(vec!["EWMA smooth factor α".into(), b.alpha.to_string()]);
    t.push(vec!["Upper bound".into(), format!("μ + {}σ", b.k)]);
    t.push(vec!["Lower bound".into(), format!("μ - {}σ", b.k)]);
    t.push(vec!["Consecutive violation threshold H_C".into(), b.h_c.to_string()]);
    t.push(vec![
        "Window size W_P in SDS/P".into(),
        format!("{} * period", p.window_periods),
    ]);
    t.push(vec!["Sliding step size ΔW_P in SDS/P".into(), p.step_ma.to_string()]);
    t.push(vec!["Consecutive period change threshold H_P".into(), p.h_p.to_string()]);
    println!("{t}");

    let mut ks_table = Table::new(
        "KStest baseline parameters (§3.2, after [49])",
        &["parameter", "value"],
    );
    ks_table.push(vec!["W_R".into(), format!("{} s", ks.w_r_ticks as f64 / 100.0)]);
    ks_table.push(vec!["W_M".into(), format!("{} s", ks.w_m_ticks as f64 / 100.0)]);
    ks_table.push(vec!["L_M".into(), format!("{} s", ks.l_m_ticks as f64 / 100.0)]);
    ks_table.push(vec!["L_R".into(), format!("{} s", ks.l_r_ticks as f64 / 100.0)]);
    ks_table.push(vec!["consecutive rejections".into(), ks.consecutive.to_string()]);
    println!("{ks_table}");

    let bound = false_alarm_bound(b.k, b.h_c).expect("valid parameters");
    memdos_bench::shape(
        "Table 1 Chebyshev consistency",
        bound <= 0.001 && required_h_c(b.k, 0.999).expect("valid") == b.h_c,
        format!(
            "k = {}, H_C = {} gives false-alarm bound {bound:.2e} ≤ 0.001 (99.9 % confidence)",
            b.k, b.h_c
        ),
    );
    memdos_bench::shape(
        "SDS/B minimum detection delay",
        b.min_detection_delay_ticks() == 1_500,
        format!(
            "H_C · ΔW · T_PCM = {} s",
            b.min_detection_delay_ticks() as f64 * 0.01
        ),
    );
    memdos_bench::shape(
        "SDS/P minimum detection delay",
        p.min_detection_delay_ticks() == 2_500,
        format!(
            "H_P · ΔW_P · ΔW · T_PCM = {} s",
            p.min_detection_delay_ticks() as f64 * 0.01
        ),
    );
}
