//! Figure 14 — sensitivity of the boundary factor k (k-means,
//! bus-locking attack), with `H_C` re-derived from Eq. (4) to hold the
//! 99.9 % confidence level at every point.
//!
//! Paper expectations: specificity rises slightly and recall falls
//! slightly as k grows; both stay near 1 over k ∈ [1.1, 1.5]. Larger k
//! means smaller `H_C` and hence shorter detection delay, partly offset
//! by the EWMA taking longer to leave a wider band.

use memdos_attacks::AttackKind;
use memdos_bench::sensitivity::{median_delay, median_recall, median_specificity, print_sweep, sweep, SweepDetector};
use memdos_core::config::SdsParams;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig14_sens_k");
    let stages = memdos_bench::scale();
    let ks = [1.1, 1.125, 1.2, 1.3, 1.5, 1.75, 2.0];
    let points: Vec<(String, SdsParams)> = ks
        .iter()
        .map(|&k| {
            let mut p = SdsParams::default();
            p.sdsb = p.sdsb.with_confidence(k, 0.999).expect("valid k");
            (format!("k={k} (H_C={})", p.sdsb.h_c), p)
        })
        .collect();
    let result = sweep(
        Application::KMeans,
        AttackKind::BusLocking,
        stages,
        memdos_bench::runs(),
        SweepDetector::Sds,
        &points,
    );
    print_sweep("Figure 14: sensitivity of k (H_C adjusted for 99.9 %)", "k", &result, &stages);

    let band: Vec<_> = result.iter().take(5).collect(); // k ∈ [1.1, 1.5]
    let accurate = band
        .iter()
        .all(|p| median_recall(p) >= 0.99 && median_specificity(p) >= 0.95);
    memdos_bench::shape(
        "Fig. 14 accuracy ≈ 1 over k ∈ [1.1, 1.5]",
        accurate,
        "recall and specificity near 1 in the recommended band".to_string(),
    );
    let d_first = median_delay(&result[0], &stages);
    let d_last = median_delay(&result[result.len() - 1], &stages);
    memdos_bench::shape(
        "Fig. 14 larger k shortens delay (smaller H_C)",
        d_last <= d_first,
        format!("delay {:.1} s at k=1.1 vs {:.1} s at k=2.0", d_first, d_last),
    );
}
