//! Figure 8 — "Detection example of FaceNet application".
//!
//! Regenerates both panels: (a) the FaceNet MA time series with the LLC
//! cleansing attack launching mid-run, and (b) "the sequences of computed
//! period" — the DFT-ACF estimate over the sliding `W_P = 2p` window,
//! which holds constant before the attack and deviates afterwards until
//! `H_P = 5` consecutive deviations raise the alarm.

use memdos_attacks::AttackKind;
use memdos_bench::figures::{per_second, sparkline};
use memdos_core::detector::{Detector, Observation};
use memdos_core::sdsp::SdsP;
use memdos_metrics::experiment::ExperimentConfig;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig08_sdsp_facenet");
    let stages = memdos_bench::scale();
    let cfg = ExperimentConfig {
        app: Application::FaceNet,
        attack: AttackKind::LlcCleansing,
        stages,
        ..ExperimentConfig::default()
    };
    let captured = cfg.capture_run(0);
    let profile = captured.profile_with(&cfg.sds_params).expect("profile");
    let periodicity = profile
        .periodicity
        .expect("facenet must profile as periodic");
    println!(
        "(a) profiled normal period p = {:.1} MA windows (strength {:.2})",
        periodicity.period_ma, periodicity.strength
    );
    let monitored: Vec<f64> = captured.observations[stages.profile_ticks as usize..]
        .iter()
        .map(|o| o.access_num)
        .collect();
    println!(
        "    AccessNum MA series (1 s resolution, attack at t = {} s):",
        stages.benign_ticks / 100
    );
    println!("    |{}|", sparkline(&per_second(&monitored)));

    let mut sdsp =
        SdsP::from_profile(&profile, &cfg.sds_params.sdsp).expect("detector");
    println!(
        "(b) computed period every ΔW_P = {} MA values (W_P = {} MA values):",
        cfg.sds_params.sdsp.step_ma,
        sdsp.window_size()
    );
    let mut computations = 0;
    let mut alarm_at = None;
    let mut normal_estimates = Vec::new();
    for (t, obs) in monitored.iter().enumerate() {
        let step = sdsp
            .on_observation(Observation { access_num: *obs, miss_num: 0.0 })
            .became_active;
        if sdsp.computations() > computations {
            computations = sdsp.computations();
            let period = sdsp.last_period();
            let secs = t as f64 / 100.0;
            if secs < stages.benign_ticks as f64 / 100.0 {
                if let Some(p) = period {
                    normal_estimates.push(p);
                }
            }
            println!(
                "    t = {secs:>6.1} s  period = {}  consecutive deviations = {}",
                period
                    .map(|p| format!("{p:5.1}"))
                    .unwrap_or_else(|| " none".to_string()),
                sdsp.consecutive_changes()
            );
        }
        if step && alarm_at.is_none() {
            alarm_at = Some(t as f64 / 100.0);
            println!("    >>> ALARM at t = {:.1} s <<<", t as f64 / 100.0);
        }
    }

    let stable = normal_estimates
        .iter()
        .all(|p| (p - periodicity.period_ma).abs() / periodicity.period_ma <= 0.2);
    memdos_bench::shape(
        "Fig. 8(b) pre-attack period stability",
        stable && !normal_estimates.is_empty(),
        format!(
            "{} estimates within ±20 % of p = {:.1} before the attack",
            normal_estimates.len(),
            periodicity.period_ma
        ),
    );
    let launch = stages.benign_ticks as f64 / 100.0;
    memdos_bench::shape(
        "Fig. 8 SDS/P FaceNet detection",
        alarm_at.is_some_and(|t| t > launch),
        match alarm_at {
            Some(t) => format!("alarm {:.1} s after the attack launch", t - launch),
            None => "no alarm raised".to_string(),
        },
    );
}
