//! §3.2 — KStest false-positive rates per application (no attack).
//!
//! "From the KStest results of all twenty L_R intervals in our
//! experiments, KStest declares an attack around 30 % of the times in
//! Bayes, 35 % in SVM, 20 % in k-means, 60 % in PCA, 40 % in Aggregation,
//! 40 % in Scan, 30 % in PageRank, 55 % in FaceNet when the attack is
//! absent" — and more than 60 % for TeraSort (Fig. 1).

use memdos_core::config::KsTestParams;
use memdos_metrics::experiment::kstest_benign_run;
use memdos_metrics::report::Table;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("tab_s32_kstest_fp");
    let params = KsTestParams::default();
    let intervals = if std::env::var("MEMDOS_SCALE").as_deref() == Ok("paper") {
        20u64
    } else {
        10u64
    };
    let ticks = intervals * params.l_r_ticks;

    let mut table = Table::new(
        "KStest attack declarations on attack-free runs (fraction of L_R intervals)",
        &["app", "measured", "paper"],
    );
    let mut ordering_ok = true;
    let mut measured_rates = Vec::new();
    for app in Application::KSTEST_SWEEP {
        // An interval counts when the detector's alarm state was active
        // within it — the same criterion as Fig. 1.
        let (rounds, fp) = kstest_benign_run(app, ticks, params, 0x532 + app.name().len() as u64);
        let mut declared = 0u64;
        for interval in 0..intervals {
            let lo = interval * params.l_r_ticks;
            let hi = lo + params.l_r_ticks;
            let mut streak = 0;
            if rounds
                .iter()
                .filter(|r| (lo..hi).contains(&r.tick))
                .any(|r| {
                    streak = if r.rejected { streak + 1 } else { 0 };
                    streak >= params.consecutive
                })
            {
                declared += 1;
            }
        }
        let rate = declared as f64 / intervals as f64;
        let paper = app.paper_kstest_fp().unwrap_or(f64::NAN);
        measured_rates.push((app, rate, paper));
        table.push(vec![
            app.name().to_string(),
            format!("{:.0}%", rate * 100.0),
            format!("{:.0}%", paper * 100.0),
        ]);
        let _ = fp;
    }
    println!("{table}");

    // Shape: the paper's key qualitative split — KStest is unreliable on
    // phase-heavy / periodic applications (TeraSort, PCA, FaceNet ≥ 55 %)
    // and most reliable on k-means (20 %, the minimum of the sweep).
    let rate_of = |target: Application| {
        measured_rates
            .iter()
            .find(|(a, _, _)| *a == target)
            .map(|(_, r, _)| *r)
            .unwrap_or(f64::NAN)
    };
    let heavy = [Application::TeraSort, Application::Pca, Application::FaceNet];
    let heavy_min = heavy.iter().map(|&a| rate_of(a)).fold(f64::MAX, f64::min);
    let kmeans = rate_of(Application::KMeans);
    ordering_ok &= heavy_min >= kmeans;
    memdos_bench::shape(
        "§3.2 KStest FP ordering",
        ordering_ok && heavy_min > 0.4,
        format!(
            "phase-heavy/periodic apps ≥ {:.0}% vs k-means {:.0}% (paper: ≥55% vs 20%)",
            heavy_min * 100.0,
            kmeans * 100.0
        ),
    );
}
