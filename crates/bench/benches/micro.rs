//! Micro-benchmarks of the hot paths (std-only timing harness).
//!
//! The paper claims SDS is *lightweight*: "we use lightweight PCM tools
//! and low-complexity statistical methods". These benchmarks quantify
//! that on this implementation: a per-tick SDS update is a handful of
//! arithmetic operations, the DFT-ACF recomputation is `O(N log N)` on a
//! ~2-period window, and the KS test — the baseline's per-round cost —
//! is `O(n log n)` in the window size. Simulator throughput (cache access
//! and full server ticks) is measured too, since every experiment's wall
//! time is dominated by it.
//!
//! Besides printing human-readable results, the run emits a
//! machine-readable `BENCH_2.json` at the workspace root (override the
//! path with `MEMDOS_BENCH_OUT`): one flat JSON object with `*_ns` keys
//! per kernel and `speedup_*` keys comparing the optimized kernels
//! against re-implementations of their pre-optimization versions (kept
//! inline in this file). Simulator throughput lives in its own
//! `BENCH_6.json` report (override with `MEMDOS_BENCH_OUT_SIM`):
//! `sim_event_step_ns` (discrete-event queue wakeup cost),
//! `sim_server_tick_9vms_ns` (one full 9-VM tick), and
//! `sim_grid_cells_per_sec_t{1,2,4}` — trace-generation throughput of
//! the capture grid the sensitivity sweeps consume, with each
//! `(app, run)` pair's stage-1/2 prefix shared across attacks. The
//! `grid_cells_per_sec_t*` / `server_tick_9vms_ns` keys these supersede
//! were retired from the `BENCH_2.json` gate when the event scheduler
//! landed. A second report,
//! `BENCH_5.json` (override with `MEMDOS_BENCH_OUT_ENGINE`), carries the
//! streaming-engine ingest throughput (`engine_ingest_samples_per_sec`,
//! its 4-worker counterpart, and the dimensionless
//! `engine_ingest_scaling_t4` speedup ratio the CI gate holds at >= 1.0;
//! the report superseded `BENCH_3.json` when the zero-allocation fast
//! path landed);
//! a third, `BENCH_4.json` (override with `MEMDOS_BENCH_OUT_SOAK`),
//! carries the chaos-path throughput (`engine_soak_samples_per_sec` — a
//! fault-injected stream through the full recovery machinery); a
//! fourth, `BENCH_7.json` (override with `MEMDOS_BENCH_OUT_FLEET`),
//! carries the fleet-scale session-storage numbers —
//! `engine_fleet_samples_per_sec_{1k,10k,50k}`, the deterministic
//! resident-bytes estimates per size, the eviction count at the
//! oversubscribed 50k size, and `engine_fleet_scaling_t4`; a fifth,
//! `BENCH_8.json` (override with `MEMDOS_BENCH_OUT_RESPOND`), carries
//! the closed-loop mitigation numbers — the deterministic
//! `mitigation_recovery_latency_ticks` / `mitigation_false_quarantine_ticks`
//! outcomes of the seeded respond scenarios and the respond-loop
//! throughput at 1 and 4 workers (no scaling key: the feedback loop is
//! a serial cycle, so workers buy per-flush dispatch, not loop-level
//! speedup); a sixth, `BENCH_9.json` (override with
//! `MEMDOS_BENCH_OUT_BINARY`), carries the binary wire-format numbers —
//! the raw frame-decode cost (`engine_binary_decode_sample_ns`, the
//! ingest-throughput claim the wire format was built for), the full
//! binary pipeline (`engine_binary_ingest_sample_ns` /
//! `engine_binary_samples_per_sec`), the paired binary-over-JSONL
//! pipeline speedup (`speedup_binary_wire`), and
//! `engine_binary_scaling_t4`. CI
//! compares all of them against their counterparts under
//! `crates/bench/baseline/` via `cargo run -p xtask -- bench-check`.
//!
//! The harness is deliberately dependency-free (the build environment is
//! offline): each benchmark runs a calibration pass to pick an iteration
//! count targeting ~100 ms, then reports the median of 9 timed passes.

use std::hint::black_box;
use std::time::Instant;

use memdos_attacks::AttackKind;
use memdos_core::config::{SdsBParams, SdsPParams};
use memdos_core::detector::{Detector, Observation};
use memdos_core::sdsb::SdsB;
use memdos_core::sdsp::SdsP;
use memdos_metrics::experiment::{ExperimentConfig, StageConfig};
use memdos_sim::cache::{CacheGeometry, Llc};
use memdos_sim::server::{Server, ServerConfig};
use memdos_stats::acf::{acf_direct, acf_fft};
use memdos_stats::fft::{fft_real, rfft};
use memdos_stats::ks::ks_two_sample;
use memdos_stats::period::detect_period;
use memdos_stats::smoothing::Ewma;
use memdos_workloads::catalog::Application;

const PASSES: usize = 9;
const TARGET_NANOS: u128 = 100_000_000;

/// Flat key → value report, serialized as one JSON object.
#[derive(Default)]
struct Report {
    entries: Vec<(String, f64)>,
}

impl Report {
    fn push(&mut self, key: &str, value: f64) {
        self.entries.push((key.to_string(), value));
    }

    fn to_json(&self) -> String {
        let mut body: Vec<String> = self
            .entries
            .iter()
            .map(|(k, v)| {
                // JSON has no NaN/∞; clamp degenerate measurements to 0.
                let v = if v.is_finite() { *v } else { 0.0 };
                format!("  \"{k}\": {v}")
            })
            .collect();
        body.sort();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }

    /// Writes the report to `<workspace root>/<default_name>`, overridable
    /// through `env_var` (kernel report: `MEMDOS_BENCH_OUT`; engine
    /// report: `MEMDOS_BENCH_OUT_ENGINE`).
    fn write(&self, env_var: &str, default_name: &str) {
        let path = std::env::var(env_var).unwrap_or_else(|_| {
            format!("{}/../../{default_name}", env!("CARGO_MANIFEST_DIR"))
        });
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Times `f` (which runs the workload once) and prints + returns the
/// median ns/iter, following the calibrate-then-measure shape of the
/// classic `libtest` bench runner.
fn bench(name: &str, mut f: impl FnMut()) -> f64 {
    // Calibrate: grow the batch until it takes >= ~10 ms.
    let mut batch: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t.elapsed().as_nanos();
        if elapsed >= TARGET_NANOS / 10 || batch >= 1 << 30 {
            let iters = if elapsed == 0 {
                batch
            } else {
                (batch as u128 * TARGET_NANOS / elapsed).clamp(1, 1 << 32) as u64
            };
            let mut samples: Vec<u128> = (0..PASSES)
                .map(|_| {
                    let t = Instant::now();
                    for _ in 0..iters {
                        f();
                    }
                    t.elapsed().as_nanos() / iters as u128
                })
                .collect();
            samples.sort_unstable();
            let median = samples[PASSES / 2];
            println!("{name:<28} {median:>12} ns/iter");
            return median as f64;
        }
        batch = batch.saturating_mul(2);
    }
}

fn bench_sdsb_update(report: &mut Report) {
    let mut det = SdsB::new(SdsBParams::default(), 1000.0, 50.0)
        .expect("default SDS/B parameters are valid");
    let mut x = 0u64;
    let ns = bench("sdsb_on_sample", move || {
        x = x.wrapping_add(1);
        black_box(det.on_observation(Observation {
            access_num: 1000.0 + (x % 13) as f64,
            miss_num: 0.0,
        }));
    });
    report.push("sdsb_on_sample_ns", ns);
}

fn bench_sdsp_recompute(report: &mut Report) {
    // Feeding ΔW_P·ΔW raw samples triggers exactly one DFT-ACF
    // recomputation once the window is warm.
    let params = SdsPParams::default();
    let mut det =
        SdsP::new(params, 17.0).expect("default SDS/P parameters are valid");
    let square = |i: u64| Observation {
        access_num: if (i / 425) % 2 == 0 { 1000.0 } else { 300.0 },
        miss_num: 0.0,
    };
    // Warm up the W_P window.
    for i in 0..60_000u64 {
        det.on_observation(square(i));
    }
    let mut i = 0u64;
    let ns = bench("sdsp_full_window_cycle", move || {
        for _ in 0..params.step_ma * params.step {
            i += 1;
            black_box(det.on_observation(square(i)));
        }
    });
    report.push("sdsp_full_window_cycle_ns", ns);
}

fn bench_ks_test(report: &mut Report) {
    let x: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
    let y: Vec<f64> = (0..100).map(|i| ((i * 53) % 97) as f64).collect();
    let ns = bench("ks_two_sample_100", move || {
        black_box(ks_two_sample(&x, &y).expect("non-empty samples are valid"));
    });
    report.push("ks_two_sample_100_ns", ns);
}

fn bench_fft(report: &mut Report) {
    let signal: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.37).sin()).collect();
    // Pre-PR path: full complex transform of the real signal.
    let s = signal.clone();
    let full_ns = bench("fft_real_1024", move || {
        black_box(fft_real(&s, 1024).expect("power-of-two length is valid"));
    });
    // Optimized path: cached-twiddle half-size transform + O(N) unpack.
    let s = signal.clone();
    let rfft_ns = bench("rfft_1024", move || {
        black_box(rfft(&s, 1024).expect("power-of-two length is valid"));
    });
    report.push("fft_real_1024_ns", full_ns);
    report.push("rfft_1024_ns", rfft_ns);
    report.push("speedup_fft", full_ns / rfft_ns);
}

fn bench_dft_acf(report: &mut Report) {
    // A W_P = 2p window at the FaceNet scale (p ≈ 17).
    let signal: Vec<f64> = (0..34)
        .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 17.0).sin())
        .collect();
    let ns = bench("dft_acf_detect_34", move || {
        black_box(detect_period(&signal).expect("non-empty window is valid"));
    });
    report.push("dft_acf_detect_34_ns", ns);

    let signal: Vec<f64> = (0..200).map(|i| ((i * 29) % 31) as f64).collect();
    let ns = bench("acf_direct_200x50", move || {
        black_box(acf_direct(&signal, 50).expect("max_lag within input is valid"));
    });
    report.push("acf_direct_200x50_ns", ns);

    // Profiling-scale series, where the `acf` dispatcher picks the FFT
    // path: direct O(N·L) vs Wiener–Khinchin.
    let signal: Vec<f64> = (0..600).map(|i| ((i * 13) % 23) as f64).collect();
    let s = signal.clone();
    let direct_ns = bench("acf_direct_600x150", move || {
        black_box(acf_direct(&s, 150).expect("max_lag within input is valid"));
    });
    let s = signal.clone();
    let fft_ns = bench("acf_fft_600x150", move || {
        black_box(acf_fft(&s, 150).expect("max_lag within input is valid"));
    });
    report.push("acf_direct_600x150_ns", direct_ns);
    report.push("acf_fft_600x150_ns", fft_ns);
    report.push("speedup_acf", direct_ns / fft_ns);
}

/// The pre-PR `MovingAverage` emission strategy: ring buffer plus a full
/// `O(W)` re-sum of the window on every emission. Kept here (not in the
/// stats crate) purely as the speedup baseline for `speedup_ma_ewma`.
struct ResummingMa {
    window: usize,
    step: usize,
    buf: Vec<f64>,
    head: usize,
    seen: u64,
    since_emit: usize,
}

impl ResummingMa {
    fn new(window: usize, step: usize) -> Self {
        ResummingMa { window, step, buf: Vec::with_capacity(window), head: 0, seen: 0, since_emit: 0 }
    }

    fn push(&mut self, sample: f64) -> Option<f64> {
        if self.buf.len() < self.window {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
            self.head = (self.head + 1) % self.window;
        }
        self.seen += 1;
        if self.seen < self.window as u64 {
            return None;
        }
        if self.seen == self.window as u64 {
            self.since_emit = 0;
            return Some(self.buf.iter().sum::<f64>() / self.window as f64);
        }
        self.since_emit += 1;
        if self.since_emit == self.step {
            self.since_emit = 0;
            Some(self.buf.iter().sum::<f64>() / self.window as f64)
        } else {
            None
        }
    }
}

fn bench_ma_ewma(report: &mut Report) {
    // Full §4.1 preprocessing per raw sample at the paper's W=200, ΔW=50:
    // re-summing (pre-PR) vs incremental (current) MA, both feeding EWMA.
    let mut naive = ResummingMa::new(200, 50);
    let mut naive_ewma = Ewma::new(0.2).expect("alpha in (0,1] is valid");
    let mut x = 0u64;
    let naive_ns = bench("ma_ewma_resumming", move || {
        x = x.wrapping_add(1);
        if let Some(m) = naive.push(1000.0 + (x % 17) as f64) {
            black_box(naive_ewma.push(m));
        }
    });

    let mut pipeline = memdos_stats::smoothing::Pipeline::new(200, 50, 0.2)
        .expect("paper-default pipeline parameters are valid");
    let mut x = 0u64;
    let incr_ns = bench("ma_ewma_incremental", move || {
        x = x.wrapping_add(1);
        black_box(pipeline.push(1000.0 + (x % 17) as f64));
    });
    report.push("ma_ewma_resumming_ns", naive_ns);
    report.push("ma_ewma_incremental_ns", incr_ns);
    report.push("speedup_ma_ewma", naive_ns / incr_ns);
}

/// The pre-PR LLC hit path: every access scans the whole set (tracking
/// the LRU victim as it goes) with no MRU hint. Baseline for
/// `speedup_cache`; semantics identical to `memdos_sim::cache::Llc`.
struct ScanLlc {
    sets: usize,
    ways: usize,
    // (addr, valid, last_used) — single-domain, which is all the
    // benchmark needs.
    lines: Vec<(u64, bool, u64)>,
    clock: u64,
}

impl ScanLlc {
    fn new(geometry: CacheGeometry) -> Self {
        ScanLlc {
            sets: geometry.sets,
            ways: geometry.ways,
            lines: vec![(0, false, 0); geometry.lines()],
            clock: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let set = (addr as usize) & (self.sets - 1);
        let base = set * self.ways;
        let ways = &mut self.lines[base..base + self.ways];
        let mut victim = 0usize;
        let mut victim_ts = u64::MAX;
        for (i, line) in ways.iter_mut().enumerate() {
            if line.1 && line.0 == addr {
                line.2 = self.clock;
                return true;
            }
            let ts = if line.1 { line.2 } else { 0 };
            if ts < victim_ts {
                victim_ts = ts;
                victim = i;
            }
        }
        ways[victim] = (addr, true, self.clock);
        false
    }
}

fn bench_cache_access(report: &mut Report) {
    let mut llc = Llc::new(CacheGeometry::default());
    let d = llc.register_domain();
    for line in 0..1000u64 {
        llc.access(d, line);
    }
    let mut line = 0u64;
    let ns = bench("llc_access_hit", move || {
        line = (line + 1) % 1000;
        black_box(llc.access(d, line));
    });
    report.push("llc_access_hit_ns", ns);

    // Hot-line hits in *full* sets: fill 128 sets to all 20 ways, then
    // re-touch each set's most recently filled line. The MRU hint
    // resolves these in O(1); the pre-PR scan walks the set every time.
    let geometry = CacheGeometry::default();
    let hot_sets = 128u64;
    let hot_addr = |set: u64| set + 19 * geometry.sets as u64;

    let mut llc = Llc::new(geometry);
    let d = llc.register_domain();
    for way in 0..20u64 {
        for set in 0..hot_sets {
            llc.access(d, set + way * geometry.sets as u64);
        }
    }
    // Re-touch the hot lines once so the MRU hints point at them.
    for set in 0..hot_sets {
        llc.access(d, hot_addr(set));
    }
    let mut set = 0u64;
    let hinted_ns = bench("llc_hot_hit_hinted", move || {
        set = (set + 1) % hot_sets;
        black_box(llc.access(d, hot_addr(set)));
    });

    let mut scan = ScanLlc::new(geometry);
    for way in 0..20u64 {
        for set in 0..hot_sets {
            scan.access(set + way * geometry.sets as u64);
        }
    }
    let mut set = 0u64;
    let scan_ns = bench("llc_hot_hit_scan", move || {
        set = (set + 1) % hot_sets;
        black_box(scan.access(hot_addr(set)));
    });
    report.push("llc_hot_hit_hinted_ns", hinted_ns);
    report.push("llc_hot_hit_scan_ns", scan_ns);
    report.push("speedup_cache", scan_ns / hinted_ns);
}

/// Discrete-event queue wakeup cost: one pop → reschedule → peek round
/// trip on a warm 9-component queue — the per-wakeup overhead the event
/// engine pays instead of re-scanning every VM per operation.
fn bench_sim_event_step(report: &mut Report) {
    use memdos_sim::event::{ComponentId, EventQueue};
    let mut queue = EventQueue::new();
    for i in 0..9usize {
        queue.schedule(i as u64, ComponentId::vm(i));
    }
    let mut now = 9u64;
    let ns = bench("sim_event_step", move || {
        let (t, comp) = queue.pop().expect("queue is refilled every step");
        now = now.max(t) + 3;
        queue.schedule(now, comp);
        black_box(queue.peek());
    });
    report.push("sim_event_step_ns", ns);
}

fn bench_sim_server_tick(report: &mut Report) {
    // Unlike the detector benchmarks, a server tick mutates state that
    // never returns to its start condition, so measure a long warmed run
    // instead of per-iteration fresh setups.
    let mut server = Server::new(ServerConfig::default());
    let llc = server.config().geometry.lines() as u64;
    server.add_vm("victim", Application::KMeans.build(llc));
    for i in 0..7u64 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos_workloads::apps::utility::program(i)),
        );
    }
    server.run_collect(5); // warm the cache
    let ns = bench("sim_server_tick_9vms", move || {
        black_box(server.tick());
    });
    report.push("sim_server_tick_9vms_ns", ns);
}

/// Trace-generation throughput at 1, 2 and 4 requested workers over the
/// compact 4-cell capture grid (2 apps × 2 attacks × 1 run) the
/// sensitivity sweeps consume. Each `(app, run)` pair's stage-1/2
/// simulation prefix is shared across the attacks (see
/// `memdos_runner::capture_grid`), and the runner clamps the pool to the
/// machine's cores, so `t2`/`t4` measure honest extra concurrency — on a
/// single-core host they collapse to the `t1` path instead of paying
/// oversubscription overhead.
///
/// Reports the best of four passes per worker count: a grid pass runs
/// for seconds, so a co-scheduled background task (or a noisy hypervisor
/// neighbour on a shared host) can shave 5–15% off any one pass, and the
/// *fastest* pass is the stable estimate of what the machine can do
/// (same rationale as the median the `bench` helper uses for
/// nanosecond-scale kernels, where passes are cheap enough to run nine
/// of — here each pass costs ~a second, so four is the budget).
fn bench_sim_grid_capture(report: &mut Report) {
    let stages = StageConfig {
        profile_ticks: 1_500,
        benign_ticks: 1_500,
        attack_ticks: 1_500,
        interval_ticks: 500,
        grace_ticks: 500,
    };
    let base = ExperimentConfig { stages, ..ExperimentConfig::default() };
    let apps = [Application::KMeans, Application::FaceNet];
    let attacks = AttackKind::ALL;
    let cells = (apps.len() * attacks.len()) as f64;
    for workers in [1usize, 2, 4] {
        let mut per_sec = 0.0f64;
        for _pass in 0..4 {
            let t = Instant::now();
            let runs = memdos_runner::capture_grid(&base, &apps, &attacks, stages, 1, workers);
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            black_box(runs.len());
            per_sec = per_sec.max(cells / secs);
        }
        println!("sim_grid_capture_t{workers}          {per_sec:>12.3} cells/s");
        report.push(&format!("sim_grid_cells_per_sec_t{workers}"), per_sec);
    }
    report.push(
        "threads_available",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64,
    );
}

/// Streaming-engine ingest throughput over a synthetic 4-tenant JSONL
/// stream (parse → route → profile/step → render the verdict log),
/// emitted into the separate `BENCH_5.json` report. The per-tenant
/// signal is hash-jittered so the profiled sigma is small but nonzero,
/// and `profile_ticks` is half the stream so the measurement covers the
/// profiling *and* monitoring phases of the session lifecycle.
fn bench_engine_ingest(report: &mut Report) {
    use memdos_engine::engine::Engine;
    use memdos_engine::session::SessionConfig;
    use memdos_engine::Config;

    const TENANTS: u64 = 4;
    const TICKS: u64 = 4_000;
    let mut lines: Vec<String> = Vec::with_capacity((TENANTS * TICKS + TENANTS) as usize);
    for i in 0..TICKS {
        for t in 0..TENANTS {
            let h = (i * TENANTS + t).wrapping_mul(2654435761);
            lines.push(format!(
                "{{\"tenant\":\"vm-{t}\",\"access\":{},\"miss\":{}}}",
                1_000 + h % 17,
                100 + h % 7
            ));
        }
    }
    for t in 0..TENANTS {
        lines.push(format!("{{\"tenant\":\"vm-{t}\",\"ctl\":\"close\"}}"));
    }
    let total = lines.len() as f64;
    let config_for = |workers: usize| Config {
        workers,
        session: SessionConfig { profile_ticks: TICKS / 2, ..SessionConfig::default() },
        ..Config::default()
    };

    let replay = |workers: usize| {
        let mut engine = Engine::new(config_for(workers))
            .expect("bench engine configuration is valid");
        for line in &lines {
            engine.ingest_line(line);
        }
        engine.flush();
        black_box(engine.log_lines().len());
    };

    let ns = bench("engine_ingest_16k_lines", || replay(1));
    let per_sample_ns = ns / total;
    report.push("engine_ingest_sample_ns", per_sample_ns);
    report.push("engine_ingest_samples_per_sec", 1.0e9 * total / ns);

    // The tenant-sharded parallel path: same stream, four workers. The
    // scaling key is the dimensionless 4-worker speedup over the
    // single-worker run; bench-check gates it absolutely (parity minus
    // a 5 % noise floor), so a parallel path materially slower than
    // the serial one fails CI outright.
    //
    // It is measured *relatively*, not from two absolute medians: the
    // suite has been running hot for minutes by this point and
    // machine-load drift between two calibrated `bench()` runs (±10 %
    // on a shared host) would masquerade as (anti-)scaling. Instead
    // each sample is a back-to-back (serial, sharded) replay pair —
    // the two halves share whatever state the machine is in, so their
    // ratio is clean — and the median over pairs discards scheduler
    // spikes that land on one half. The absolute t4 throughput then
    // derives from the calibrated serial median and that ratio.
    const PAIRS: usize = 15;
    let mut ratios: Vec<f64> = (0..PAIRS)
        .map(|_| {
            let t = Instant::now();
            replay(1);
            let serial = t.elapsed().as_nanos().max(1) as f64;
            let t = Instant::now();
            replay(4);
            let sharded = t.elapsed().as_nanos().max(1) as f64;
            serial / sharded
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let scaling = ratios.get(PAIRS / 2).copied().unwrap_or(1.0);
    let ns_t4 = ns / scaling;
    println!("{:<28} {:>12.0} ns/iter", "engine_ingest_16k_lines_t4", ns_t4);
    println!("{:<28} {:>12.3} x", "engine_ingest_scaling_t4", scaling);
    report.push("engine_ingest_samples_per_sec_t4", 1.0e9 * total / ns_t4);
    report.push("engine_ingest_scaling_t4", scaling);
}

/// Binary wire-format throughput, emitted into the separate
/// `BENCH_9.json` report. The same 4-tenant record stream as
/// `bench_engine_ingest` is rendered twice — JSONL text and binary
/// frames — so every comparison is over identical records.
///
/// Three measurements:
/// * `engine_binary_decode_sample_ns` — the raw [`BinDecoder`] cost per
///   frame (checksum + fixed-width field reads), with no engine behind
///   it. This is the wire format's headline number: the decode itself
///   must stay deep under the ~100 ns/sample ingest budget so the
///   detector pipeline, not the codec, is the throughput ceiling.
/// * `engine_binary_ingest_sample_ns` — the full negotiated pipeline
///   (sniff → decode → wire-id route → columnar batch step → log), plus
///   the paired `speedup_binary_wire` ratio against the identical JSONL
///   stream. Measured as back-to-back pairs for the same reason as the
///   scaling ratios: the two halves share the machine's current state.
/// * `engine_binary_scaling_t4` — paired 4-worker speedup of the binary
///   pipeline, gated absolutely at the 0.95 parity floor like the other
///   `*scaling*` keys.
fn bench_engine_binary(report: &mut Report) {
    use memdos_engine::engine::Engine;
    use memdos_engine::session::SessionConfig;
    use memdos_engine::Config;
    use memdos_metrics::binary::{BinDecoder, Encoder, MAGIC};

    const TENANTS: u64 = 4;
    const TICKS: u64 = 4_000;
    let mut jsonl: Vec<u8> = Vec::new();
    let mut binary: Vec<u8> = Vec::new();
    let mut enc = Encoder::new();
    for i in 0..TICKS {
        for t in 0..TENANTS {
            let h = (i * TENANTS + t).wrapping_mul(2654435761);
            let (access, miss) = ((1_000 + h % 17) as f64, (100 + h % 7) as f64);
            jsonl.extend_from_slice(
                format!("{{\"tenant\":\"vm-{t}\",\"access\":{access},\"miss\":{miss}}}\n")
                    .as_bytes(),
            );
            enc.sample(&format!("vm-{t}"), access, miss, &mut binary)
                .expect("bench tenant names are valid");
        }
    }
    for t in 0..TENANTS {
        jsonl.extend_from_slice(format!("{{\"tenant\":\"vm-{t}\",\"ctl\":\"close\"}}\n").as_bytes());
        enc.close(&format!("vm-{t}"), &mut binary).expect("bench tenant names are valid");
    }
    let total = (TENANTS * TICKS + TENANTS) as f64;

    // Raw decode: frames through the checksummed decoder, no engine.
    let body = &binary[MAGIC.len()..];
    let mut scratch = Vec::new();
    let decode_ns = bench("binary_decode_16k_frames", || {
        let mut dec = BinDecoder::new();
        for chunk in body.chunks(64 * 1024) {
            dec.push_bytes(chunk);
            dec.drain_into(&mut scratch);
            black_box(scratch.len());
        }
        black_box(dec.finish().len());
        assert_eq!(dec.resynced(), 0, "bench stream must decode cleanly");
    });
    report.push("engine_binary_decode_sample_ns", decode_ns / total);
    report.push("engine_binary_decode_samples_per_sec", 1.0e9 * total / decode_ns);

    let config_for = |workers: usize| Config {
        workers,
        session: SessionConfig { profile_ticks: TICKS / 2, ..SessionConfig::default() },
        ..Config::default()
    };
    // A default-capacity BufReader gives both formats the production
    // chunking (8 KiB reads, as from stdin or a socket) instead of one
    // giant slice per call.
    let replay = |workers: usize, bytes: &[u8]| {
        let mut engine =
            Engine::new(config_for(workers)).expect("bench engine configuration is valid");
        engine
            .ingest_reader(std::io::BufReader::new(bytes))
            .expect("in-memory reads cannot fail");
        engine.flush();
        black_box(engine.log_lines().len());
    };

    let bin_ns = bench("engine_binary_16k_frames", || replay(1, &binary));
    report.push("engine_binary_ingest_sample_ns", bin_ns / total);
    report.push("engine_binary_samples_per_sec", 1.0e9 * total / bin_ns);

    // Paired binary/JSONL replays — see `bench_engine_ingest` for why
    // format and scaling comparisons are measured relatively.
    const PAIRS: usize = 15;
    let paired_ratio = |mut a: Box<dyn FnMut()>, mut b: Box<dyn FnMut()>| {
        let mut ratios: Vec<f64> = (0..PAIRS)
            .map(|_| {
                let t = Instant::now();
                a();
                let na = t.elapsed().as_nanos().max(1) as f64;
                let t = Instant::now();
                b();
                let nb = t.elapsed().as_nanos().max(1) as f64;
                na / nb
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios.get(PAIRS / 2).copied().unwrap_or(1.0)
    };
    let speedup = paired_ratio(
        Box::new(|| replay(1, &jsonl)),
        Box::new(|| replay(1, &binary)),
    );
    println!("{:<28} {speedup:>12.3} x", "speedup_binary_wire");
    report.push("speedup_binary_wire", speedup);

    let scaling = paired_ratio(
        Box::new(|| replay(1, &binary)),
        Box::new(|| replay(4, &binary)),
    );
    println!("{:<28} {scaling:>12.3} x", "engine_binary_scaling_t4");
    report.push("engine_binary_scaling_t4", scaling);
}

/// Chaos-path throughput: a compact fault-injected demo stream replayed
/// end to end (resync, backpressure drops/recoveries, idle closes,
/// reopen generations all exercised), emitted into the separate
/// `BENCH_4.json` report. The scenario is a pure function of its seed,
/// so successive runs measure identical work.
fn bench_engine_soak(report: &mut Report) {
    use memdos_engine::chaos::{FaultPlan, FaultPlanConfig};
    use memdos_engine::demo::{demo_jsonl, DemoLayout};
    use memdos_engine::engine::Engine;
    use memdos_engine::soak::scenario_engine_config;

    let layout = DemoLayout {
        profile_ticks: 400,
        benign_ticks: 100,
        attack_ticks: 100,
        tail_ticks: 50,
    };
    let clean = demo_jsonl(0xD05, &layout, memdos_runner::threads());
    let (chaotic, trace) = FaultPlan::apply(7, FaultPlanConfig::chaos(), &clean)
        .expect("chaos rates are valid");
    assert!(trace.total() > 0, "the bench scenario must inject faults");
    let total = chaotic.len() as f64;
    let ns = bench("engine_soak_scenario", || {
        let mut engine = Engine::new(scenario_engine_config(1, &layout))
            .expect("soak scenario configuration is valid");
        for line in &chaotic {
            engine.ingest_line(line);
        }
        engine.finish();
        black_box(engine.log_lines().len());
    });
    report.push("engine_soak_line_ns", ns / total);
    report.push("engine_soak_samples_per_sec", 1.0e9 * total / ns);
}

/// Fleet-scale session storage: zipf-scheduled tenant fleets of 1k, 10k
/// and 50k sessions replayed through the slab-backed engine under a
/// 16 384-session memory ceiling, emitted into the separate
/// `BENCH_7.json` report. Per size it records ingest throughput
/// (`engine_fleet_samples_per_sec_*`) and the deterministic
/// resident-bytes estimate at end of replay
/// (`engine_fleet_resident_bytes_*`, informational — presence-gated
/// only); the 50k fleet runs over the ceiling, so the bench asserts the
/// LRU evictor actually fired and reports `engine_fleet_evicted_50k`.
/// `engine_fleet_scaling_t4` is the paired-replay 4-worker speedup on
/// the 10k stream (same relative-measurement rationale as
/// `engine_ingest_scaling_t4`), which CI gates absolutely at the 0.95
/// parity floor.
///
/// Streams are seconds-long, so instead of the calibrated `bench`
/// helper each size reports the best of three passes (the grid bench's
/// rationale: the fastest pass is the stable estimate of what the
/// machine can do when passes are too costly to run nine of).
fn bench_engine_fleet(report: &mut Report) {
    use memdos_engine::engine::Engine;
    use memdos_engine::fleet::{fleet_engine_config, fleet_jsonl, fleet_scenario};

    const CEILING: usize = 16_384;
    const SEED: u64 = 0xF1EE7;
    const PAIRS: usize = 9;

    let mut lines_10k: Vec<String> = Vec::new();
    for (label, tenants) in [("1k", 1_000u32), ("10k", 10_000), ("50k", 50_000)] {
        let lines = fleet_jsonl(&fleet_scenario(tenants, SEED))
            .expect("fleet scenario presets are valid");
        let total = lines.len() as f64;
        let mut per_sec = 0.0f64;
        let mut resident = 0usize;
        let mut evicted = 0u64;
        for _pass in 0..3 {
            let mut engine = Engine::new(fleet_engine_config(1, CEILING))
                .expect("fleet engine configuration is valid");
            let t = Instant::now();
            for line in &lines {
                engine.ingest_line(line);
            }
            engine.finish();
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            black_box(engine.log_lines().len());
            per_sec = per_sec.max(total / secs);
            resident = engine.resident_bytes();
            evicted = engine.stats().evicted;
            assert!(
                engine.open_sessions() <= CEILING,
                "fleet_{label}: ceiling breached ({} open)",
                engine.open_sessions()
            );
        }
        println!("engine_fleet_{label:<22} {per_sec:>12.0} samples/s ({resident} B resident)");
        report.push(&format!("engine_fleet_samples_per_sec_{label}"), per_sec);
        report.push(&format!("engine_fleet_resident_bytes_{label}"), resident as f64);
        if tenants as usize > CEILING {
            // The oversubscribed size is only a meaningful measurement if
            // the ceiling actually forced evictions.
            assert!(evicted > 0, "fleet_{label}: ceiling {CEILING} never evicted");
            report.push(&format!("engine_fleet_evicted_{label}"), evicted as f64);
        }
        if label == "10k" {
            report.push("engine_fleet_sample_ns", 1.0e9 / per_sec.max(1e-9));
            lines_10k = lines;
        }
    }

    // Paired serial/4-worker replays of the 10k stream, median ratio —
    // see `bench_engine_ingest` for why scaling is measured relatively.
    let replay = |workers: usize| {
        let mut engine = Engine::new(fleet_engine_config(workers, CEILING))
            .expect("fleet engine configuration is valid");
        for line in &lines_10k {
            engine.ingest_line(line);
        }
        engine.finish();
        black_box(engine.log_lines().len());
    };
    let mut ratios: Vec<f64> = (0..PAIRS)
        .map(|_| {
            let t = Instant::now();
            replay(1);
            let serial = t.elapsed().as_nanos().max(1) as f64;
            let t = Instant::now();
            replay(4);
            let sharded = t.elapsed().as_nanos().max(1) as f64;
            serial / sharded
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let scaling = ratios.get(PAIRS / 2).copied().unwrap_or(1.0);
    println!("{:<28} {:>12.3} x", "engine_fleet_scaling_t4", scaling);
    report.push("engine_fleet_scaling_t4", scaling);
}

/// Closed-loop mitigation: the respond driver (seeded fleet scenario →
/// engine → mitigation actions → generator throttle) end to end,
/// emitted into the separate `BENCH_8.json` report. The scenario
/// outcomes are pure functions of the seed — the recovery latency of
/// the confirmed true-attacker case and the false-quarantine cost of
/// the benign-shift case are recorded verbatim so drift is visible in
/// the artifact diff (`crates/engine/tests/mitigation_scenarios.rs`
/// pins the exact values). Throughput covers the whole loop — generate,
/// ingest, decide, apply — at 1 and 4 workers, best of three passes of
/// several replays each.
fn bench_mitigation_recovery(report: &mut Report) {
    use memdos_engine::respond::{
        respond_engine_config, respond_scenario, run_respond, RespondScenario,
    };

    const TENANTS: u32 = 6;
    const SEED: u64 = 42;
    const REPS: u32 = 8;
    let run_once = |kind: RespondScenario, workers: usize| {
        run_respond(&respond_scenario(kind, TENANTS, SEED), respond_engine_config(workers), None)
            .expect("respond scenario presets are valid")
    };

    let confirmed = run_once(RespondScenario::TrueAttacker, 1);
    assert!(
        confirmed.stats.mitigations_escalated >= 1,
        "bench scenario must confirm the attacker"
    );
    report.push(
        "mitigation_recovery_latency_ticks",
        confirmed.stats.recovery_latency_ticks as f64,
    );
    let benign = run_once(RespondScenario::BenignShift, 1);
    assert!(
        benign.stats.mitigations_released >= 1,
        "bench scenario must release the false quarantine"
    );
    report.push(
        "mitigation_false_quarantine_ticks",
        benign.stats.false_quarantine_ticks as f64,
    );

    for workers in [1usize, 4] {
        let mut per_sec = 0.0f64;
        for _pass in 0..3 {
            let t = Instant::now();
            let mut lines = 0u64;
            for _rep in 0..REPS {
                let r = run_once(RespondScenario::TrueAttacker, workers);
                lines += r.lines_fed;
                black_box(r.log.len());
            }
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            per_sec = per_sec.max(lines as f64 / secs);
        }
        println!("respond_loop_t{workers}               {per_sec:>12.0} samples/s");
        report.push(&format!("respond_samples_per_sec_t{workers}"), per_sec);
        if workers == 1 {
            report.push("respond_line_ns", 1.0e9 / per_sec.max(1e-9));
        }
    }
}

fn main() {
    // Classic bench-runner convention: an optional substring filter
    // (`cargo bench -p memdos-bench --bench micro -- engine`) selects
    // which report sections run. A section's JSON file is only written
    // when the section ran, so a filtered run never clobbers the other
    // reports with empty objects. Flag-shaped args are ignored: cargo
    // appends `--bench` when invoking a `harness = false` target, and
    // that must not be mistaken for a filter.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let runs = |section: &str| filter.as_deref().is_none_or(|f| section.contains(f));
    println!("memdos micro-benchmarks (median of {PASSES} passes)");
    if runs("kernels") {
        let mut report = Report::default();
        bench_sdsb_update(&mut report);
        bench_sdsp_recompute(&mut report);
        bench_ks_test(&mut report);
        bench_fft(&mut report);
        bench_dft_acf(&mut report);
        bench_ma_ewma(&mut report);
        bench_cache_access(&mut report);
        report.write("MEMDOS_BENCH_OUT", "BENCH_2.json");
    }
    if runs("sim_grid") {
        let mut sim_report = Report::default();
        bench_sim_event_step(&mut sim_report);
        bench_sim_server_tick(&mut sim_report);
        bench_sim_grid_capture(&mut sim_report);
        sim_report.write("MEMDOS_BENCH_OUT_SIM", "BENCH_6.json");
    }
    if runs("engine_ingest") {
        let mut engine_report = Report::default();
        bench_engine_ingest(&mut engine_report);
        engine_report.write("MEMDOS_BENCH_OUT_ENGINE", "BENCH_5.json");
    }
    if runs("engine_binary") {
        let mut binary_report = Report::default();
        bench_engine_binary(&mut binary_report);
        binary_report.write("MEMDOS_BENCH_OUT_BINARY", "BENCH_9.json");
    }
    if runs("engine_soak") {
        let mut soak_report = Report::default();
        bench_engine_soak(&mut soak_report);
        soak_report.write("MEMDOS_BENCH_OUT_SOAK", "BENCH_4.json");
    }
    if runs("engine_fleet") {
        let mut fleet_report = Report::default();
        bench_engine_fleet(&mut fleet_report);
        fleet_report.write("MEMDOS_BENCH_OUT_FLEET", "BENCH_7.json");
    }
    if runs("mitigation_recovery") {
        let mut respond_report = Report::default();
        bench_mitigation_recovery(&mut respond_report);
        respond_report.write("MEMDOS_BENCH_OUT_RESPOND", "BENCH_8.json");
    }
}
