//! Micro-benchmarks of the hot paths (std-only timing harness).
//!
//! The paper claims SDS is *lightweight*: "we use lightweight PCM tools
//! and low-complexity statistical methods". These benchmarks quantify
//! that on this implementation: a per-tick SDS update is a handful of
//! arithmetic operations, the DFT-ACF recomputation is `O(N log N)` on a
//! ~2-period window, and the KS test — the baseline's per-round cost —
//! is `O(n log n)` in the window size. Simulator throughput (cache access
//! and full server ticks) is measured too, since every experiment's wall
//! time is dominated by it.
//!
//! The harness is deliberately dependency-free (the build environment is
//! offline): each benchmark runs a calibration pass to pick an iteration
//! count targeting ~100 ms, then reports the median of 9 timed passes.

use std::hint::black_box;
use std::time::Instant;

use memdos_core::config::{SdsBParams, SdsPParams};
use memdos_core::sdsb::SdsB;
use memdos_core::sdsp::SdsP;
use memdos_sim::cache::{CacheGeometry, Llc};
use memdos_sim::pcm::Stat;
use memdos_sim::server::{Server, ServerConfig};
use memdos_stats::acf::acf_direct;
use memdos_stats::fft::fft_real;
use memdos_stats::ks::ks_two_sample;
use memdos_stats::period::detect_period;
use memdos_workloads::catalog::Application;

const PASSES: usize = 9;
const TARGET_NANOS: u128 = 100_000_000;

/// Times `f` (which runs the workload once) and prints ns/iter, following
/// the calibrate-then-measure shape of the classic `libtest` bench runner.
fn bench(name: &str, mut f: impl FnMut()) {
    // Calibrate: grow the batch until it takes >= ~10 ms.
    let mut batch: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t.elapsed().as_nanos();
        if elapsed >= TARGET_NANOS / 10 || batch >= 1 << 30 {
            let iters = if elapsed == 0 {
                batch
            } else {
                (batch as u128 * TARGET_NANOS / elapsed).clamp(1, 1 << 32) as u64
            };
            let mut samples: Vec<u128> = (0..PASSES)
                .map(|_| {
                    let t = Instant::now();
                    for _ in 0..iters {
                        f();
                    }
                    t.elapsed().as_nanos() / iters as u128
                })
                .collect();
            samples.sort_unstable();
            println!("{name:<28} {:>12} ns/iter", samples[PASSES / 2]);
            return;
        }
        batch = batch.saturating_mul(2);
    }
}

fn bench_sdsb_update() {
    let mut det = SdsB::new(SdsBParams::default(), Stat::AccessNum, 1000.0, 50.0)
        .expect("default SDS/B parameters are valid");
    let mut x = 0u64;
    bench("sdsb_on_sample", move || {
        x = x.wrapping_add(1);
        black_box(det.on_sample(1000.0 + (x % 13) as f64));
    });
}

fn bench_sdsp_recompute() {
    // Feeding ΔW_P·ΔW raw samples triggers exactly one DFT-ACF
    // recomputation once the window is warm.
    let params = SdsPParams::default();
    let mut det = SdsP::new(params, Stat::AccessNum, 17.0)
        .expect("default SDS/P parameters are valid");
    // Warm up the W_P window.
    for i in 0..60_000u64 {
        let phase = (i / 425) % 2;
        det.on_sample(if phase == 0 { 1000.0 } else { 300.0 });
    }
    let mut i = 0u64;
    bench("sdsp_full_window_cycle", move || {
        for _ in 0..params.step_ma * params.step {
            i += 1;
            let phase = (i / 425) % 2;
            black_box(det.on_sample(if phase == 0 { 1000.0 } else { 300.0 }));
        }
    });
}

fn bench_ks_test() {
    let x: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
    let y: Vec<f64> = (0..100).map(|i| ((i * 53) % 97) as f64).collect();
    bench("ks_two_sample_100", move || {
        black_box(ks_two_sample(&x, &y).expect("non-empty samples are valid"));
    });
}

fn bench_fft() {
    let signal: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.37).sin()).collect();
    bench("fft_real_1024", move || {
        black_box(fft_real(&signal, 1024).expect("power-of-two length is valid"));
    });
}

fn bench_dft_acf() {
    // A W_P = 2p window at the FaceNet scale (p ≈ 17).
    let signal: Vec<f64> = (0..34)
        .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 17.0).sin())
        .collect();
    bench("dft_acf_detect_34", move || {
        black_box(detect_period(&signal).expect("non-empty window is valid"));
    });
    let signal: Vec<f64> = (0..200).map(|i| ((i * 29) % 31) as f64).collect();
    bench("acf_direct_200x50", move || {
        black_box(acf_direct(&signal, 50).expect("max_lag within input is valid"));
    });
}

fn bench_cache_access() {
    let mut llc = Llc::new(CacheGeometry::default());
    let d = llc.register_domain();
    for line in 0..1000u64 {
        llc.access(d, line);
    }
    let mut line = 0u64;
    bench("llc_access_hit", move || {
        line = (line + 1) % 1000;
        black_box(llc.access(d, line));
    });
}

fn bench_server_tick() {
    // Unlike the detector benchmarks, a server tick mutates state that
    // never returns to its start condition, so measure a long warmed run
    // instead of per-iteration fresh setups.
    let mut server = Server::new(ServerConfig::default());
    let llc = server.config().geometry.lines() as u64;
    server.add_vm("victim", Application::KMeans.build(llc));
    for i in 0..7u64 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos_workloads::apps::utility::program(i)),
        );
    }
    server.run_collect(5); // warm the cache
    bench("server_tick_9vms", move || {
        black_box(server.tick());
    });
}

fn main() {
    println!("memdos micro-benchmarks (median of {PASSES} passes)");
    bench_sdsb_update();
    bench_sdsp_recompute();
    bench_ks_test();
    bench_fft();
    bench_dft_acf();
    bench_cache_access();
    bench_server_tick();
}
